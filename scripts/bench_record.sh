#!/usr/bin/env sh
# Appends one machine-readable perf record to BENCH_history.jsonl: the
# wall-clock of a full `vlpp all --json --metrics` run plus the METRICS
# snapshot it printed (see OBSERVABILITY.md for the record schema).
# Also prints one `BENCH {json}` line on stdout (the vlpp-check timer
# shape) so CI can pipe this script into
# `vlpp-metrics-check --bench --baseline BENCH_baseline.json`.
#
# Run from the repository root (or anywhere inside it):
#   scripts/bench_record.sh [scale]
#
# `scale` is the --scale divisor (default 16, the repo default). Use
# 1000000 for a seconds-long smoke record.
#
# Set VLPP_BENCH_TRACE=<file> to time `vlpp run --trace <file>` over an
# ingested trace instead of the synthetic suite; the record's "trace"
# field then carries the file path instead of "synth", so trend tooling
# never compares synthetic and ingested-trace runs against each other.
#
# Set VLPP_SKIP_BUILD=1 when ./target/release already holds the binaries
# (CI downloads them from the shared build-release artifact).
set -eu

cd "$(dirname "$0")/.."

scale="${1:-16}"
trace="${VLPP_BENCH_TRACE:-synth}"
history="BENCH_history.jsonl"

if [ "${VLPP_SKIP_BUILD:-0}" != "1" ]; then
    cargo build --release --offline >&2
fi

start=$(date +%s%N)
if [ "$trace" = "synth" ]; then
    stdout=$(VLPP_THREADS="${VLPP_THREADS:-}" ./target/release/vlpp all --json \
        --scale "$scale" --metrics 2>/dev/null)
else
    stdout=$(VLPP_THREADS="${VLPP_THREADS:-}" ./target/release/vlpp run \
        --trace "$trace" --json --metrics 2>/dev/null)
fi
end=$(date +%s%N)
wall_ns=$((end - start))

metrics=$(printf '%s\n' "$stdout" | sed -n 's/^METRICS //p')
if [ -z "$metrics" ]; then
    echo "error: no METRICS line in vlpp output" >&2
    exit 1
fi
# The snapshot must parse with the in-tree parser before it is recorded.
printf 'METRICS %s\n' "$metrics" | ./target/release/vlpp-metrics-check >&2

# The tournament league at the same scale, recorded under "tourney" so
# the history tracks accuracy trends next to wall-clock trends. The
# synthetic suite is the only workload the league is defined over, so a
# trace-replay record carries no tourney key.
tourney=""
if [ "$trace" = "synth" ]; then
    tourney=$(VLPP_THREADS="${VLPP_THREADS:-}" ./target/release/vlpp tournament \
        --json --scale "$scale" 2>/dev/null | sed -n 's/^TOURNEY //p')
    if [ -z "$tourney" ]; then
        echo "error: no TOURNEY line in vlpp tournament output" >&2
        exit 1
    fi
fi

if [ -n "$tourney" ]; then
    record="{\"ts\":$(date +%s),\"scale\":$scale,\"trace\":\"$trace\",\"wall_ns\":$wall_ns,\"metrics\":$metrics,\"tourney\":$tourney}"
else
    record="{\"ts\":$(date +%s),\"scale\":$scale,\"trace\":\"$trace\",\"wall_ns\":$wall_ns,\"metrics\":$metrics}"
fi

# Crash-safe append: build the new history in a temp sibling and rename
# it into place. A plain `>>` cut short by a crash or full disk leaves a
# torn last line that breaks every later consumer of the .jsonl; the
# rename is atomic, so the history is always either the old file or the
# complete new one.
tmp="$history.tmp.$$"
trap 'rm -f "$tmp"' EXIT
if [ -f "$history" ]; then
    cp "$history" "$tmp"
else
    : >"$tmp"
fi
printf '%s\n' "$record" >>"$tmp"
mv "$tmp" "$history"
trap - EXIT
echo "recorded: scale=1/$scale trace=$trace wall_ns=$wall_ns -> $history" >&2

# The stdout BENCH line: a single-iteration timing in the same shape the
# in-tree bench harness emits, keyed by scale (or trace-replay mode) so
# baselines from different workloads never compare against each other.
if [ "$trace" = "synth" ]; then
    bench_name="vlpp_all_scale_$scale"
else
    bench_name="vlpp_run_trace"
fi
echo "BENCH {\"bench\":\"$bench_name\",\"iters\":1,\"median_ns\":$wall_ns,\"mad_ns\":0,\"min_ns\":$wall_ns,\"max_ns\":$wall_ns}"

# The predictions/sec microbench: four more BENCH lines (boxed dispatch
# vs the structure-of-arrays kernel, conditional and indirect). The
# `*_soa` lines carry `records_per_sec` and `speedup_vs_boxed` fields,
# which `vlpp-metrics-check --bench` gates against the
# `min_records_per_sec` / `min_speedup` floors in BENCH_baseline.json.
./target/release/vlpp microbench --records "${VLPP_MICROBENCH_RECORDS:-200000}"
