#!/usr/bin/env bash
# Chaos soak: repeated kill -> respawn -> resync rounds against one
# long-lived `vlpp cluster`, with the byte-for-byte loadgen oracle
# asserted after every round and the self-healing counters gated by
# `vlpp-metrics-check --require` at the end.
#
#   scripts/chaos_drill.sh [ROUNDS]      (default 3)
#
# Each round SIGKILLs one current owner of shard 0 — alternating
# primary / replica so both lineages get promoted — waits for the
# supervisor to respawn and resync it (`--wait-respawn`), and replays
# the next slice of the stream with `--skip`, so every round's
# predictions are checked against the offline reference over the WHOLE
# history. The final round drains the cluster with `--shutdown`, which
# makes every child print its own METRICS snapshot (forwarded by the
# supervisor as `nodeN| METRICS {...}` on stderr).
#
# Bounded: with the default 3 rounds this finishes in ~2 minutes.
set -euo pipefail

cd "$(dirname "$0")/.."

ROUNDS="${1:-3}"
PER_ROUND=4000
case "$ROUNDS" in
    '' | *[!0-9]*) echo "usage: scripts/chaos_drill.sh [ROUNDS]" >&2; exit 1 ;;
esac
if [ "$ROUNDS" -lt 1 ]; then
    echo "error: ROUNDS must be >= 1" >&2
    exit 1
fi

VLPP="./target/release/vlpp"
CHECK="./target/release/vlpp-metrics-check"
if [ ! -x "$VLPP" ] || [ ! -x "$CHECK" ]; then
    cargo build --release --offline
fi

scratch=$(mktemp -d /tmp/vlpp_chaos.XXXXXX)
cluster_pid=""
cleanup() {
    [ -n "$cluster_pid" ] && kill "$cluster_pid" 2>/dev/null || true
    rm -rf "$scratch"
}
trap cleanup EXIT

routing="$scratch/routing.json"
VLPP_THREADS=2 "$VLPP" cluster --nodes 3 --shards 4 --scale 1000000 \
    --routing-out "$routing" --probe-interval-ms 100 --miss-budget 2 \
    --metrics >"$scratch/cluster.out" 2>"$scratch/cluster.err" &
cluster_pid=$!
for _ in $(seq 1 100); do
    [ -s "$routing" ] && break
    sleep 0.1
done
if [ ! -s "$routing" ]; then
    echo "error: vlpp cluster wrote no routing table" >&2
    exit 1
fi

for round in $(seq 1 "$ROUNDS"); do
    # Re-read shard 0's owners from the CURRENT table: respawns rewrite
    # it, and a stale victim id would re-kill an already-dead lineage.
    # Node ids are node{index} by construction (see SERVING.md).
    primary="node$(sed -n 's/.*"assignments":\[\[\([0-9]*\),.*/\1/p' "$routing")"
    replica="node$(sed -n 's/.*"assignments":\[\[[0-9]*,\([0-9]*\).*/\1/p' "$routing")"
    if [ $((round % 2)) -eq 1 ]; then victim="$primary"; else victim="$replica"; fi

    records=$((round * PER_ROUND))
    skip=$(((round - 1) * PER_ROUND))
    extra=()
    [ "$round" -gt 1 ] && extra+=(--no-train --skip "$skip")
    [ "$round" -eq "$ROUNDS" ] && extra+=(--shutdown)
    echo "== chaos round $round/$ROUNDS: kill $victim, replay records $skip..$records" >&2
    round_rc=0
    VLPP_THREADS=2 "$VLPP" loadgen --routing "$routing" --records "$records" \
        --connections 4 --batch 32 --scale 1000000 \
        --kill "$victim" --kill-after 10 --wait-respawn 60000 \
        "${extra[@]}" >"$scratch/round.out" 2>"$scratch/round.err" || round_rc=$?
    if [ "$round_rc" -ne 0 ] ||
        ! grep -q '"mismatches":0' "$scratch/round.out" ||
        ! grep -q '"stats_match":true' "$scratch/round.out"; then
        echo "error: round $round broke the oracle (loadgen exit $round_rc):" >&2
        cat "$scratch/round.out" "$scratch/round.err" >&2
        exit 1
    fi
done

wait "$cluster_pid"
cluster_pid=""

# Every kill must have produced a respawn, and every respawn a resync —
# gated structurally on the supervisor's METRICS snapshot, not by
# eyeballing logs.
grep '^METRICS ' "$scratch/cluster.out" | "$CHECK" \
    --require "cluster.respawns:$ROUNDS" \
    --require "cluster.resyncs:$ROUNDS" \
    --require cluster.resync_bytes:1 \
    --require cluster.heartbeats:1 \
    --require cluster.nodes:3

respawn_lines=$(grep -c '^CLUSTER_RESPAWN ' "$scratch/cluster.out" || true)
if [ "$respawn_lines" -ne "$ROUNDS" ]; then
    echo "error: expected $ROUNDS CLUSTER_RESPAWN lines, saw $respawn_lines" >&2
    cat "$scratch/cluster.out" >&2
    exit 1
fi

# The drained children each printed a METRICS snapshot, forwarded as
# `nodeN| METRICS {...}`; every one must carry the serve-side
# self-healing counters (`--io-timeout-ms` deadlines are armed even
# when they never fire).
child_lines=$(sed -n 's/^node[0-9]*| \(METRICS .*\)/\1/p' "$scratch/cluster.err")
if [ -z "$child_lines" ]; then
    echo "error: no forwarded child METRICS lines in the supervisor's stderr" >&2
    exit 1
fi
while IFS= read -r line; do
    printf '%s\n' "$line" | "$CHECK" \
        --require serve.io_timeouts \
        --require serve.sync_bytes >/dev/null
done <<<"$child_lines"
echo "ok: child METRICS snapshots carry serve.io_timeouts + serve.sync_bytes"

echo "ok: $ROUNDS kill->respawn->resync rounds, zero oracle divergence"
