#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline,
# with no registry (crates.io) dependencies anywhere in the tree.
#
# Run from the repository root (or anywhere inside it):
#   scripts/verify.sh
#
# Every step is counted; the script exits non-zero unless all of them
# actually ran — a silently skipped step can never read as a pass. No
# step relies on pre-existing target/ state, and all scratch files live
# in a mktemp directory cleaned up on exit.
set -euo pipefail

cd "$(dirname "$0")/.."

EXPECTED_STEPS=13
steps_run=0
step() {
    steps_run=$((steps_run + 1))
    echo "== step $steps_run/$EXPECTED_STEPS: $1" >&2
}

scratch=$(mktemp -d /tmp/vlpp_verify.XXXXXX)
server_pid=""
cluster_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$cluster_pid" ] && kill "$cluster_pid" 2>/dev/null || true
    rm -rf "$scratch"
}
trap cleanup EXIT

# 1. Hermeticity gate: every [*dependencies] entry in every Cargo.toml
#    must be an in-tree `path` / `workspace = true` dependency. A line
#    that names a version (`foo = "1.0"` or `version = "..."`) is a
#    registry dependency and fails the build.
step "hermeticity gate"
status=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    offenders=$(awk '
        /^\[.*dependencies/ { in_deps = 1; next }
        /^\[/               { in_deps = 0 }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print
            }
        }
    ' "$manifest")
    if [ -n "$offenders" ]; then
        echo "error: registry dependency in $manifest:" >&2
        echo "$offenders" | sed 's/^/    /' >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "error: all dependencies must be in-tree path dependencies" >&2
    exit 1
fi
echo "ok: no registry dependencies"

# 2. Build and test with the registry disabled. `--offline` makes cargo
#    fail loudly if anything tries to reach crates.io. The build runs
#    unconditionally, so a stale or absent target/ cannot skew any later
#    step — they all use the binary this step produces.
step "offline build + tests"
cargo build --release --offline
cargo test -q --offline
echo "ok: offline build + tests passed"

VLPP="./target/release/vlpp"

# 3. Thread-count determinism: experiment output must be byte-identical
#    whatever the worker-pool size (run at the scale floor to keep this
#    fast).
step "thread-count determinism"
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 >"$scratch/t1.json" 2>/dev/null
VLPP_THREADS=8 "$VLPP" all --json --scale 1000000 >"$scratch/t8.json" 2>/dev/null
if ! cmp -s "$scratch/t1.json" "$scratch/t8.json"; then
    echo "error: vlpp all --json differs between VLPP_THREADS=1 and 8" >&2
    exit 1
fi
echo "ok: output is byte-identical at 1 and 8 worker threads"

# 4. Metrics smoke run: `--metrics` must add exactly one parseable
#    `METRICS {json}` stdout line (checked by the in-tree parser via
#    vlpp-metrics-check) and change nothing else about stdout.
step "metrics additivity"
VLPP_THREADS=8 "$VLPP" all --json --scale 1000000 --metrics \
    >"$scratch/metrics.out" 2>/dev/null
grep '^METRICS ' "$scratch/metrics.out" | ./target/release/vlpp-metrics-check
grep -v '^METRICS ' "$scratch/metrics.out" >"$scratch/metrics_stripped.json"
if ! cmp -s "$scratch/t1.json" "$scratch/metrics_stripped.json"; then
    echo "error: --metrics changed the experiment bytes on stdout" >&2
    exit 1
fi
echo "ok: --metrics is additive and its snapshot parses"

# 5. Fault injection: injected faults must degrade, never abort (the
#    full seeded matrix runs in tests/integration_faults.rs as part of
#    step 2; this re-checks the two end-to-end contracts against the
#    release binary).
#    5a. A persistent injected panic skips exactly that experiment:
#        exit code 2, an "errors" section, and no process abort.
step "fault injection + checkpoint resume"
fault_exit=0
VLPP_THREADS=4 VLPP_FAULT=panic@2:persist VLPP_RETRY_BACKOFF_MS=0 \
    "$VLPP" all --json --scale 1000000 >"$scratch/fault.json" 2>/dev/null || fault_exit=$?
if [ "$fault_exit" -ne 2 ]; then
    echo "error: persistent-fault run must exit 2 (partial), got $fault_exit" >&2
    exit 1
fi
if ! grep -q '"errors"' "$scratch/fault.json"; then
    echo "error: persistent-fault run is missing its errors section" >&2
    exit 1
fi
#    5b. Crash-safe resume: kill a checkpointed run mid-way, resume it,
#        and require stdout byte-identical to the uninterrupted run.
ckpt_dir="$scratch/ckpt"
mkdir -p "$ckpt_dir"
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 --checkpoint "$ckpt_dir" \
    >/dev/null 2>&1 &
ckpt_pid=$!
sleep 1
kill -9 "$ckpt_pid" 2>/dev/null || true
wait "$ckpt_pid" 2>/dev/null || true
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 --checkpoint "$ckpt_dir" \
    >"$scratch/resume.json" 2>/dev/null
if ! cmp -s "$scratch/t1.json" "$scratch/resume.json"; then
    echo "error: resumed checkpoint run differs from an uninterrupted run" >&2
    exit 1
fi
echo "ok: faults degrade gracefully and checkpoint resume is byte-identical"

# 6. Serving round trip: `vlpp loadgen` against a live `vlpp serve`
#    must complete with zero errors and predictions byte-identical to
#    the offline reference, at 1 and at 8 server worker threads (the
#    shard-affinity determinism contract, see SERVING.md).
step "serve/loadgen round trip at 1 and 8 threads"
for threads in 1 8; do
    : >"$scratch/serve.out"
    VLPP_THREADS="$threads" "$VLPP" serve --listen 127.0.0.1:0 --scale 1000000 \
        >"$scratch/serve.out" 2>/dev/null &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^SERVE .*"addr":"\([^"]*\)".*/\1/p' "$scratch/serve.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "error: vlpp serve (VLPP_THREADS=$threads) printed no SERVE line" >&2
        exit 1
    fi
    VLPP_THREADS=2 "$VLPP" loadgen --addr "$addr" --connections 8 --records 8000 \
        --update-every 4 --scale 1000000 --shutdown >"$scratch/loadgen.out" 2>&1
    if ! grep -q '"mismatches":0' "$scratch/loadgen.out"; then
        echo "error: loadgen vs serve (VLPP_THREADS=$threads) diverged:" >&2
        cat "$scratch/loadgen.out" >&2
        exit 1
    fi
    wait "$server_pid"
    server_pid=""
done
echo "ok: served predictions match the offline reference at 1 and 8 threads"

# 7. Snapshot warm restart: replay a prefix through a live server and
#    snapshot it, SIGKILL the server (a crash, not a drain), start a
#    fresh server from the snapshot, and replay the rest with --skip.
#    The second run's "stats_match":true proves the final counters
#    equal the offline reference over the WHOLE stream: nothing lost to
#    the crash, nothing double-counted by the restart (see SERVING.md).
step "snapshot save -> kill -9 -> warm-restart oracle"
snap="$scratch/model.vlps"
: >"$scratch/serve.out"
VLPP_THREADS=2 "$VLPP" serve --listen 127.0.0.1:0 --scale 1000000 \
    >"$scratch/serve.out" 2>/dev/null &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^SERVE .*"addr":"\([^"]*\)".*/\1/p' "$scratch/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "error: snapshot-drill server printed no SERVE line" >&2
    exit 1
fi
VLPP_THREADS=2 "$VLPP" loadgen --addr "$addr" --connections 4 --records 4000 \
    --scale 1000000 --save "$snap" >"$scratch/loadgen.out" 2>&1
if ! grep -q '"mismatches":0' "$scratch/loadgen.out"; then
    echo "error: pre-snapshot loadgen run diverged:" >&2
    cat "$scratch/loadgen.out" >&2
    exit 1
fi
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
if [ ! -s "$snap" ]; then
    echo "error: snapshot file $snap is missing or empty after the kill" >&2
    exit 1
fi
: >"$scratch/serve.out"
VLPP_THREADS=2 "$VLPP" serve --listen 127.0.0.1:0 --scale 1000000 \
    --snapshot "$snap" >"$scratch/serve.out" 2>/dev/null &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^SERVE .*"addr":"\([^"]*\)".*/\1/p' "$scratch/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "error: warm-restarted server printed no SERVE line" >&2
    exit 1
fi
VLPP_THREADS=2 "$VLPP" loadgen --addr "$addr" --no-train --skip 4000 \
    --records 8000 --connections 4 --scale 1000000 --shutdown \
    >"$scratch/loadgen.out" 2>&1
if ! grep -q '"mismatches":0' "$scratch/loadgen.out" ||
    ! grep -q '"stats_match":true' "$scratch/loadgen.out"; then
    echo "error: warm-restarted server diverged from the offline reference:" >&2
    cat "$scratch/loadgen.out" >&2
    exit 1
fi
wait "$server_pid"
server_pid=""
echo "ok: snapshot warm restart is lossless (oracle holds across kill -9)"

# 8. Cluster failover drill: 3 serve processes behind the routing
#    table, SIGKILL the primary of shard 0 mid-run, and require the
#    loadgen oracle to hold across the failover — byte-identical
#    predictions and shard-exact counters on the survivors — at 1 and
#    at 8 server worker threads.
step "cluster kill-a-node failover drill at 1 and 8 threads"
for threads in 1 8; do
    routing="$scratch/routing_$threads.json"
    VLPP_THREADS="$threads" "$VLPP" cluster --nodes 3 --shards 4 --scale 1000000 \
        --routing-out "$routing" >"$scratch/cluster.out" 2>/dev/null &
    cluster_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$routing" ] && break
        sleep 0.1
    done
    if [ ! -s "$routing" ]; then
        echo "error: vlpp cluster (VLPP_THREADS=$threads) wrote no routing table" >&2
        exit 1
    fi
    # Kill the primary of shard 0 (assignments[0][0] indexes nodes[],
    # and node ids are node{index} by construction).
    victim="node$(sed -n 's/.*"assignments":\[\[\([0-9]*\),.*/\1/p' "$routing")"
    VLPP_THREADS=2 "$VLPP" loadgen --routing "$routing" --records 6000 \
        --connections 4 --batch 32 --kill "$victim" --kill-after 10 \
        --scale 1000000 --shutdown >"$scratch/loadgen.out" 2>&1
    if ! grep -q '"mismatches":0' "$scratch/loadgen.out" ||
        ! grep -q '"stats_match":true' "$scratch/loadgen.out" ||
        ! grep -q '"killed":true' "$scratch/loadgen.out"; then
        echo "error: cluster failover (VLPP_THREADS=$threads) broke the oracle:" >&2
        cat "$scratch/loadgen.out" >&2
        exit 1
    fi
    wait "$cluster_pid"
    cluster_pid=""
done
echo "ok: the oracle holds across a SIGKILLed primary at 1 and 8 threads"

# 9. Self-healing chaos drill: kill -> respawn -> resync rounds against
#    one long-lived supervised cluster, with the loadgen oracle checked
#    after every round and cluster.respawns / cluster.resyncs /
#    serve.io_timeouts gated by vlpp-metrics-check (see ROBUSTNESS.md
#    §6 and scripts/chaos_drill.sh).
step "self-healing chaos drill (kill -> respawn -> resync)"
scripts/chaos_drill.sh 2
echo "ok: the cluster self-heals with zero oracle divergence"

# 10. Panic-hygiene gate: no `.unwrap()` in non-test code under the
#    error-spine crates (vlpp-trace, vlpp-sim). "Non-test" = lines
#    before the first `#[cfg(test)]` in each file, excluding comment
#    lines and `tests.rs` module files. New unwraps belong behind typed
#    VlppError paths instead (see ROBUSTNESS.md).
step "panic-hygiene gate"
unwrap_offenders=""
while IFS= read -r src; do
    found=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /\.unwrap\(\)/ && $0 !~ /^[[:space:]]*\/\// { print FILENAME ":" FNR ": " $0 }
    ' "$src")
    if [ -n "$found" ]; then
        unwrap_offenders="$unwrap_offenders$found
"
    fi
done < <(find crates/trace/src crates/sim/src -name '*.rs' ! -name 'tests.rs')
if [ -n "$unwrap_offenders" ]; then
    echo "error: .unwrap() in non-test code (use a typed VlppError path):" >&2
    printf '%s' "$unwrap_offenders" | sed 's/^/    /' >&2
    exit 1
fi
echo "ok: no unwrap() in non-test vlpp-trace / vlpp-sim code"

# 11. Trace-ingestion golden replay: the checked-in 100-record sample
#    traces (ChampSim binary, CSV, JSONL — the same logical records in
#    each, see TRACES.md) must replay to byte-identical statistics,
#    matching the committed golden, both directly and after conversion
#    to the chunked compact format.
step "trace-ingestion golden replay"
golden="tests/data/golden_replay.json"
for sample in tests/data/sample.champsim tests/data/sample.csv tests/data/sample.jsonl; do
    "$VLPP" run --trace "$sample" --json >"$scratch/replay.json" 2>/dev/null
    if ! cmp -s "$golden" "$scratch/replay.json"; then
        echo "error: replay of $sample differs from $golden:" >&2
        diff "$golden" "$scratch/replay.json" >&2 || true
        exit 1
    fi
done
"$VLPP" ingest tests/data/sample.csv --out "$scratch/sample.vlpc" \
    --chunk-records 16 >/dev/null 2>&1
"$VLPP" run --trace "$scratch/sample.vlpc" --json >"$scratch/replay.json" 2>/dev/null
if ! cmp -s "$golden" "$scratch/replay.json"; then
    echo "error: compact-converted replay differs from $golden:" >&2
    diff "$golden" "$scratch/replay.json" >&2 || true
    exit 1
fi
echo "ok: all three sample formats + compact conversion match the golden replay"

# 12. Wall-clock of the full experiment suite at the default scale, as a
#    machine-readable BENCH line (same shape as the vlpp-check timer).
step "wall-clock BENCH line"
start=$(date +%s%N)
"$VLPP" all >/dev/null 2>&1
end=$(date +%s%N)
elapsed=$((end - start))
echo "BENCH {\"bench\":\"vlpp_all_default_scale\",\"iters\":1,\"median_ns\":$elapsed,\"mad_ns\":0,\"min_ns\":$elapsed,\"max_ns\":$elapsed}"

# 13. Tournament determinism + baseline gate: the predictor-zoo league
#    must be byte-identical at 1 and 8 worker threads and must hold the
#    committed accuracy baseline (every cell present, no miss rate above
#    its TOURNEY_baseline.json ceiling — the same gate CI's
#    tournament-smoke job applies).
step "predictor tournament determinism + accuracy baseline"
VLPP_THREADS=1 "$VLPP" tournament --json --scale 1000000 >"$scratch/tourney1.out" 2>/dev/null
VLPP_THREADS=8 "$VLPP" tournament --json --scale 1000000 >"$scratch/tourney8.out" 2>/dev/null
if ! cmp -s "$scratch/tourney1.out" "$scratch/tourney8.out"; then
    echo "error: vlpp tournament --json differs between VLPP_THREADS=1 and 8" >&2
    exit 1
fi
./target/release/vlpp-metrics-check --tourney --baseline TOURNEY_baseline.json \
    <"$scratch/tourney1.out"
echo "ok: the league is thread-deterministic and holds the accuracy baseline"

# The skipped-step backstop: if control flow ever bypasses a step (an
# early return, a refactor gone wrong), this fails the run even though
# nothing above errored.
if [ "$steps_run" -ne "$EXPECTED_STEPS" ]; then
    echo "error: only $steps_run of $EXPECTED_STEPS verification steps ran" >&2
    exit 1
fi
echo "ok: all $EXPECTED_STEPS verification steps ran"
