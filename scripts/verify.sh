#!/usr/bin/env sh
# Tier-1 verification: the workspace must build and test fully offline,
# with no registry (crates.io) dependencies anywhere in the tree.
#
# Run from the repository root (or anywhere inside it):
#   scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

# 1. Hermeticity gate: every [*dependencies] entry in every Cargo.toml
#    must be an in-tree `path` / `workspace = true` dependency. A line
#    that names a version (`foo = "1.0"` or `version = "..."`) is a
#    registry dependency and fails the build.
status=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    offenders=$(awk '
        /^\[.*dependencies/ { in_deps = 1; next }
        /^\[/               { in_deps = 0 }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print
            }
        }
    ' "$manifest")
    if [ -n "$offenders" ]; then
        echo "error: registry dependency in $manifest:" >&2
        echo "$offenders" | sed 's/^/    /' >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "error: all dependencies must be in-tree path dependencies" >&2
    exit 1
fi
echo "ok: no registry dependencies"

# 2. Build and test with the registry disabled. `--offline` makes cargo
#    fail loudly if anything tries to reach crates.io.
cargo build --release --offline
cargo test -q --offline

echo "ok: offline build + tests passed"

# 3. Thread-count determinism: experiment output must be byte-identical
#    whatever the worker-pool size (run at the scale floor to keep this
#    fast).
VLPP="./target/release/vlpp"
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 >/tmp/vlpp_verify_t1.json 2>/dev/null
VLPP_THREADS=8 "$VLPP" all --json --scale 1000000 >/tmp/vlpp_verify_t8.json 2>/dev/null
if ! cmp -s /tmp/vlpp_verify_t1.json /tmp/vlpp_verify_t8.json; then
    echo "error: vlpp all --json differs between VLPP_THREADS=1 and 8" >&2
    exit 1
fi
echo "ok: output is byte-identical at 1 and 8 worker threads"

# 4. Metrics smoke run: `--metrics` must add exactly one parseable
#    `METRICS {json}` stdout line (checked by the in-tree parser via
#    vlpp-metrics-check) and change nothing else about stdout.
VLPP_THREADS=8 "$VLPP" all --json --scale 1000000 --metrics \
    >/tmp/vlpp_verify_metrics.out 2>/dev/null
grep '^METRICS ' /tmp/vlpp_verify_metrics.out | ./target/release/vlpp-metrics-check
grep -v '^METRICS ' /tmp/vlpp_verify_metrics.out >/tmp/vlpp_verify_metrics_stripped.json
if ! cmp -s /tmp/vlpp_verify_t1.json /tmp/vlpp_verify_metrics_stripped.json; then
    echo "error: --metrics changed the experiment bytes on stdout" >&2
    exit 1
fi
echo "ok: --metrics is additive and its snapshot parses"

# 5. Fault injection: injected faults must degrade, never abort (the
#    full seeded matrix runs in tests/integration_faults.rs as part of
#    step 2; this re-checks the two end-to-end contracts against the
#    release binary).
#    5a. A persistent injected panic skips exactly that experiment:
#        exit code 2, an "errors" section, and no process abort.
set +e
VLPP_THREADS=4 VLPP_FAULT=panic@2:persist VLPP_RETRY_BACKOFF_MS=0 \
    "$VLPP" all --json --scale 1000000 >/tmp/vlpp_verify_fault.json 2>/dev/null
fault_exit=$?
set -e
if [ "$fault_exit" -ne 2 ]; then
    echo "error: persistent-fault run must exit 2 (partial), got $fault_exit" >&2
    exit 1
fi
if ! grep -q '"errors"' /tmp/vlpp_verify_fault.json; then
    echo "error: persistent-fault run is missing its errors section" >&2
    exit 1
fi
#    5b. Crash-safe resume: kill a checkpointed run mid-way, resume it,
#        and require stdout byte-identical to the uninterrupted run.
ckpt_dir=$(mktemp -d /tmp/vlpp_verify_ckpt.XXXXXX)
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 --checkpoint "$ckpt_dir" \
    >/dev/null 2>&1 &
ckpt_pid=$!
sleep 1
kill -9 "$ckpt_pid" 2>/dev/null || true
wait "$ckpt_pid" 2>/dev/null || true
VLPP_THREADS=1 "$VLPP" all --json --scale 1000000 --checkpoint "$ckpt_dir" \
    >/tmp/vlpp_verify_resume.json 2>/dev/null
if ! cmp -s /tmp/vlpp_verify_t1.json /tmp/vlpp_verify_resume.json; then
    echo "error: resumed checkpoint run differs from an uninterrupted run" >&2
    exit 1
fi
rm -rf "$ckpt_dir"
echo "ok: faults degrade gracefully and checkpoint resume is byte-identical"

rm -f /tmp/vlpp_verify_t1.json /tmp/vlpp_verify_t8.json \
    /tmp/vlpp_verify_metrics.out /tmp/vlpp_verify_metrics_stripped.json \
    /tmp/vlpp_verify_fault.json /tmp/vlpp_verify_resume.json

# 6. Panic-hygiene gate: no `.unwrap()` in non-test code under the
#    error-spine crates (vlpp-trace, vlpp-sim). "Non-test" = lines
#    before the first `#[cfg(test)]` in each file, excluding comment
#    lines and `tests.rs` module files. New unwraps belong behind typed
#    VlppError paths instead (see ROBUSTNESS.md).
unwrap_offenders=""
for src in $(find crates/trace/src crates/sim/src -name '*.rs' ! -name 'tests.rs'); do
    found=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /\.unwrap\(\)/ && $0 !~ /^[[:space:]]*\/\// { print FILENAME ":" FNR ": " $0 }
    ' "$src")
    if [ -n "$found" ]; then
        unwrap_offenders="$unwrap_offenders$found
"
    fi
done
if [ -n "$unwrap_offenders" ]; then
    echo "error: .unwrap() in non-test code (use a typed VlppError path):" >&2
    printf '%s' "$unwrap_offenders" | sed 's/^/    /' >&2
    exit 1
fi
echo "ok: no unwrap() in non-test vlpp-trace / vlpp-sim code"

# 7. Wall-clock of the full experiment suite at the default scale, as a
#    machine-readable BENCH line (same shape as the vlpp-check timer).
start=$(date +%s%N)
"$VLPP" all >/dev/null 2>&1
end=$(date +%s%N)
elapsed=$((end - start))
echo "BENCH {\"bench\":\"vlpp_all_default_scale\",\"iters\":1,\"median_ns\":$elapsed,\"mad_ns\":0,\"min_ns\":$elapsed,\"max_ns\":$elapsed}"
