#!/usr/bin/env sh
# Tier-1 verification: the workspace must build and test fully offline,
# with no registry (crates.io) dependencies anywhere in the tree.
#
# Run from the repository root (or anywhere inside it):
#   scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

# 1. Hermeticity gate: every [*dependencies] entry in every Cargo.toml
#    must be an in-tree `path` / `workspace = true` dependency. A line
#    that names a version (`foo = "1.0"` or `version = "..."`) is a
#    registry dependency and fails the build.
status=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    offenders=$(awk '
        /^\[.*dependencies/ { in_deps = 1; next }
        /^\[/               { in_deps = 0 }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print
            }
        }
    ' "$manifest")
    if [ -n "$offenders" ]; then
        echo "error: registry dependency in $manifest:" >&2
        echo "$offenders" | sed 's/^/    /' >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "error: all dependencies must be in-tree path dependencies" >&2
    exit 1
fi
echo "ok: no registry dependencies"

# 2. Build and test with the registry disabled. `--offline` makes cargo
#    fail loudly if anything tries to reach crates.io.
cargo build --release --offline
cargo test -q --offline

echo "ok: offline build + tests passed"
