//! Regenerates the paper's Tables 1–3 under the in-tree timer harness.
//! Each bench prints the regenerated table once (so the bench log
//! records the data) and then times the full regeneration, emitting one
//! machine-readable `BENCH {json}` line per case.

use std::hint::black_box;

use vlpp_bench::bench_workloads;
use vlpp_check::{bench, BenchConfig};
use vlpp_sim::paper;

fn main() {
    let config = BenchConfig::quick();
    let workloads = bench_workloads();

    let rows = paper::table1(&workloads);
    println!("\n== Table 1 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::Table1Row::render(&rows).render());
    bench("table1/regenerate", config, || black_box(paper::table1(&workloads)));

    let data = paper::table2(&workloads);
    println!("\n== Table 2 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", data.render().render());
    // The Workloads cache memoizes the sweep; regenerate from a fresh
    // context to time the real computation.
    bench("table2/regenerate", config, || black_box(paper::table2(&bench_workloads())));

    let rows = paper::table3(&workloads);
    println!("\n== Table 3 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::render_table3(&rows).render());
    bench("table3/regenerate", config, || black_box(paper::table3(&workloads)));
}
