//! Regenerates the paper's Tables 1–3 under Criterion timing. Each
//! bench prints the regenerated table once (so the bench log records the
//! data) and then times the full regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use vlpp_bench::bench_workloads;
use vlpp_sim::paper;

fn bench_table1(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::table1(&workloads);
    println!("\n== Table 1 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::Table1Row::render(&rows).render());

    let mut group = c.benchmark_group("table1");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("regenerate", |b| {
        b.iter(|| black_box(paper::table1(&workloads)));
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let workloads = bench_workloads();
    let data = paper::table2(&workloads);
    println!("\n== Table 2 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", data.render().render());

    let mut group = c.benchmark_group("table2");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| {
        // The Workloads cache memoizes the sweep; regenerate from a
        // fresh context to time the real computation.
        b.iter(|| black_box(paper::table2(&bench_workloads())));
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::table3(&workloads);
    println!("\n== Table 3 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::render_table3(&rows).render());

    let mut group = c.benchmark_group("table3");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| {
        b.iter(|| black_box(paper::table3(&workloads)));
    });
    group.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3);
criterion_main!(tables);
