//! Regenerates the ablation and analysis experiments (DESIGN.md §5)
//! under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use vlpp_bench::bench_workloads;
use vlpp_sim::paper;

fn bench_analyze(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::analyze_gcc(&workloads);
    println!("\n== §5.3 analysis (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::AnalysisRow::render(&rows).render());

    let mut group = c.benchmark_group("analyze");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::analyze_gcc(&workloads))));
    group.finish();
}

fn bench_related(c: &mut Criterion) {
    let workloads = bench_workloads();
    let cond = paper::related_conditional(&workloads);
    println!("\n== related work, conditional (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::RelatedRow::render(&cond).render());
    let ind = paper::related_indirect(&workloads);
    println!("== related work, indirect ==");
    println!("{}", paper::RelatedRow::render(&ind).render());

    let mut group = c.benchmark_group("related");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("conditional", |b| {
        b.iter(|| black_box(paper::related_conditional(&workloads)))
    });
    group.bench_function("indirect", |b| {
        b.iter(|| black_box(paper::related_indirect(&workloads)))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let workloads = bench_workloads();
    for (name, rows) in [
        ("subset-hashes", paper::ablate_subset_hashes(&workloads)),
        ("dynamic-select", paper::ablate_dynamic_select(&workloads)),
        ("thb-returns", paper::ablate_returns(&workloads)),
        ("candidates", paper::ablate_candidates(&workloads)),
        ("interference", paper::ablate_interference(&workloads)),
        ("history-stack", paper::ablate_history_stack(&workloads)),
    ] {
        println!("\n== ablation: {name} ==");
        println!("{}", paper::AblationRow::render(&rows).render());
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("interference", |b| {
        b.iter(|| black_box(paper::ablate_interference(&workloads)))
    });
    group.finish();
}

criterion_group!(ablations, bench_analyze, bench_related, bench_ablations);
criterion_main!(ablations);
