//! Regenerates the ablation and analysis experiments (DESIGN.md §5)
//! under the in-tree timer harness.

use std::hint::black_box;

use vlpp_bench::bench_workloads;
use vlpp_check::{bench, BenchConfig};
use vlpp_sim::paper;

fn main() {
    let config = BenchConfig::quick();
    let workloads = bench_workloads();

    let rows = paper::analyze_gcc(&workloads);
    println!("\n== §5.3 analysis (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::AnalysisRow::render(&rows).render());
    bench("analyze/regenerate", config, || black_box(paper::analyze_gcc(&workloads)));

    let cond = paper::related_conditional(&workloads);
    println!("\n== related work, conditional (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::RelatedRow::render(&cond).render());
    let ind = paper::related_indirect(&workloads);
    println!("== related work, indirect ==");
    println!("{}", paper::RelatedRow::render(&ind).render());
    bench("related/conditional", config, || black_box(paper::related_conditional(&workloads)));
    bench("related/indirect", config, || black_box(paper::related_indirect(&workloads)));

    for (name, rows) in [
        ("subset-hashes", paper::ablate_subset_hashes(&workloads)),
        ("dynamic-select", paper::ablate_dynamic_select(&workloads)),
        ("thb-returns", paper::ablate_returns(&workloads)),
        ("candidates", paper::ablate_candidates(&workloads)),
        ("interference", paper::ablate_interference(&workloads)),
        ("history-stack", paper::ablate_history_stack(&workloads)),
    ] {
        println!("\n== ablation: {name} ==");
        println!("{}", paper::AblationRow::render(&rows).render());
    }
    bench("ablations/interference", config, || black_box(paper::ablate_interference(&workloads)));
}
