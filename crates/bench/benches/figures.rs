//! Regenerates the paper's Figures 5–10 and the abstract headline under
//! Criterion timing. Each bench prints the regenerated series once, so
//! the bench log records the reproduced data points.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use vlpp_bench::bench_workloads;
use vlpp_sim::paper;

fn bench_fig5(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::figure5(&workloads);
    println!("\n== Figure 5 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::CondRow::render(&rows).render());
    println!(
        "mean VLP reduction vs gshare: {:.1}%",
        100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
    );

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure5(&workloads))));
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::figure6(&workloads);
    println!("\n== Figure 6 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::CondRow::render(&rows).render());

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure6(&workloads))));
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::figure7(&workloads);
    println!("\n== Figure 7 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::IndRow::render(&rows).render());

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure7(&workloads))));
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::figure8(&workloads);
    println!("\n== Figure 8 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::IndRow::render(&rows).render());

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure8(&workloads))));
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let workloads = bench_workloads();
    let points = paper::figure9(&workloads);
    println!("\n== Figure 9 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::GccCondPoint::render(&points).render());

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure9(&workloads))));
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let workloads = bench_workloads();
    let points = paper::figure10(&workloads);
    println!("\n== Figure 10 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::GccIndPoint::render(&points).render());

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10).measurement_time(Duration::from_secs(30));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::figure10(&workloads))));
    group.finish();
}

fn bench_headline(c: &mut Criterion) {
    let workloads = bench_workloads();
    let data = paper::headline(&workloads);
    println!("\n== Headline (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", data.render().render());

    let mut group = c.benchmark_group("headline");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("regenerate", |b| b.iter(|| black_box(paper::headline(&workloads))));
    group.finish();
}

fn bench_hfnt(c: &mut Criterion) {
    let workloads = bench_workloads();
    let rows = paper::hfnt_experiment(&workloads);
    println!("\n== HFNT experiment (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::HfntRow::render(&rows).render());

    let mut group = c.benchmark_group("hfnt");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("regenerate", |b| {
        b.iter(|| black_box(paper::hfnt_experiment(&workloads)))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_headline,
    bench_hfnt
);
criterion_main!(figures);
