//! Regenerates the paper's Figures 5–10 and the abstract headline under
//! the in-tree timer harness. Each bench prints the regenerated series
//! once, so the bench log records the reproduced data points, then emits
//! one machine-readable `BENCH {json}` line per case.

use std::hint::black_box;

use vlpp_bench::bench_workloads;
use vlpp_check::{bench, BenchConfig};
use vlpp_sim::paper;

fn main() {
    let config = BenchConfig::quick();
    let workloads = bench_workloads();

    let rows = paper::figure5(&workloads);
    println!("\n== Figure 5 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::CondRow::render(&rows).render());
    println!(
        "mean VLP reduction vs gshare: {:.1}%",
        100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
    );
    bench("fig5/regenerate", config, || black_box(paper::figure5(&workloads)));

    let rows = paper::figure6(&workloads);
    println!("\n== Figure 6 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::CondRow::render(&rows).render());
    bench("fig6/regenerate", config, || black_box(paper::figure6(&workloads)));

    let rows = paper::figure7(&workloads);
    println!("\n== Figure 7 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::IndRow::render(&rows).render());
    bench("fig7/regenerate", config, || black_box(paper::figure7(&workloads)));

    let rows = paper::figure8(&workloads);
    println!("\n== Figure 8 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::IndRow::render(&rows).render());
    bench("fig8/regenerate", config, || black_box(paper::figure8(&workloads)));

    let points = paper::figure9(&workloads);
    println!("\n== Figure 9 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::GccCondPoint::render(&points).render());
    bench("fig9/regenerate", config, || black_box(paper::figure9(&workloads)));

    let points = paper::figure10(&workloads);
    println!("\n== Figure 10 (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::GccIndPoint::render(&points).render());
    bench("fig10/regenerate", config, || black_box(paper::figure10(&workloads)));

    let data = paper::headline(&workloads);
    println!("\n== Headline (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", data.render().render());
    bench("headline/regenerate", config, || black_box(paper::headline(&workloads)));

    let rows = paper::hfnt_experiment(&workloads);
    println!("\n== HFNT experiment (scale 1/{}) ==", workloads.scale().divisor());
    println!("{}", paper::HfntRow::render(&rows).render());
    bench("hfnt/regenerate", config, || black_box(paper::hfnt_experiment(&workloads)));
}
