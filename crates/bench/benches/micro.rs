//! Micro-benchmarks: raw predictor throughput and the cost of the
//! §4.1 hash-evaluation schemes. These measure the simulator itself,
//! complementing the experiment benches.

use std::hint::black_box;

use vlpp_bench::micro_trace;
use vlpp_check::{bench, BenchConfig};
use vlpp_core::{hash_path, HashAssignment, IncrementalHashers, PathConditional, PathConfig, Thb};
use vlpp_predict::{Bimodal, Gshare};
use vlpp_sim::run_conditional;
use vlpp_trace::Addr;

fn main() {
    let config = BenchConfig::from_env();
    let trace = micro_trace();
    println!("== predictor throughput ({} records/iteration) ==", trace.len());

    bench("micro/gshare_16kb", config, || {
        let mut p = Gshare::new(16);
        black_box(run_conditional(&mut p, &trace).mispredictions)
    });
    bench("micro/bimodal_16kb", config, || {
        let mut p = Bimodal::new(16);
        black_box(run_conditional(&mut p, &trace).mispredictions)
    });
    bench("micro/fixed_length_path_16kb", config, || {
        let mut p = PathConditional::new(PathConfig::new(16), HashAssignment::fixed(12));
        black_box(run_conditional(&mut p, &trace).mispredictions)
    });
    // A synthetic spread of per-branch lengths exercises the mux.
    let mut assignment = HashAssignment::fixed(12);
    for (i, record) in trace.conditionals().take(500).enumerate() {
        assignment.assign(record.pc(), (i % 32 + 1) as u8);
    }
    bench("micro/variable_length_path_16kb", config, || {
        let mut p = PathConditional::new(PathConfig::new(16), assignment.clone());
        black_box(run_conditional(&mut p, &trace).mispredictions)
    });

    // §4.1: direct evaluation re-XORs the whole path per hash; the
    // partial-sum registers do one rotate-XOR per hash per branch. The
    // speedup here is the software echo of the paper's hardware-latency
    // argument.
    let targets: Vec<Addr> = (0..1024u64).map(|i| Addr::new(0x1000 + i * 52)).collect();
    bench("micro/hash_direct_all_32", config, || {
        let mut thb = Thb::new(32, 16);
        let mut acc = 0u64;
        for &t in &targets {
            thb.push(t);
            for len in 1..=32 {
                acc ^= hash_path(&thb, len);
            }
        }
        black_box(acc)
    });
    bench("micro/hash_incremental_all_32", config, || {
        let mut hashers = IncrementalHashers::new(32, 16);
        let mut acc = 0u64;
        for &t in &targets {
            hashers.push(t);
            for len in 1..=32 {
                acc ^= hashers.index(len);
            }
        }
        black_box(acc)
    });

    // Trace synthesis throughput: how fast the substrate emits records.
    let spec = vlpp_synth::suite::benchmark("gcc").expect("gcc");
    let program = spec.build_program();
    bench("micro/execute_100k_records", config, || {
        black_box(program.execute(vlpp_synth::InputSet::Test, 100_000).len())
    });
    bench("micro/generate_program", config, || {
        black_box(spec.build_program().static_conditional())
    });
}
