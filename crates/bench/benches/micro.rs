//! Micro-benchmarks: raw predictor throughput and the cost of the
//! §4.1 hash-evaluation schemes. These measure the simulator itself,
//! complementing the experiment benches.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use vlpp_bench::micro_trace;
use vlpp_core::{hash_path, HashAssignment, IncrementalHashers, PathConditional, PathConfig, Thb};
use vlpp_predict::{Bimodal, Gshare};
use vlpp_sim::run_conditional;
use vlpp_trace::Addr;

fn bench_predictor_throughput(c: &mut Criterion) {
    let trace = micro_trace();
    let records = trace.len() as u64;

    let mut group = c.benchmark_group("predictor_throughput");
    group.throughput(Throughput::Elements(records));

    group.bench_function("gshare_16kb", |b| {
        b.iter(|| {
            let mut p = Gshare::new(16);
            black_box(run_conditional(&mut p, &trace).mispredictions)
        })
    });
    group.bench_function("bimodal_16kb", |b| {
        b.iter(|| {
            let mut p = Bimodal::new(16);
            black_box(run_conditional(&mut p, &trace).mispredictions)
        })
    });
    group.bench_function("fixed_length_path_16kb", |b| {
        b.iter(|| {
            let mut p = PathConditional::new(PathConfig::new(16), HashAssignment::fixed(12));
            black_box(run_conditional(&mut p, &trace).mispredictions)
        })
    });
    group.bench_function("variable_length_path_16kb", |b| {
        // A synthetic spread of per-branch lengths exercises the mux.
        let mut assignment = HashAssignment::fixed(12);
        for (i, record) in trace.conditionals().take(500).enumerate() {
            assignment.assign(record.pc(), (i % 32 + 1) as u8);
        }
        b.iter(|| {
            let mut p = PathConditional::new(PathConfig::new(16), assignment.clone());
            black_box(run_conditional(&mut p, &trace).mispredictions)
        })
    });
    group.finish();
}

fn bench_hash_evaluation(c: &mut Criterion) {
    // §4.1: direct evaluation re-XORs the whole path per hash; the
    // partial-sum registers do one rotate-XOR per hash per branch. The
    // speedup here is the software echo of the paper's hardware-latency
    // argument.
    let targets: Vec<Addr> = (0..1024u64).map(|i| Addr::new(0x1000 + i * 52)).collect();

    let mut group = c.benchmark_group("hash_evaluation");
    group.throughput(Throughput::Elements(targets.len() as u64));

    group.bench_function("direct_all_32", |b| {
        b.iter(|| {
            let mut thb = Thb::new(32, 16);
            let mut acc = 0u64;
            for &t in &targets {
                thb.push(t);
                for len in 1..=32 {
                    acc ^= hash_path(&thb, len);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("incremental_all_32", |b| {
        b.iter(|| {
            let mut hashers = IncrementalHashers::new(32, 16);
            let mut acc = 0u64;
            for &t in &targets {
                hashers.push(t);
                for len in 1..=32 {
                    acc ^= hashers.index(len);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    // Trace synthesis throughput: how fast the substrate emits records.
    let spec = vlpp_synth::suite::benchmark("gcc").expect("gcc");
    let program = spec.build_program();

    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("execute_100k_records", |b| {
        b.iter(|| black_box(program.execute(vlpp_synth::InputSet::Test, 100_000).len()))
    });
    group.bench_function("generate_program", |b| {
        b.iter(|| black_box(spec.build_program().static_conditional()))
    });
    group.finish();
}

criterion_group!(micro, bench_predictor_throughput, bench_hash_evaluation, bench_workload_generation);
criterion_main!(micro);
