//! # vlpp-bench — benchmark harness support
//!
//! The `harness = false` benches in `benches/` regenerate every table
//! and figure of the paper (`benches/tables.rs`, `benches/figures.rs`)
//! and measure the predictors' raw throughput (`benches/micro.rs`),
//! timed by `vlpp_check::bench`. This library holds the shared setup so
//! every bench sees identical workloads.
//!
//! Run them all with `cargo bench --workspace`; each experiment bench
//! prints the regenerated rows once before timing, so the bench log
//! doubles as an experiment record, and every timing is also emitted as
//! a machine-readable `BENCH {json}` line. `VLPP_BENCH_WARMUP` /
//! `VLPP_BENCH_ITERS` override the iteration counts.

#![warn(missing_docs)]

use vlpp_sim::{Scale, Workloads};
use vlpp_synth::{suite, InputSet};
use vlpp_trace::Trace;

/// The scale the experiment benches run at. Larger divisor =
/// faster iterations; 512 leaves every benchmark at the 50 K-conditional
/// floor (plenty to exercise the full code path — the `vlpp` CLI is the
/// tool for paper-scale numbers).
pub const BENCH_SCALE_DIVISOR: u64 = 512;

/// A [`Workloads`] context at the bench scale.
pub fn bench_workloads() -> Workloads {
    Workloads::new(Scale::new(BENCH_SCALE_DIVISOR))
}

/// A fixed mid-size trace for micro-benchmarks (gcc test input,
/// 200 K records).
pub fn micro_trace() -> Trace {
    let spec = suite::benchmark("gcc").expect("gcc is in the suite");
    spec.build_program().execute(InputSet::Test, 200_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_trace_is_stable_and_nonempty() {
        let t = micro_trace();
        assert_eq!(t.len(), 200_000);
        assert_eq!(t, micro_trace());
    }

    #[test]
    fn bench_workloads_scale() {
        assert_eq!(bench_workloads().scale().divisor(), BENCH_SCALE_DIVISOR);
    }
}
