//! The structure-of-arrays throughput kernel: the serve/simulate hot
//! loop as flat arrays instead of boxed per-record dispatch.
//!
//! [`PathConditional`](crate::PathConditional) and
//! [`PathIndirect`](crate::PathIndirect) are the *reference*
//! implementations: one heap structure per concern, trait dispatch per
//! record, and a `HashMap` probe for every hash-number lookup and every
//! per-branch statistic. That shape is ideal for reading the paper back
//! out of the code and hopeless for serving millions of predictions —
//! each record pays several unpredictable indirect calls and two or
//! three SipHash probes.
//!
//! [`CondKernel`] and [`IndKernel`] run the *same* predictor as flat
//! state:
//!
//! * the second-level table is one contiguous plane — packed 2-bit
//!   counters ([`CounterPlane`]) or packed target registers
//!   ([`TargetPlane`]) — updated branchlessly;
//! * the paper's §4.1 partial sums are the *only* first-level history,
//!   kept in rolling form ([`RollingHashers`]): unrolling the §4.1
//!   recurrence gives `I_X(t) = S(t) XOR rotl(S(t−X), X)` for a single
//!   never-truncated register `S`, so a retired branch costs one
//!   rotate-XOR *total* (not one per register) and a lookup is one ring
//!   read plus one rotate-XOR (no THB walk, no re-hash) — with the ring
//!   sized to the longest hash the assignment actually uses;
//! * the per-branch hash number and statistics slot resolve through a
//!   direct-mapped, exact-tag cache in front of the `HashMap`s, so in
//!   steady state a record costs zero hash probes.
//!
//! The kernels are **bit-for-bit** equivalent to the reference: same
//! prediction stream, same counter/target state, same statistics. That
//! is not an aspiration but a test surface — `tests/prop_kernel.rs`
//! drives both sides over seeded configs × synthetic traces and
//! asserts exact equality, and the serve loadgen oracle re-proves it
//! end-to-end on every CI run. Dynamic (§3.4 hardware-selected) hash
//! selection intentionally stays on the boxed path: it is an ablation,
//! not a serving configuration.

use std::collections::HashMap;

use vlpp_predict::{BranchObserver, ConditionalPredictor, CounterPlane, IndirectPredictor};
use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::hash::RollingHashers;
use crate::path::PathConfig;
use crate::select::HashAssignment;
use crate::stack::HistoryStack;

/// A contiguous plane of packed target registers: the
/// structure-of-arrays form of a
/// [`TargetTable`](crate::TargetTable) — low-32-bit targets in one
/// dense array, validity as one bit per entry.
///
/// # Example
///
/// ```
/// use vlpp_core::TargetPlane;
/// use vlpp_trace::Addr;
///
/// let mut plane = TargetPlane::new(64);
/// assert_eq!(plane.predict(3, Addr::new(0x1000)), Addr::NULL);
/// plane.train(3, Addr::new(0x2000));
/// assert_eq!(plane.predict(3, Addr::new(0x1000)), Addr::new(0x2000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetPlane {
    low32: Vec<u32>,
    valid: Vec<u64>,
    len: usize,
}

impl TargetPlane {
    /// Creates a plane of `len` never-written target registers.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0.
    pub fn new(len: usize) -> Self {
        assert!(len >= 1, "target plane must hold at least one register");
        TargetPlane { low32: vec![0; len], valid: vec![0; len.div_ceil(64)], len }
    }

    /// The number of registers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plane holds no registers (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The plane size in bytes under the 4-bytes-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * 4
    }

    /// Predicts the target stored at `i`, splicing the stored low 32
    /// bits under `pc`'s high 32 — [`Addr::NULL`] for a never-written
    /// register, computed branchlessly (the validity bit becomes an
    /// all-ones/all-zeros mask over the spliced address).
    #[inline]
    pub fn predict(&self, i: usize, pc: Addr) -> Addr {
        let live = (self.valid[i / 64] >> (i % 64)) & 1;
        Addr::new(pc.with_low32(self.low32[i]).raw() & live.wrapping_neg())
    }

    /// Writes the resolved `target` into register `i`.
    #[inline]
    pub fn train(&mut self, i: usize, target: Addr) {
        self.low32[i] = target.low32();
        self.valid[i / 64] |= 1u64 << (i % 64);
    }

    /// Fused predict-then-train of register `i`: returns exactly what
    /// [`predict`](Self::predict) would *before* the write, with one
    /// pass over the validity word instead of two.
    #[inline]
    pub fn predict_train(&mut self, i: usize, pc: Addr, target: Addr) -> Addr {
        let word = &mut self.valid[i / 64];
        let live = (*word >> (i % 64)) & 1;
        let predicted = Addr::new(pc.with_low32(self.low32[i]).raw() & live.wrapping_neg());
        *word |= 1u64 << (i % 64);
        self.low32[i] = target.low32();
        predicted
    }

    /// The stored low-32 value of register `i`, or `None` if it was
    /// never written.
    pub fn entry(&self, i: usize) -> Option<u32> {
        ((self.valid[i / 64] >> (i % 64)) & 1 == 1).then(|| self.low32[i])
    }

    /// Every register in index order — the diagnostic form the
    /// differential tests compare against the boxed table.
    pub fn entries(&self) -> Vec<Option<u32>> {
        (0..self.len).map(|i| self.entry(i)).collect()
    }
}

/// Index bits of the pc-resolution cache: 4096 lines.
const CACHE_BITS: u32 = 12;

/// One direct-mapped line of the pc-resolution cache. `hash == 0`
/// marks an empty line (real hash numbers are `1..=32`).
#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    hash: u8,
    row: u32,
}

/// One static branch's statistics row (structure-of-arrays would split
/// these further, but one cache line per branch is already flat enough
/// — the point is replacing the per-record `HashMap` probe).
#[derive(Debug, Clone, Copy)]
struct BranchRow {
    pc: u64,
    predictions: u64,
    mispredictions: u64,
}

/// First-level history, hash selection, and statistics — the part of
/// the kernel shared between the conditional and indirect variants.
#[derive(Debug, Clone)]
struct KernelCore {
    /// §4.1 partial sums in rolling form — one register plus a ring of
    /// its history, O(1) per retired branch — sized to the longest hash
    /// the assignment uses.
    hashers: RollingHashers,
    mask: u64,
    store_returns: bool,
    stack: Option<HistoryStack>,
    default_hash: u8,
    /// Explicit per-branch hash numbers, already clamped to the THB
    /// capacity (the reference clamps on every lookup; the kernel
    /// clamps once at build time).
    assigned: HashMap<u64, u8>,
    cache: Box<[CacheLine]>,
    rows: Vec<BranchRow>,
    row_of: HashMap<u64, u32>,
}

impl KernelCore {
    fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        let capacity = config.thb_capacity;
        let clamp = |n: u8| -> u8 { (n as usize).min(capacity) as u8 };
        let default_hash = clamp(assignment.default_hash());
        let assigned: HashMap<u64, u8> =
            assignment.iter().map(|(pc, n)| (pc.raw(), clamp(n))).collect();
        // The recurrence I_X(t+1) = rot1(I_{X-1}(t)) ^ t only reads
        // *lower* registers, so registers above the longest hash in use
        // can be dropped without changing any maintained value.
        let longest = assigned.values().copied().max().unwrap_or(1).max(default_hash) as usize;
        KernelCore {
            hashers: RollingHashers::new(longest, config.index_bits),
            mask: (1u64 << config.index_bits) - 1,
            store_returns: config.store_returns,
            stack: config.history_stack_depth.map(HistoryStack::new),
            default_hash,
            assigned,
            cache: vec![CacheLine { tag: 0, hash: 0, row: 0 }; 1 << CACHE_BITS].into_boxed_slice(),
            rows: Vec::new(),
            row_of: HashMap::new(),
        }
    }

    /// Resolves `pc` to its hash number and statistics row: a
    /// direct-mapped exact-tag cache probe in steady state, the
    /// `HashMap`s only on a miss.
    #[inline]
    fn resolve(&mut self, pc: Addr) -> (u8, u32) {
        let tag = pc.raw();
        let line = (pc.word() as usize) & ((1usize << CACHE_BITS) - 1);
        let entry = self.cache[line];
        // Non-short-circuit `&`: both compares fold into one predictable
        // branch instead of two.
        if (entry.tag == tag) & (entry.hash != 0) {
            return (entry.hash, entry.row);
        }
        self.resolve_slow(tag, line)
    }

    #[cold]
    fn resolve_slow(&mut self, tag: u64, line: usize) -> (u8, u32) {
        let hash = self.assigned.get(&tag).copied().unwrap_or(self.default_hash);
        let row = match self.row_of.get(&tag) {
            Some(&row) => row,
            None => {
                let row = self.rows.len() as u32;
                self.rows.push(BranchRow { pc: tag, predictions: 0, mispredictions: 0 });
                self.row_of.insert(tag, row);
                row
            }
        };
        self.cache[line] = CacheLine { tag, hash, row };
        (hash, row)
    }

    /// The table index the current history produces for hash number
    /// `hash`.
    #[inline]
    fn index(&self, hash: u8) -> usize {
        // Rolling values are already k-bit; the mask documents (and
        // guarantees) the plane-index range without narrowing anything.
        (self.hashers.index(hash as usize) & self.mask) as usize
    }

    /// Scores one prediction into its branch row, branchlessly. The
    /// totals are *not* kept here — [`predictions`](Self::predictions)
    /// sums the rows on demand, so the hot loop pays one row
    /// read-modify-write instead of two plus two global counters.
    #[inline]
    fn score(&mut self, row: u32, correct: bool) {
        let r = &mut self.rows[row as usize];
        r.predictions += 1;
        r.mispredictions += !correct as u64;
    }

    /// Total predictions scored, summed over the rows (cold path).
    fn predictions(&self) -> u64 {
        self.rows.iter().map(|r| r.predictions).sum()
    }

    /// Total mispredictions scored, summed over the rows (cold path).
    fn mispredictions(&self) -> u64 {
        self.rows.iter().map(|r| r.mispredictions).sum()
    }

    /// The observe step specialized to a record the caller has already
    /// matched as conditional or indirect: such a record always enters
    /// the THB (§3.2) and is never a call or return, so the history
    /// stack and the recording policy need no per-record checks.
    #[inline]
    fn observe_predicted(&mut self, record: &BranchRecord) {
        self.hashers.push(record.target());
    }

    /// The reference `observe` protocol: §6 history stack at
    /// call/return, then the §3.2 recording policy.
    #[inline]
    fn observe(&mut self, record: &BranchRecord) {
        if let Some(stack) = &mut self.stack {
            match record.kind() {
                BranchKind::Call => stack.push(self.hashers.snapshot()),
                BranchKind::Return => {
                    if let Some(snapshot) = stack.pop() {
                        self.hashers.restore(&snapshot);
                    }
                }
                _ => {}
            }
        }
        let store =
            record.enters_thb() || (self.store_returns && record.kind() == BranchKind::Return);
        if store {
            self.hashers.push(record.target());
        }
    }

    fn name(&self) -> String {
        if self.assigned.is_empty() {
            "fixed length path".into()
        } else {
            "variable length path".into()
        }
    }
}

/// The structure-of-arrays conditional path predictor: bit-identical
/// to [`PathConditional`](crate::PathConditional) with a static hash
/// assignment, built for throughput.
///
/// Drive it record-at-a-time through the fused [`apply`](Self::apply)
/// (which also accumulates [`RunStats`-shaped](Self::predictions)
/// statistics internally, with no per-record `HashMap` traffic), or
/// through the standard `ConditionalPredictor` trait where a call site
/// expects the reference protocol.
///
/// # Example
///
/// ```
/// use vlpp_core::{CondKernel, HashAssignment, PathConfig};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut kernel = CondKernel::new(&PathConfig::new(10), &HashAssignment::fixed(4));
/// let record = BranchRecord::conditional(Addr::new(0x40), Addr::new(0x80), true);
/// let (predicted, correct) = kernel.apply(&record).expect("conditional record");
/// assert_eq!(predicted, false); // cold counters predict not-taken
/// assert!(!correct);
/// assert_eq!(kernel.predictions(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CondKernel {
    core: KernelCore,
    plane: CounterPlane,
}

impl CondKernel {
    /// Builds the kernel for `config` and a static `assignment` — the
    /// same parameters `PathConditional::new` takes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the reference constructor
    /// (index width out of `1..=28`, zero THB capacity).
    pub fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        CondKernel {
            plane: CounterPlane::new(1 << config.index_bits),
            core: KernelCore::new(config, assignment),
        }
    }

    /// Runs one record through the full predict → score → train →
    /// observe protocol. Returns `(predicted_taken, correct)` for
    /// conditional records, `None` (observe only) otherwise.
    #[inline]
    pub fn apply(&mut self, record: &BranchRecord) -> Option<(bool, bool)> {
        if record.is_conditional() {
            let (hash, row) = self.core.resolve(record.pc());
            let index = self.core.index(hash);
            let taken = record.taken();
            let predicted = self.plane.predict_update(index, taken);
            let correct = predicted == taken;
            self.core.score(row, correct);
            self.core.observe_predicted(record);
            Some((predicted, correct))
        } else {
            self.core.observe(record);
            None
        }
    }

    /// Total predictions scored through [`apply`](Self::apply).
    pub fn predictions(&self) -> u64 {
        self.core.predictions()
    }

    /// Total mispredictions scored through [`apply`](Self::apply).
    pub fn mispredictions(&self) -> u64 {
        self.core.mispredictions()
    }

    /// Number of distinct static branches predicted.
    pub fn static_branches(&self) -> usize {
        self.core.rows.iter().filter(|r| r.predictions > 0).count()
    }

    /// Per-branch `(pc, predictions, mispredictions)` rows for branches
    /// that were actually predicted, in first-seen order.
    pub fn branch_stats(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.core
            .rows
            .iter()
            .filter(|r| r.predictions > 0)
            .map(|r| (r.pc, r.predictions, r.mispredictions))
    }

    /// Every counter value in index order (diagnostic; the differential
    /// tests compare this against the reference table).
    pub fn counter_values(&self) -> Vec<u8> {
        self.plane.values()
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.plane.bytes()
    }
}

impl BranchObserver for CondKernel {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl ConditionalPredictor for CondKernel {
    fn predict(&mut self, pc: Addr) -> bool {
        let (hash, _) = self.core.resolve(pc);
        self.plane.predict_taken(self.core.index(hash))
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        let (hash, _) = self.core.resolve(pc);
        self.plane.update(self.core.index(hash), taken);
    }

    fn name(&self) -> String {
        self.core.name()
    }
}

/// The structure-of-arrays indirect path predictor: bit-identical to
/// [`PathIndirect`](crate::PathIndirect) with a static hash
/// assignment. See [`CondKernel`] for the layout story.
///
/// # Example
///
/// ```
/// use vlpp_core::{HashAssignment, IndKernel, PathConfig};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut kernel = IndKernel::new(&PathConfig::new(8), &HashAssignment::fixed(2));
/// let record = BranchRecord::indirect(Addr::new(0x40), Addr::new(0x9000));
/// let (target, correct) = kernel.apply(&record).expect("indirect record");
/// assert_eq!(target, Addr::NULL); // cold table
/// assert!(!correct);
/// ```
#[derive(Debug, Clone)]
pub struct IndKernel {
    core: KernelCore,
    plane: TargetPlane,
}

impl IndKernel {
    /// Builds the kernel for `config` and a static `assignment` — the
    /// same parameters `PathIndirect::new` takes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the reference constructor.
    pub fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        IndKernel {
            plane: TargetPlane::new(1 << config.index_bits),
            core: KernelCore::new(config, assignment),
        }
    }

    /// Runs one record through the full predict → score → train →
    /// observe protocol. Returns `(predicted_target, correct)` for
    /// indirect records (returns excluded, as in the paper), `None`
    /// otherwise.
    #[inline]
    pub fn apply(&mut self, record: &BranchRecord) -> Option<(Addr, bool)> {
        if record.is_indirect() {
            let pc = record.pc();
            let (hash, row) = self.core.resolve(pc);
            let index = self.core.index(hash);
            let target = record.target();
            let predicted = self.plane.predict_train(index, pc, target);
            let correct = predicted == target;
            self.core.score(row, correct);
            self.core.observe_predicted(record);
            Some((predicted, correct))
        } else {
            self.core.observe(record);
            None
        }
    }

    /// Total predictions scored through [`apply`](Self::apply).
    pub fn predictions(&self) -> u64 {
        self.core.predictions()
    }

    /// Total mispredictions scored through [`apply`](Self::apply).
    pub fn mispredictions(&self) -> u64 {
        self.core.mispredictions()
    }

    /// Number of distinct static branches predicted.
    pub fn static_branches(&self) -> usize {
        self.core.rows.iter().filter(|r| r.predictions > 0).count()
    }

    /// Per-branch `(pc, predictions, mispredictions)` rows for branches
    /// that were actually predicted, in first-seen order.
    pub fn branch_stats(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.core
            .rows
            .iter()
            .filter(|r| r.predictions > 0)
            .map(|r| (r.pc, r.predictions, r.mispredictions))
    }

    /// Every target register in index order (diagnostic; the
    /// differential tests compare this against the reference table).
    pub fn target_entries(&self) -> Vec<Option<u32>> {
        self.plane.entries()
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.plane.bytes()
    }
}

impl BranchObserver for IndKernel {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl IndirectPredictor for IndKernel {
    fn predict(&mut self, pc: Addr) -> Addr {
        let (hash, _) = self.core.resolve(pc);
        self.plane.predict(self.core.index(hash), pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        let (hash, _) = self.core.resolve(pc);
        self.plane.train(self.core.index(hash), target);
    }

    fn name(&self) -> String {
        self.core.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{PathConditional, PathIndirect};

    fn cond(pc: u64, target: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(Addr::new(pc), Addr::new(target), taken)
    }

    /// A deterministic mixed-kind record stream.
    fn stream(n: usize, seed: u64) -> Vec<BranchRecord> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pc = 0x40 + ((x >> 40) & 0x3f) * 4;
                let target = ((x >> 20) & 0xff) << 2;
                match (x >> 10) % 5 {
                    0 => BranchRecord::indirect(Addr::new(pc), Addr::new(0x4000 + target)),
                    1 => BranchRecord::call(Addr::new(pc), Addr::new(0x8000 + target)),
                    2 => BranchRecord::ret(Addr::new(pc), Addr::new(0x100 + target)),
                    _ => cond(pc, target, (x >> 5) & 1 == 1),
                }
            })
            .collect()
    }

    #[test]
    fn cond_kernel_matches_reference_on_a_mixed_stream() {
        let config = PathConfig::new(10);
        let mut assignment = HashAssignment::fixed(6);
        assignment.assign(Addr::new(0x44), 1);
        assignment.assign(Addr::new(0x48), 13);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        for record in stream(4000, 7) {
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                let (predicted, correct) = kernel.apply(&record).expect("conditional");
                assert_eq!(predicted, expected);
                assert_eq!(correct, expected == record.taken());
            } else {
                assert_eq!(kernel.apply(&record), None);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.counter_values(), reference.counter_values());
    }

    #[test]
    fn ind_kernel_matches_reference_on_a_mixed_stream() {
        let config = PathConfig::new(8);
        let mut assignment = HashAssignment::fixed(3);
        assignment.assign(Addr::new(0x50), 8);
        let mut kernel = IndKernel::new(&config, &assignment);
        let mut reference = PathIndirect::new(config, assignment);
        for record in stream(4000, 21) {
            if record.is_indirect() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.target());
                let (predicted, correct) = kernel.apply(&record).expect("indirect");
                assert_eq!(predicted, expected);
                assert_eq!(correct, expected == record.target());
            } else {
                assert_eq!(kernel.apply(&record), None);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.target_entries(), reference.target_entries());
    }

    #[test]
    fn kernel_stats_count_like_run_stats() {
        let config = PathConfig::new(8);
        let mut kernel = CondKernel::new(&config, &HashAssignment::fixed(2));
        let records = [cond(0x40, 0x80, true), cond(0x40, 0x80, true), cond(0x44, 0x90, false)];
        for record in &records {
            kernel.apply(record);
        }
        assert_eq!(kernel.predictions(), 3);
        assert_eq!(kernel.static_branches(), 2);
        let by_pc: HashMap<u64, (u64, u64)> =
            kernel.branch_stats().map(|(pc, p, m)| (pc, (p, m))).collect();
        assert_eq!(by_pc[&0x40].0, 2);
        assert_eq!(by_pc[&0x44], (1, 0), "cold counter predicts not-taken: correct");
        let total: u64 = by_pc.values().map(|v| v.1).sum();
        assert_eq!(total, kernel.mispredictions());
    }

    #[test]
    fn trait_protocol_matches_fused_apply() {
        let config = PathConfig::new(9);
        let assignment = HashAssignment::fixed(5);
        let mut fused = CondKernel::new(&config, &assignment);
        let mut stepwise = CondKernel::new(&config, &assignment);
        for record in stream(2000, 3) {
            let via_apply = fused.apply(&record);
            if record.is_conditional() {
                let predicted = stepwise.predict(record.pc());
                stepwise.train(record.pc(), record.taken());
                assert_eq!(via_apply.map(|(p, _)| p), Some(predicted));
            }
            stepwise.observe(&record);
        }
        assert_eq!(fused.counter_values(), stepwise.counter_values());
    }

    #[test]
    fn history_stack_restores_like_reference() {
        let config = PathConfig::new(10).with_history_stack(4);
        let assignment = HashAssignment::fixed(4);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        let mut x = 11u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let record = match i % 7 {
                0 => BranchRecord::call(Addr::new(0x200), Addr::new(0x4000)),
                3 => BranchRecord::ret(Addr::new(0x4100), Addr::new(0x204)),
                _ => cond(0x100 + (i % 5) * 4, ((x >> 30) & 0xff) << 2, (x >> 9) & 1 == 1),
            };
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                let (predicted, _) = kernel.apply(&record).expect("conditional");
                assert_eq!(predicted, expected, "record {i}");
            } else {
                kernel.apply(&record);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.counter_values(), reference.counter_values());
    }

    #[test]
    fn assignment_above_capacity_clamps_like_reference() {
        let mut config = PathConfig::new(8);
        config.thb_capacity = 4;
        let assignment = HashAssignment::fixed(32); // clamps to 4
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        for record in stream(1000, 5) {
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                assert_eq!(kernel.apply(&record).map(|(p, _)| p), Some(expected));
            } else {
                kernel.apply(&record);
            }
            reference.observe(&record);
        }
    }

    #[test]
    fn names_match_the_reference() {
        let config = PathConfig::new(8);
        let fixed = CondKernel::new(&config, &HashAssignment::fixed(4));
        assert_eq!(fixed.name(), "fixed length path");
        let mut a = HashAssignment::fixed(4);
        a.assign(Addr::new(0x10), 2);
        let variable = IndKernel::new(&config, &a);
        assert_eq!(variable.name(), "variable length path");
    }

    #[test]
    fn target_plane_entries_round_trip() {
        let mut plane = TargetPlane::new(70);
        assert_eq!(plane.entry(69), None);
        plane.train(69, Addr::new(0xdead_beef_1234));
        assert_eq!(plane.entry(69), Some(0xbeef_1234));
        assert_eq!(plane.entries().iter().filter(|e| e.is_some()).count(), 1);
        assert_eq!(plane.bytes(), 280);
    }
}
