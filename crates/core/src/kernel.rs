//! The structure-of-arrays throughput kernel: the serve/simulate hot
//! loop as flat arrays instead of boxed per-record dispatch.
//!
//! [`PathConditional`](crate::PathConditional) and
//! [`PathIndirect`](crate::PathIndirect) are the *reference*
//! implementations: one heap structure per concern, trait dispatch per
//! record, and a `HashMap` probe for every hash-number lookup and every
//! per-branch statistic. That shape is ideal for reading the paper back
//! out of the code and hopeless for serving millions of predictions —
//! each record pays several unpredictable indirect calls and two or
//! three SipHash probes.
//!
//! [`CondKernel`] and [`IndKernel`] run the *same* predictor as flat
//! state:
//!
//! * the second-level table is one contiguous plane — packed 2-bit
//!   counters ([`CounterPlane`]) or packed target registers
//!   ([`TargetPlane`]) — updated branchlessly;
//! * the paper's §4.1 partial sums are the *only* first-level history,
//!   kept in rolling form ([`RollingHashers`]): unrolling the §4.1
//!   recurrence gives `I_X(t) = S(t) XOR rotl(S(t−X), X)` for a single
//!   never-truncated register `S`, so a retired branch costs one
//!   rotate-XOR *total* (not one per register) and a lookup is one ring
//!   read plus one rotate-XOR (no THB walk, no re-hash) — with the ring
//!   sized to the longest hash the assignment actually uses;
//! * the per-branch hash number and statistics slot resolve through a
//!   direct-mapped, exact-tag cache in front of the `HashMap`s, so in
//!   steady state a record costs zero hash probes.
//!
//! The kernels are **bit-for-bit** equivalent to the reference: same
//! prediction stream, same counter/target state, same statistics. That
//! is not an aspiration but a test surface — `tests/prop_kernel.rs`
//! drives both sides over seeded configs × synthetic traces and
//! asserts exact equality, and the serve loadgen oracle re-proves it
//! end-to-end on every CI run. Dynamic (§3.4 hardware-selected) hash
//! selection intentionally stays on the boxed path: it is an ablation,
//! not a serving configuration.

use std::collections::HashMap;

use vlpp_predict::{BranchObserver, ConditionalPredictor, CounterPlane, IndirectPredictor};
use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::hash::RollingHashers;
use crate::path::PathConfig;
use crate::select::HashAssignment;
use crate::stack::HistoryStack;

/// A contiguous plane of packed target registers: the
/// structure-of-arrays form of a
/// [`TargetTable`](crate::TargetTable) — full 64-bit targets in one
/// dense array, validity as one bit per entry. (The paper's footnote-1
/// low-32 splice lives on only in the CHP baselines; the VLPP planes
/// store full targets so addresses ≥ 2^32 never alias. The
/// 4-bytes-per-entry budget accounting is unchanged.)
///
/// # Example
///
/// ```
/// use vlpp_core::TargetPlane;
/// use vlpp_trace::Addr;
///
/// let mut plane = TargetPlane::new(64);
/// assert_eq!(plane.predict(3, Addr::new(0x1000)), Addr::NULL);
/// plane.train(3, Addr::new(0x2000));
/// assert_eq!(plane.predict(3, Addr::new(0x1000)), Addr::new(0x2000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetPlane {
    targets: Vec<u64>,
    valid: Vec<u64>,
    len: usize,
}

impl TargetPlane {
    /// Creates a plane of `len` never-written target registers.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0.
    pub fn new(len: usize) -> Self {
        assert!(len >= 1, "target plane must hold at least one register");
        TargetPlane { targets: vec![0; len], valid: vec![0; len.div_ceil(64)], len }
    }

    /// Rebuilds a plane from [`raw_parts`](Self::raw_parts) output.
    /// Returns `None` when the array lengths do not describe a valid
    /// `len`-register plane — the snapshot loaders turn that into a
    /// typed error instead of a panic.
    pub fn from_raw_parts(targets: Vec<u64>, valid: Vec<u64>, len: usize) -> Option<Self> {
        (len >= 1 && targets.len() == len && valid.len() == len.div_ceil(64))
            .then_some(TargetPlane { targets, valid, len })
    }

    /// The raw state arrays `(targets, validity_words)` — the
    /// serialization surface model snapshots persist.
    pub fn raw_parts(&self) -> (&[u64], &[u64]) {
        (&self.targets, &self.valid)
    }

    /// The number of registers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plane holds no registers (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The plane size in bytes under the 4-bytes-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * 4
    }

    /// Predicts the full target stored at `i` — [`Addr::NULL`] for a
    /// never-written register, computed branchlessly (the validity bit
    /// becomes an all-ones/all-zeros mask over the stored address).
    /// `pc` is unused since the footnote-1 splice was removed but stays
    /// in the signature as the hardware lookup key shape.
    #[inline]
    pub fn predict(&self, i: usize, _pc: Addr) -> Addr {
        let live = (self.valid[i / 64] >> (i % 64)) & 1;
        Addr::new(self.targets[i] & live.wrapping_neg())
    }

    /// Writes the resolved `target` into register `i`.
    #[inline]
    pub fn train(&mut self, i: usize, target: Addr) {
        self.targets[i] = target.raw();
        self.valid[i / 64] |= 1u64 << (i % 64);
    }

    /// Fused predict-then-train of register `i`: returns exactly what
    /// [`predict`](Self::predict) would *before* the write, with one
    /// pass over the validity word instead of two.
    #[inline]
    pub fn predict_train(&mut self, i: usize, _pc: Addr, target: Addr) -> Addr {
        let word = &mut self.valid[i / 64];
        let live = (*word >> (i % 64)) & 1;
        let predicted = Addr::new(self.targets[i] & live.wrapping_neg());
        *word |= 1u64 << (i % 64);
        self.targets[i] = target.raw();
        predicted
    }

    /// The stored target of register `i`, or `None` if it was never
    /// written.
    pub fn entry(&self, i: usize) -> Option<u64> {
        ((self.valid[i / 64] >> (i % 64)) & 1 == 1).then(|| self.targets[i])
    }

    /// Every register in index order — the diagnostic form the
    /// differential tests compare against the boxed table.
    pub fn entries(&self) -> Vec<Option<u64>> {
        (0..self.len).map(|i| self.entry(i)).collect()
    }
}

/// The serializable dynamic state of a kernel: everything that changes
/// as records are applied. The static configuration and hash
/// assignment are *not* here — snapshot loaders rebuild the kernel
/// from its `PathConfig`/`HashAssignment` first and then restore this
/// state into it. The pc-resolution cache is also excluded: it is an
/// exact-tag cache over the assignment and row maps, so rebuilding it
/// empty changes no observable value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelState {
    /// The rolling §4.1 partial-sum state, as
    /// [`RollingHashers::snapshot`] lays it out (`[S, t, ring…]`).
    pub hashers: Vec<u64>,
    /// §6 history-stack snapshots, oldest first; empty when the
    /// configuration has no stack.
    pub stack: Vec<Vec<u64>>,
    /// Per-branch statistics rows in first-seen order:
    /// `(pc, predictions, mispredictions)`.
    pub rows: Vec<(u64, u64, u64)>,
}

/// Index bits of the pc-resolution cache: 4096 lines.
const CACHE_BITS: u32 = 12;

/// One direct-mapped line of the pc-resolution cache. `hash == 0`
/// marks an empty line (real hash numbers are `1..=32`).
#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    hash: u8,
    row: u32,
}

/// One static branch's statistics row (structure-of-arrays would split
/// these further, but one cache line per branch is already flat enough
/// — the point is replacing the per-record `HashMap` probe).
#[derive(Debug, Clone, Copy)]
struct BranchRow {
    pc: u64,
    predictions: u64,
    mispredictions: u64,
}

/// First-level history, hash selection, and statistics — the part of
/// the kernel shared between the conditional and indirect variants.
#[derive(Debug, Clone)]
struct KernelCore {
    /// §4.1 partial sums in rolling form — one register plus a ring of
    /// its history, O(1) per retired branch — sized to the longest hash
    /// the assignment uses.
    hashers: RollingHashers,
    mask: u64,
    store_returns: bool,
    stack: Option<HistoryStack>,
    default_hash: u8,
    /// Explicit per-branch hash numbers, already clamped to the THB
    /// capacity (the reference clamps on every lookup; the kernel
    /// clamps once at build time).
    assigned: HashMap<u64, u8>,
    cache: Box<[CacheLine]>,
    rows: Vec<BranchRow>,
    row_of: HashMap<u64, u32>,
}

impl KernelCore {
    fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        let capacity = config.thb_capacity;
        let clamp = |n: u8| -> u8 { (n as usize).min(capacity) as u8 };
        let default_hash = clamp(assignment.default_hash());
        let assigned: HashMap<u64, u8> =
            assignment.iter().map(|(pc, n)| (pc.raw(), clamp(n))).collect();
        // The recurrence I_X(t+1) = rot1(I_{X-1}(t)) ^ t only reads
        // *lower* registers, so registers above the longest hash in use
        // can be dropped without changing any maintained value.
        let longest = assigned.values().copied().max().unwrap_or(1).max(default_hash) as usize;
        KernelCore {
            hashers: RollingHashers::new(longest, config.index_bits),
            mask: (1u64 << config.index_bits) - 1,
            store_returns: config.store_returns,
            stack: config.history_stack_depth.map(HistoryStack::new),
            default_hash,
            assigned,
            cache: vec![CacheLine { tag: 0, hash: 0, row: 0 }; 1 << CACHE_BITS].into_boxed_slice(),
            rows: Vec::new(),
            row_of: HashMap::new(),
        }
    }

    /// Resolves `pc` to its hash number and statistics row: a
    /// direct-mapped exact-tag cache probe in steady state, the
    /// `HashMap`s only on a miss.
    #[inline]
    fn resolve(&mut self, pc: Addr) -> (u8, u32) {
        let tag = pc.raw();
        let line = (pc.word() as usize) & ((1usize << CACHE_BITS) - 1);
        let entry = self.cache[line];
        // Non-short-circuit `&`: both compares fold into one predictable
        // branch instead of two.
        if (entry.tag == tag) & (entry.hash != 0) {
            return (entry.hash, entry.row);
        }
        self.resolve_slow(tag, line)
    }

    #[cold]
    fn resolve_slow(&mut self, tag: u64, line: usize) -> (u8, u32) {
        let hash = self.assigned.get(&tag).copied().unwrap_or(self.default_hash);
        let row = match self.row_of.get(&tag) {
            Some(&row) => row,
            None => {
                let row = self.rows.len() as u32;
                self.rows.push(BranchRow { pc: tag, predictions: 0, mispredictions: 0 });
                self.row_of.insert(tag, row);
                row
            }
        };
        self.cache[line] = CacheLine { tag, hash, row };
        (hash, row)
    }

    /// The table index the current history produces for hash number
    /// `hash`.
    #[inline]
    fn index(&self, hash: u8) -> usize {
        // Rolling values are already k-bit; the mask documents (and
        // guarantees) the plane-index range without narrowing anything.
        (self.hashers.index(hash as usize) & self.mask) as usize
    }

    /// Scores one prediction into its branch row, branchlessly. The
    /// totals are *not* kept here — [`predictions`](Self::predictions)
    /// sums the rows on demand, so the hot loop pays one row
    /// read-modify-write instead of two plus two global counters.
    #[inline]
    fn score(&mut self, row: u32, correct: bool) {
        let r = &mut self.rows[row as usize];
        r.predictions += 1;
        r.mispredictions += !correct as u64;
    }

    /// Total predictions scored, summed over the rows (cold path).
    fn predictions(&self) -> u64 {
        self.rows.iter().map(|r| r.predictions).sum()
    }

    /// Total mispredictions scored, summed over the rows (cold path).
    fn mispredictions(&self) -> u64 {
        self.rows.iter().map(|r| r.mispredictions).sum()
    }

    /// The observe step specialized to a record the caller has already
    /// matched as conditional or indirect: such a record always enters
    /// the THB (§3.2) and is never a call or return, so the history
    /// stack and the recording policy need no per-record checks.
    #[inline]
    fn observe_predicted(&mut self, record: &BranchRecord) {
        self.hashers.push(record.target());
    }

    /// The reference `observe` protocol: §6 history stack at
    /// call/return, then the §3.2 recording policy.
    #[inline]
    fn observe(&mut self, record: &BranchRecord) {
        if let Some(stack) = &mut self.stack {
            match record.kind() {
                BranchKind::Call => stack.push(self.hashers.snapshot()),
                BranchKind::Return => {
                    if let Some(snapshot) = stack.pop() {
                        self.hashers.restore(&snapshot);
                    }
                }
                _ => {}
            }
        }
        let store =
            record.enters_thb() || (self.store_returns && record.kind() == BranchKind::Return);
        if store {
            self.hashers.push(record.target());
        }
    }

    fn name(&self) -> String {
        if self.assigned.is_empty() {
            "fixed length path".into()
        } else {
            "variable length path".into()
        }
    }

    fn export_state(&self) -> KernelState {
        KernelState {
            hashers: self.hashers.snapshot(),
            stack: self.stack.as_ref().map(|s| s.contents().to_vec()).unwrap_or_default(),
            rows: self.rows.iter().map(|r| (r.pc, r.predictions, r.mispredictions)).collect(),
        }
    }

    /// Restores exported dynamic state into a kernel built from the
    /// same configuration and assignment. Every length is validated
    /// before anything is mutated, so a damaged snapshot yields a
    /// typed error and never a panic (or a half-restored kernel).
    fn restore_state(&mut self, state: &KernelState) -> Result<(), String> {
        let want = self.hashers.snapshot_len();
        if state.hashers.len() != want {
            return Err(format!(
                "hasher state has {} words, this configuration needs {want}",
                state.hashers.len()
            ));
        }
        match &self.stack {
            Some(stack) => {
                if state.stack.len() > stack.depth() {
                    return Err(format!(
                        "history stack holds {} snapshots, depth is {}",
                        state.stack.len(),
                        stack.depth()
                    ));
                }
                if let Some(bad) = state.stack.iter().find(|s| s.len() != want) {
                    return Err(format!(
                        "history-stack snapshot has {} words, this configuration needs {want}",
                        bad.len()
                    ));
                }
            }
            None => {
                if !state.stack.is_empty() {
                    return Err("history-stack state for a stackless configuration".into());
                }
            }
        }
        let mut row_of = HashMap::with_capacity(state.rows.len());
        for (i, &(pc, _, _)) in state.rows.iter().enumerate() {
            if row_of.insert(pc, i as u32).is_some() {
                return Err(format!("duplicate branch row for pc {pc:#x}"));
            }
        }
        self.hashers.restore(&state.hashers);
        if let Some(stack) = &mut self.stack {
            while stack.pop().is_some() {}
            for snapshot in &state.stack {
                stack.push(snapshot.clone());
            }
        }
        self.rows = state
            .rows
            .iter()
            .map(|&(pc, predictions, mispredictions)| BranchRow { pc, predictions, mispredictions })
            .collect();
        self.row_of = row_of;
        self.cache =
            vec![CacheLine { tag: 0, hash: 0, row: 0 }; 1 << CACHE_BITS].into_boxed_slice();
        Ok(())
    }
}

/// The structure-of-arrays conditional path predictor: bit-identical
/// to [`PathConditional`](crate::PathConditional) with a static hash
/// assignment, built for throughput.
///
/// Drive it record-at-a-time through the fused [`apply`](Self::apply)
/// (which also accumulates [`RunStats`-shaped](Self::predictions)
/// statistics internally, with no per-record `HashMap` traffic), or
/// through the standard `ConditionalPredictor` trait where a call site
/// expects the reference protocol.
///
/// # Example
///
/// ```
/// use vlpp_core::{CondKernel, HashAssignment, PathConfig};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut kernel = CondKernel::new(&PathConfig::new(10), &HashAssignment::fixed(4));
/// let record = BranchRecord::conditional(Addr::new(0x40), Addr::new(0x80), true);
/// let (predicted, correct) = kernel.apply(&record).expect("conditional record");
/// assert_eq!(predicted, false); // cold counters predict not-taken
/// assert!(!correct);
/// assert_eq!(kernel.predictions(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CondKernel {
    core: KernelCore,
    plane: CounterPlane,
}

impl CondKernel {
    /// Builds the kernel for `config` and a static `assignment` — the
    /// same parameters `PathConditional::new` takes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the reference constructor
    /// (index width out of `1..=28`, zero THB capacity).
    pub fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        CondKernel {
            plane: CounterPlane::new(1 << config.index_bits),
            core: KernelCore::new(config, assignment),
        }
    }

    /// Runs one record through the full predict → score → train →
    /// observe protocol. Returns `(predicted_taken, correct)` for
    /// conditional records, `None` (observe only) otherwise.
    #[inline]
    pub fn apply(&mut self, record: &BranchRecord) -> Option<(bool, bool)> {
        if record.is_conditional() {
            let (hash, row) = self.core.resolve(record.pc());
            let index = self.core.index(hash);
            let taken = record.taken();
            let predicted = self.plane.predict_update(index, taken);
            let correct = predicted == taken;
            self.core.score(row, correct);
            self.core.observe_predicted(record);
            Some((predicted, correct))
        } else {
            self.core.observe(record);
            None
        }
    }

    /// Total predictions scored through [`apply`](Self::apply).
    pub fn predictions(&self) -> u64 {
        self.core.predictions()
    }

    /// Total mispredictions scored through [`apply`](Self::apply).
    pub fn mispredictions(&self) -> u64 {
        self.core.mispredictions()
    }

    /// Number of distinct static branches predicted.
    pub fn static_branches(&self) -> usize {
        self.core.rows.iter().filter(|r| r.predictions > 0).count()
    }

    /// Per-branch `(pc, predictions, mispredictions)` rows for branches
    /// that were actually predicted, in first-seen order.
    pub fn branch_stats(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.core
            .rows
            .iter()
            .filter(|r| r.predictions > 0)
            .map(|r| (r.pc, r.predictions, r.mispredictions))
    }

    /// Every counter value in index order (diagnostic; the differential
    /// tests compare this against the reference table).
    pub fn counter_values(&self) -> Vec<u8> {
        self.plane.values()
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.plane.bytes()
    }

    /// Exports the kernel's dynamic state plus the packed counter
    /// words for a model snapshot.
    pub fn export_state(&self) -> (KernelState, Vec<u64>) {
        (self.core.export_state(), self.plane.words().to_vec())
    }

    /// Restores state exported by [`export_state`](Self::export_state)
    /// into a kernel built from the same configuration and assignment.
    /// Returns a description of the first mismatch on damaged input,
    /// leaving the kernel unchanged; never panics.
    pub fn restore_state(&mut self, state: &KernelState, words: Vec<u64>) -> Result<(), String> {
        let plane = CounterPlane::from_words(words, self.plane.len())
            .ok_or_else(|| "counter plane word count mismatch".to_string())?;
        self.core.restore_state(state)?;
        self.plane = plane;
        Ok(())
    }
}

impl BranchObserver for CondKernel {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl ConditionalPredictor for CondKernel {
    fn predict(&mut self, pc: Addr) -> bool {
        let (hash, _) = self.core.resolve(pc);
        self.plane.predict_taken(self.core.index(hash))
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        let (hash, _) = self.core.resolve(pc);
        self.plane.update(self.core.index(hash), taken);
    }

    fn name(&self) -> String {
        self.core.name()
    }
}

/// The structure-of-arrays indirect path predictor: bit-identical to
/// [`PathIndirect`](crate::PathIndirect) with a static hash
/// assignment. See [`CondKernel`] for the layout story.
///
/// # Example
///
/// ```
/// use vlpp_core::{HashAssignment, IndKernel, PathConfig};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut kernel = IndKernel::new(&PathConfig::new(8), &HashAssignment::fixed(2));
/// let record = BranchRecord::indirect(Addr::new(0x40), Addr::new(0x9000));
/// let (target, correct) = kernel.apply(&record).expect("indirect record");
/// assert_eq!(target, Addr::NULL); // cold table
/// assert!(!correct);
/// ```
#[derive(Debug, Clone)]
pub struct IndKernel {
    core: KernelCore,
    plane: TargetPlane,
}

impl IndKernel {
    /// Builds the kernel for `config` and a static `assignment` — the
    /// same parameters `PathIndirect::new` takes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the reference constructor.
    pub fn new(config: &PathConfig, assignment: &HashAssignment) -> Self {
        IndKernel {
            plane: TargetPlane::new(1 << config.index_bits),
            core: KernelCore::new(config, assignment),
        }
    }

    /// Runs one record through the full predict → score → train →
    /// observe protocol. Returns `(predicted_target, correct)` for
    /// indirect records (returns excluded, as in the paper), `None`
    /// otherwise.
    #[inline]
    pub fn apply(&mut self, record: &BranchRecord) -> Option<(Addr, bool)> {
        if record.is_indirect() {
            let pc = record.pc();
            let (hash, row) = self.core.resolve(pc);
            let index = self.core.index(hash);
            let target = record.target();
            let predicted = self.plane.predict_train(index, pc, target);
            let correct = predicted == target;
            self.core.score(row, correct);
            self.core.observe_predicted(record);
            Some((predicted, correct))
        } else {
            self.core.observe(record);
            None
        }
    }

    /// Total predictions scored through [`apply`](Self::apply).
    pub fn predictions(&self) -> u64 {
        self.core.predictions()
    }

    /// Total mispredictions scored through [`apply`](Self::apply).
    pub fn mispredictions(&self) -> u64 {
        self.core.mispredictions()
    }

    /// Number of distinct static branches predicted.
    pub fn static_branches(&self) -> usize {
        self.core.rows.iter().filter(|r| r.predictions > 0).count()
    }

    /// Per-branch `(pc, predictions, mispredictions)` rows for branches
    /// that were actually predicted, in first-seen order.
    pub fn branch_stats(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.core
            .rows
            .iter()
            .filter(|r| r.predictions > 0)
            .map(|r| (r.pc, r.predictions, r.mispredictions))
    }

    /// Every target register in index order (diagnostic; the
    /// differential tests compare this against the reference table).
    pub fn target_entries(&self) -> Vec<Option<u64>> {
        self.plane.entries()
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.plane.bytes()
    }

    /// Exports the kernel's dynamic state plus the target plane's raw
    /// `(targets, validity_words)` arrays for a model snapshot.
    pub fn export_state(&self) -> (KernelState, Vec<u64>, Vec<u64>) {
        let (targets, valid) = self.plane.raw_parts();
        (self.core.export_state(), targets.to_vec(), valid.to_vec())
    }

    /// Restores state exported by [`export_state`](Self::export_state)
    /// into a kernel built from the same configuration and assignment.
    /// Returns a description of the first mismatch on damaged input,
    /// leaving the kernel unchanged; never panics.
    pub fn restore_state(
        &mut self,
        state: &KernelState,
        targets: Vec<u64>,
        valid: Vec<u64>,
    ) -> Result<(), String> {
        let plane = TargetPlane::from_raw_parts(targets, valid, self.plane.len())
            .ok_or_else(|| "target plane array length mismatch".to_string())?;
        self.core.restore_state(state)?;
        self.plane = plane;
        Ok(())
    }
}

impl BranchObserver for IndKernel {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl IndirectPredictor for IndKernel {
    fn predict(&mut self, pc: Addr) -> Addr {
        let (hash, _) = self.core.resolve(pc);
        self.plane.predict(self.core.index(hash), pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        let (hash, _) = self.core.resolve(pc);
        self.plane.train(self.core.index(hash), target);
    }

    fn name(&self) -> String {
        self.core.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{PathConditional, PathIndirect};

    fn cond(pc: u64, target: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(Addr::new(pc), Addr::new(target), taken)
    }

    /// A deterministic mixed-kind record stream. Indirect branches
    /// sometimes live and land above 2^32 with *different* high halves
    /// (regression surface for the removed low-32 target splice).
    fn stream(n: usize, seed: u64) -> Vec<BranchRecord> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pc = 0x40 + ((x >> 40) & 0x3f) * 4;
                let target = ((x >> 20) & 0xff) << 2;
                let pc_high = ((x >> 55) & 1) << 33;
                let target_high = ((x >> 54) & 1) << 35;
                match (x >> 10) % 5 {
                    0 => BranchRecord::indirect(
                        Addr::new(pc | pc_high),
                        Addr::new((0x4000 + target) | target_high),
                    ),
                    1 => BranchRecord::call(Addr::new(pc), Addr::new(0x8000 + target)),
                    2 => BranchRecord::ret(Addr::new(pc), Addr::new(0x100 + target)),
                    _ => cond(pc, target, (x >> 5) & 1 == 1),
                }
            })
            .collect()
    }

    #[test]
    fn cond_kernel_matches_reference_on_a_mixed_stream() {
        let config = PathConfig::new(10);
        let mut assignment = HashAssignment::fixed(6);
        assignment.assign(Addr::new(0x44), 1);
        assignment.assign(Addr::new(0x48), 13);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        for record in stream(4000, 7) {
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                let (predicted, correct) = kernel.apply(&record).expect("conditional");
                assert_eq!(predicted, expected);
                assert_eq!(correct, expected == record.taken());
            } else {
                assert_eq!(kernel.apply(&record), None);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.counter_values(), reference.counter_values());
    }

    #[test]
    fn ind_kernel_matches_reference_on_a_mixed_stream() {
        let config = PathConfig::new(8);
        let mut assignment = HashAssignment::fixed(3);
        assignment.assign(Addr::new(0x50), 8);
        let mut kernel = IndKernel::new(&config, &assignment);
        let mut reference = PathIndirect::new(config, assignment);
        for record in stream(4000, 21) {
            if record.is_indirect() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.target());
                let (predicted, correct) = kernel.apply(&record).expect("indirect");
                assert_eq!(predicted, expected);
                assert_eq!(correct, expected == record.target());
            } else {
                assert_eq!(kernel.apply(&record), None);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.target_entries(), reference.target_entries());
    }

    #[test]
    fn kernel_stats_count_like_run_stats() {
        let config = PathConfig::new(8);
        let mut kernel = CondKernel::new(&config, &HashAssignment::fixed(2));
        let records = [cond(0x40, 0x80, true), cond(0x40, 0x80, true), cond(0x44, 0x90, false)];
        for record in &records {
            kernel.apply(record);
        }
        assert_eq!(kernel.predictions(), 3);
        assert_eq!(kernel.static_branches(), 2);
        let by_pc: HashMap<u64, (u64, u64)> =
            kernel.branch_stats().map(|(pc, p, m)| (pc, (p, m))).collect();
        assert_eq!(by_pc[&0x40].0, 2);
        assert_eq!(by_pc[&0x44], (1, 0), "cold counter predicts not-taken: correct");
        let total: u64 = by_pc.values().map(|v| v.1).sum();
        assert_eq!(total, kernel.mispredictions());
    }

    #[test]
    fn trait_protocol_matches_fused_apply() {
        let config = PathConfig::new(9);
        let assignment = HashAssignment::fixed(5);
        let mut fused = CondKernel::new(&config, &assignment);
        let mut stepwise = CondKernel::new(&config, &assignment);
        for record in stream(2000, 3) {
            let via_apply = fused.apply(&record);
            if record.is_conditional() {
                let predicted = stepwise.predict(record.pc());
                stepwise.train(record.pc(), record.taken());
                assert_eq!(via_apply.map(|(p, _)| p), Some(predicted));
            }
            stepwise.observe(&record);
        }
        assert_eq!(fused.counter_values(), stepwise.counter_values());
    }

    #[test]
    fn history_stack_restores_like_reference() {
        let config = PathConfig::new(10).with_history_stack(4);
        let assignment = HashAssignment::fixed(4);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        let mut x = 11u64;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let record = match i % 7 {
                0 => BranchRecord::call(Addr::new(0x200), Addr::new(0x4000)),
                3 => BranchRecord::ret(Addr::new(0x4100), Addr::new(0x204)),
                _ => cond(0x100 + (i % 5) * 4, ((x >> 30) & 0xff) << 2, (x >> 9) & 1 == 1),
            };
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                let (predicted, _) = kernel.apply(&record).expect("conditional");
                assert_eq!(predicted, expected, "record {i}");
            } else {
                kernel.apply(&record);
            }
            reference.observe(&record);
        }
        assert_eq!(kernel.counter_values(), reference.counter_values());
    }

    #[test]
    fn assignment_above_capacity_clamps_like_reference() {
        let mut config = PathConfig::new(8);
        config.thb_capacity = 4;
        let assignment = HashAssignment::fixed(32); // clamps to 4
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        for record in stream(1000, 5) {
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                assert_eq!(kernel.apply(&record).map(|(p, _)| p), Some(expected));
            } else {
                kernel.apply(&record);
            }
            reference.observe(&record);
        }
    }

    #[test]
    fn names_match_the_reference() {
        let config = PathConfig::new(8);
        let fixed = CondKernel::new(&config, &HashAssignment::fixed(4));
        assert_eq!(fixed.name(), "fixed length path");
        let mut a = HashAssignment::fixed(4);
        a.assign(Addr::new(0x10), 2);
        let variable = IndKernel::new(&config, &a);
        assert_eq!(variable.name(), "variable length path");
    }

    #[test]
    fn target_plane_entries_round_trip() {
        let mut plane = TargetPlane::new(70);
        assert_eq!(plane.entry(69), None);
        plane.train(69, Addr::new(0xdead_beef_1234));
        assert_eq!(plane.entry(69), Some(0xdead_beef_1234));
        assert_eq!(plane.entries().iter().filter(|e| e.is_some()).count(), 1);
        assert_eq!(plane.bytes(), 280);
    }

    #[test]
    fn target_plane_keeps_high_halves_distinct_from_pc() {
        // Regression for the footnote-1 splice: pre-fix the plane
        // stored only low-32 targets and spliced the pc's high half
        // back in, so a repeating branch whose pc and target live in
        // different 4 GiB regions could never predict correctly.
        let mut plane = TargetPlane::new(16);
        let pc = Addr::new(0x1_0000_0040);
        let target = Addr::new(0x7_0000_9000);
        assert_eq!(plane.predict_train(5, pc, target), Addr::NULL);
        assert_eq!(plane.predict_train(5, pc, target), target);
        assert_eq!(plane.predict(5, pc), target);
    }

    #[test]
    fn exported_state_restores_to_an_identical_kernel() {
        // Drive a kernel, export, restore into a fresh kernel, and
        // require the two to stay bit-identical on a shared tail —
        // including through history-stack traffic.
        let config = PathConfig::new(9).with_history_stack(3);
        let assignment = HashAssignment::fixed(5);
        let mut original = CondKernel::new(&config, &assignment);
        for record in stream(1500, 17) {
            original.apply(&record);
        }
        let (state, words) = original.export_state();
        let mut restored = CondKernel::new(&config, &assignment);
        restored.restore_state(&state, words).expect("compatible state");
        assert_eq!(restored.counter_values(), original.counter_values());
        assert_eq!(restored.predictions(), original.predictions());
        for record in stream(500, 29) {
            assert_eq!(restored.apply(&record), original.apply(&record));
        }
        assert_eq!(restored.counter_values(), original.counter_values());
        assert_eq!(restored.mispredictions(), original.mispredictions());
    }

    #[test]
    fn ind_kernel_state_round_trips() {
        let config = PathConfig::new(8);
        let assignment = HashAssignment::fixed(3);
        let mut original = IndKernel::new(&config, &assignment);
        for record in stream(1200, 41) {
            original.apply(&record);
        }
        let (state, targets, valid) = original.export_state();
        let mut restored = IndKernel::new(&config, &assignment);
        restored.restore_state(&state, targets, valid).expect("compatible state");
        assert_eq!(restored.target_entries(), original.target_entries());
        for record in stream(400, 53) {
            assert_eq!(restored.apply(&record), original.apply(&record));
        }
        assert_eq!(restored.predictions(), original.predictions());
    }

    #[test]
    fn restore_state_rejects_damaged_input_without_panicking() {
        let config = PathConfig::new(8);
        let assignment = HashAssignment::fixed(3);
        let donor = CondKernel::new(&config, &assignment);
        let (state, words) = donor.export_state();

        let mut kernel = CondKernel::new(&config, &assignment);
        let mut short = state.clone();
        short.hashers.pop();
        assert!(kernel.restore_state(&short, words.clone()).is_err());

        let mut stacked = state.clone();
        stacked.stack.push(vec![0; state.hashers.len()]);
        assert!(kernel.restore_state(&stacked, words.clone()).is_err(), "stackless config");

        let mut duped = state.clone();
        duped.rows = vec![(0x40, 1, 0), (0x40, 2, 1)];
        assert!(kernel.restore_state(&duped, words.clone()).is_err(), "duplicate rows");

        let mut bad_words = words.clone();
        bad_words.pop();
        assert!(kernel.restore_state(&state, bad_words).is_err(), "short plane");

        // All rejections left the kernel usable and unchanged.
        kernel.restore_state(&state, words).expect("pristine state still restores");
    }

    #[test]
    fn target_plane_raw_parts_round_trip() {
        let mut plane = TargetPlane::new(70);
        plane.train(3, Addr::new(0x9_0000_1000));
        plane.train(69, Addr::new(0x4000));
        let (targets, valid) = plane.raw_parts();
        let rebuilt = TargetPlane::from_raw_parts(targets.to_vec(), valid.to_vec(), 70)
            .expect("matching lengths");
        assert_eq!(rebuilt, plane);
        assert!(TargetPlane::from_raw_parts(vec![0; 70], vec![0; 2], 71).is_none());
        assert!(TargetPlane::from_raw_parts(vec![0; 70], vec![0; 1], 70).is_none());
        assert!(TargetPlane::from_raw_parts(Vec::new(), Vec::new(), 0).is_none());
    }
}
