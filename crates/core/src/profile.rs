//! The two-step profiling heuristic (paper §3.5) that selects a hash
//! function number for each static branch.
//!
//! **Step 1** simulates one *fixed length* path predictor per hash
//! function — each with its own private table — over the profile trace,
//! recording per static branch how many times each predictor was correct.
//! The `candidates` best hash numbers per branch survive.
//!
//! **Step 2** reduces the interference that appears when all hash
//! functions share the *single* table of the real predictor: it simulates
//! the variable length path predictor `iterations` times (the paper uses
//! 7). Each iteration picks, per branch, the candidate with the fewest
//! recorded mispredictions (never-tested candidates count as zero, so
//! every candidate is tried), simulates, and writes each branch's
//! misprediction count back into the record for the candidate that was
//! tested. The final assignment takes each branch's best-recorded
//! candidate.
//!
//! Unprofiled branches get the *default* hash number — the one whose
//! step-1 predictor scored the most correct predictions overall.
//!
//! Because step 1 *is* a sweep of every fixed path length over the
//! profile input, its per-hash totals ([`ProfileReport::step1`]) are also
//! how the workspace reproduces Table 2 (best fixed length per table
//! size) and the "tuned" fixed length predictor of Figures 9–10.

use std::collections::HashMap;

use vlpp_predict::{BranchObserver, ConditionalPredictor, IndirectPredictor};
use vlpp_trace::{Addr, BranchKind, Trace};

use crate::hash::IncrementalHashers;
use crate::path::{PathConditional, PathConfig, PathIndirect};
use crate::select::HashAssignment;

/// Parameters of the profiling heuristic.
///
/// # Example
///
/// ```
/// use vlpp_core::{PathConfig, ProfileConfig};
///
/// let p = ProfileConfig::new(PathConfig::conditional_for_bytes(4096));
/// assert_eq!(p.candidates, 3);
/// assert_eq!(p.iterations, 7);
/// assert_eq!(p.hash_set.len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileConfig {
    /// The predictor structure profiled for (and that the resulting
    /// assignment should be used with).
    pub path: PathConfig,
    /// The hash function numbers implemented, in increasing order.
    /// Default: `1..=32` (one per THB slot). A sparse subset models the
    /// §3.1 note about implementing fewer hash functions.
    pub hash_set: Vec<u8>,
    /// Candidates kept per static branch after step 1 (paper: 3).
    pub candidates: usize,
    /// Step-2 iterations (paper: 7; must be ≥ `candidates` for every
    /// candidate to be tested).
    pub iterations: usize,
}

impl ProfileConfig {
    /// The paper's configuration for a given predictor structure: hash
    /// set `1..=capacity`, 3 candidates, 7 iterations.
    pub fn new(path: PathConfig) -> Self {
        let top = path.thb_capacity.min(crate::MAX_PATH_LENGTH) as u8;
        ProfileConfig { path, hash_set: (1..=top).collect(), candidates: 3, iterations: 7 }
    }

    /// Replaces the hash set (for the subset-of-hash-functions ablation).
    ///
    /// # Panics
    ///
    /// Panics if `hash_set` is empty, unsorted, or contains numbers
    /// outside `1..=path.thb_capacity`. Hash number `X` reads the `X`
    /// most recent THB targets, so a number above the THB capacity has
    /// no defined meaning — older versions silently clamped it to the
    /// capacity during step 1, which made two "different" hash functions
    /// score as the same predictor.
    pub fn with_hash_set(mut self, hash_set: Vec<u8>) -> Self {
        assert!(!hash_set.is_empty(), "hash set must not be empty");
        assert!(hash_set.windows(2).all(|w| w[0] < w[1]), "hash set must be strictly increasing");
        let capacity = self.path.thb_capacity;
        assert!(
            hash_set.iter().all(|&h| h >= 1 && h as usize <= capacity),
            "hash numbers must be in 1..={capacity} (the THB capacity); got {hash_set:?}"
        );
        self.hash_set = hash_set;
        self
    }

    /// Replaces the number of step-1 candidates per branch.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is 0.
    pub fn with_candidates(mut self, candidates: usize) -> Self {
        assert!(candidates >= 1, "need at least one candidate");
        self.candidates = candidates;
        self
    }

    /// Replaces the number of step-2 iterations. Zero iterations skips
    /// step 2 entirely (the `interference` ablation).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }
}

/// Step-1 accuracy totals for one hash function across the whole profile
/// trace — i.e. the performance of the *fixed length* path predictor of
/// that length on this workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashStat {
    /// The hash function number (path length).
    pub hash: u8,
    /// Dynamic branches predicted.
    pub predictions: u64,
    /// Correct predictions.
    pub correct: u64,
}

impl HashStat {
    /// Misprediction rate in [0, 1]; zero if nothing was predicted.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            (self.predictions - self.correct) as f64 / self.predictions as f64
        }
    }
}

/// The output of profiling: the per-branch assignment plus diagnostics.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The hash assignment to build the variable length path predictor
    /// with.
    pub assignment: HashAssignment,
    /// The default hash number (also `assignment.default_hash()`).
    pub default_hash: u8,
    /// Step-1 totals, one entry per hash number in the configured set.
    pub step1: Vec<HashStat>,
    /// Number of static branches exercised during profiling.
    pub profiled_branches: usize,
}

impl ProfileReport {
    /// The hash number whose *fixed length* predictor had the lowest
    /// step-1 misprediction rate — how the "tuned" fixed length
    /// predictor of Figures 9–10 picks its per-benchmark length.
    pub fn best_fixed_hash(&self) -> u8 {
        best_hash(&self.step1)
    }
}

/// Lowest-miss-rate hash; ties break toward the shorter path (faster
/// training, less interference).
fn best_hash(stats: &[HashStat]) -> u8 {
    stats
        .iter()
        .min_by(|a, b| {
            a.miss_rate()
                .partial_cmp(&b.miss_rate())
                .expect("rates are finite")
                .then(a.hash.cmp(&b.hash))
        })
        .map(|s| s.hash)
        .unwrap_or(1)
}

/// Runs the §3.5 heuristic over profile traces.
///
/// # Example
///
/// ```
/// use vlpp_core::{PathConditional, PathConfig, ProfileBuilder, ProfileConfig};
/// use vlpp_trace::{Addr, BranchRecord, Trace};
///
/// let mut trace = Trace::new();
/// for i in 0..100u64 {
///     let taken = i % 2 == 0;
///     trace.push(BranchRecord::conditional(Addr::new(0x40), Addr::new(0x80 + 4 * (taken as u64)), taken));
/// }
/// let config = ProfileConfig::new(PathConfig::new(8));
/// let report = ProfileBuilder::new(config.clone()).profile_conditional(&trace);
/// let _vlp = PathConditional::new(config.path, report.assignment);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    config: ProfileConfig,
}

/// Per-branch step-1 bookkeeping.
#[derive(Debug, Clone)]
struct BranchTally {
    /// Correct predictions per hash-set position.
    correct: Vec<u32>,
    /// Dynamic executions of this branch.
    executed: u32,
}

impl ProfileBuilder {
    /// Creates a builder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.hash_set` is empty or names a hash number above
    /// `config.path.thb_capacity` (possible by mutating the public
    /// fields directly; [`ProfileConfig::with_hash_set`] already rejects
    /// both).
    pub fn new(config: ProfileConfig) -> Self {
        assert!(!config.hash_set.is_empty(), "hash set must not be empty");
        let capacity = config.path.thb_capacity;
        assert!(
            config.hash_set.iter().all(|&h| h >= 1 && h as usize <= capacity),
            "hash numbers must be in 1..={capacity} (the THB capacity)"
        );
        ProfileBuilder { config }
    }

    /// The configuration this builder profiles with.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// Profiles conditional branches over `trace` and produces the
    /// assignment for a conditional variable length path predictor.
    pub fn profile_conditional(&self, trace: &Trace) -> ProfileReport {
        let (tallies, step1) = self.step1(trace, Population::Conditional);
        let default_hash = best_hash(&step1);
        let candidates = self.pick_candidates(&tallies);
        let assignment = self.step2(trace, Population::Conditional, &candidates, default_hash);
        ProfileReport { assignment, default_hash, step1, profiled_branches: tallies.len() }
    }

    /// Profiles indirect branches over `trace` and produces the
    /// assignment for an indirect variable length path predictor.
    pub fn profile_indirect(&self, trace: &Trace) -> ProfileReport {
        let (tallies, step1) = self.step1(trace, Population::Indirect);
        let default_hash = best_hash(&step1);
        let candidates = self.pick_candidates(&tallies);
        let assignment = self.step2(trace, Population::Indirect, &candidates, default_hash);
        ProfileReport { assignment, default_hash, step1, profiled_branches: tallies.len() }
    }

    /// Step 1: one private-table fixed-length predictor per hash number,
    /// all simulated in a single *fused* pass.
    ///
    /// This is the hottest loop in the repo (32 predictors × every
    /// dynamic branch), so instead of 32 separately-allocated
    /// [`CounterTable`](crate::CounterTable)s /
    /// [`TargetTable`](crate::TargetTable)s and a per-hash `match` on
    /// the population, the per-hash state lives in one contiguous
    /// `[hash × index]` array (hash `hi`'s table occupies
    /// `hi·2^k .. (hi+1)·2^k`) and the population dispatch is hoisted
    /// out of the per-record work entirely. Each `(hash, index)` cell
    /// sees exactly the predict/train sequence the per-table version
    /// gave it, so the results are bit-identical — a property test
    /// checks the fused kernel against the per-table reference.
    fn step1(
        &self,
        trace: &Trace,
        population: Population,
    ) -> (HashMap<u64, BranchTally>, Vec<HashStat>) {
        let cfg = &self.config;
        let k = cfg.path.index_bits;
        let capacity = cfg.path.thb_capacity;
        let n_hashes = cfg.hash_set.len();
        let table_len = 1usize << k;
        // Register slot of each configured hash number (0-based).
        let slots: Vec<usize> = cfg.hash_set.iter().map(|&hash| hash as usize - 1).collect();

        let mut hashers = IncrementalHashers::new(capacity, k);
        let mut tallies: HashMap<u64, BranchTally> = HashMap::new();

        match population {
            Population::Conditional => {
                let mut counters = vec![vlpp_predict::Counter2::default(); n_hashes * table_len];
                for record in trace.iter() {
                    if record.is_conditional() {
                        let taken = record.taken();
                        let tally = tallies.entry(record.pc().raw()).or_insert_with(|| {
                            BranchTally { correct: vec![0; n_hashes], executed: 0 }
                        });
                        tally.executed += 1;
                        let indices = hashers.indices();
                        for (hi, &slot) in slots.iter().enumerate() {
                            let cell = hi * table_len + indices[slot] as usize;
                            let counter = &mut counters[cell];
                            if counter.predict_taken() == taken {
                                tally.correct[hi] += 1;
                            }
                            counter.update(taken);
                        }
                    }
                    if record.enters_thb()
                        || (cfg.path.store_returns && record.kind() == BranchKind::Return)
                    {
                        hashers.push(record.target());
                    }
                }
            }
            Population::Indirect => {
                let mut targets = vec![0u64; n_hashes * table_len];
                let mut valid = vec![false; n_hashes * table_len];
                for record in trace.iter() {
                    if record.is_indirect() {
                        let pc = record.pc();
                        let target = record.target();
                        let tally = tallies.entry(pc.raw()).or_insert_with(|| BranchTally {
                            correct: vec![0; n_hashes],
                            executed: 0,
                        });
                        tally.executed += 1;
                        let indices = hashers.indices();
                        for (hi, &slot) in slots.iter().enumerate() {
                            let cell = hi * table_len + indices[slot] as usize;
                            let prediction =
                                if valid[cell] { Addr::new(targets[cell]) } else { Addr::NULL };
                            if prediction == target {
                                tally.correct[hi] += 1;
                            }
                            targets[cell] = target.raw();
                            valid[cell] = true;
                        }
                    }
                    if record.enters_thb()
                        || (cfg.path.store_returns && record.kind() == BranchKind::Return)
                    {
                        hashers.push(record.target());
                    }
                }
            }
        }

        // `core.profile.step1_records`: trace records scanned by the
        // fused step-1 kernel, process-wide (see OBSERVABILITY.md).
        vlpp_metrics::counter("core.profile.step1_records").add(trace.len() as u64);

        // Per-hash totals follow from the tallies: every relevant record
        // produced one prediction per hash.
        let executed: u64 = tallies.values().map(|t| t.executed as u64).sum();
        let mut totals: Vec<HashStat> = cfg
            .hash_set
            .iter()
            .map(|&hash| HashStat { hash, predictions: executed, correct: 0 })
            .collect();
        for tally in tallies.values() {
            for (hi, &correct) in tally.correct.iter().enumerate() {
                totals[hi].correct += correct as u64;
            }
        }
        (tallies, totals)
    }

    /// Picks each branch's `candidates` best hash numbers from the step-1
    /// tallies (most correct predictions; ties toward shorter paths).
    fn pick_candidates(&self, tallies: &HashMap<u64, BranchTally>) -> HashMap<u64, Vec<u8>> {
        let cfg = &self.config;
        tallies
            .iter()
            .map(|(&pc, tally)| {
                let mut order: Vec<usize> = (0..cfg.hash_set.len()).collect();
                // Most correct first; tie toward earlier (shorter) hash.
                order.sort_by(|&a, &b| tally.correct[b].cmp(&tally.correct[a]).then(a.cmp(&b)));
                let picked: Vec<u8> =
                    order.iter().take(cfg.candidates).map(|&i| cfg.hash_set[i]).collect();
                (pc, picked)
            })
            .collect()
    }

    /// Step 2: iterated candidate refinement against the shared table.
    fn step2(
        &self,
        trace: &Trace,
        population: Population,
        candidates: &HashMap<u64, Vec<u8>>,
        default_hash: u8,
    ) -> HashAssignment {
        let cfg = &self.config;
        // misses[pc][candidate index]: misprediction count from the
        // iteration that tested this candidate; None = never tested, and
        // per the paper "untested candidates will always be chosen first"
        // because they count as zero mispredictions.
        let mut misses: HashMap<u64, Vec<Option<u64>>> =
            candidates.iter().map(|(&pc, cands)| (pc, vec![None; cands.len()])).collect();

        let choose = |misses: &HashMap<u64, Vec<Option<u64>>>| -> HashMap<u64, usize> {
            candidates
                .keys()
                .map(|&pc| {
                    let record = &misses[&pc];
                    let best = record
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, m)| (m.unwrap_or(0), *i))
                        .map(|(i, _)| i)
                        .expect("every branch has at least one candidate");
                    (pc, best)
                })
                .collect()
        };

        // `core.profile.step2_iterations`: refinement simulations run,
        // process-wide (see OBSERVABILITY.md).
        let iterations = vlpp_metrics::counter("core.profile.step2_iterations");

        for _ in 0..cfg.iterations {
            iterations.incr();
            let chosen = choose(&misses);
            let mut assignment = HashAssignment::fixed(default_hash);
            for (&pc, &ci) in &chosen {
                assignment.assign(Addr::new(pc), candidates[&pc][ci]);
            }
            let iteration_misses = self.simulate(trace, population, assignment);
            for (&pc, &ci) in &chosen {
                let count = iteration_misses.get(&pc).copied().unwrap_or(0);
                misses.get_mut(&pc).expect("tracked branch")[ci] = Some(count);
            }
        }

        // Final selection: fewest recorded mispredictions per branch.
        let chosen = choose(&misses);
        let mut assignment = HashAssignment::fixed(default_hash);
        for (&pc, &ci) in &chosen {
            assignment.assign(Addr::new(pc), candidates[&pc][ci]);
        }
        assignment
    }

    /// Simulates one variable length path predictor over the profile
    /// trace, returning per-branch misprediction counts.
    fn simulate(
        &self,
        trace: &Trace,
        population: Population,
        assignment: HashAssignment,
    ) -> HashMap<u64, u64> {
        let mut misses: HashMap<u64, u64> = HashMap::new();
        match population {
            Population::Conditional => {
                let mut p = PathConditional::new(self.config.path.clone(), assignment);
                for record in trace.iter() {
                    if record.is_conditional() {
                        let prediction = p.predict(record.pc());
                        if prediction != record.taken() {
                            *misses.entry(record.pc().raw()).or_insert(0) += 1;
                        }
                        p.train(record.pc(), record.taken());
                    }
                    p.observe(record);
                }
            }
            Population::Indirect => {
                let mut p = PathIndirect::new(self.config.path.clone(), assignment);
                for record in trace.iter() {
                    if record.is_indirect() {
                        let prediction = p.predict(record.pc());
                        if prediction != record.target() {
                            *misses.entry(record.pc().raw()).or_insert(0) += 1;
                        }
                        p.train(record.pc(), record.target());
                    }
                    p.observe(record);
                }
            }
        }
        misses
    }
}

/// Which branch population a profile run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Population {
    Conditional,
    Indirect,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlpp_trace::BranchRecord;

    /// A workload with two conditional branches: one determined by the
    /// immediately preceding target (needs length 1) and one determined
    /// by the target two branches back (needs length >= 2).
    fn two_needs_trace(n: usize, seed: u64) -> Trace {
        let mut trace = Trace::new();
        let mut x = seed;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let far = (x >> 20) & 1 == 1;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let near = (x >> 20) & 1 == 1;
            // Target word addresses must stay distinct after 10-bit
            // compression, so use small values.
            // Encodes `far` two branches back.
            trace.push(BranchRecord::conditional(
                Addr::new(0x100),
                Addr::new(if far { 0x11 << 2 } else { 0x12 << 2 }),
                far,
            ));
            // Encodes `near` one branch back.
            trace.push(BranchRecord::conditional(
                Addr::new(0x200),
                Addr::new(if near { 0x23 << 2 } else { 0x24 << 2 }),
                near,
            ));
            // Needs only length 1 (depends on `near`).
            trace.push(BranchRecord::conditional(
                Addr::new(0x300),
                Addr::new(if near { 0x35 << 2 } else { 0x36 << 2 }),
                near,
            ));
            // Needs length 2 (depends on `far`; `near` in between is noise).
            trace.push(BranchRecord::conditional(
                Addr::new(0x400),
                Addr::new(if far { 0x47 << 2 } else { 0x48 << 2 }),
                far,
            ));
        }
        trace
    }

    fn config() -> ProfileConfig {
        ProfileConfig::new(PathConfig::new(10)).with_hash_set((1..=8).collect())
    }

    #[test]
    #[should_panic(expected = "THB capacity")]
    fn hash_set_above_thb_capacity_is_rejected() {
        // The default THB holds 32 targets, so hash number 33 would read
        // history that does not exist; it used to be silently clamped.
        ProfileConfig::new(PathConfig::new(10)).with_hash_set(vec![4, 33]);
    }

    #[test]
    #[should_panic(expected = "THB capacity")]
    fn hash_set_zero_is_rejected() {
        ProfileConfig::new(PathConfig::new(10)).with_hash_set(vec![0, 1]);
    }

    #[test]
    fn hash_set_at_capacity_is_accepted() {
        let config = ProfileConfig::new(PathConfig::new(10)).with_hash_set(vec![1, 32]);
        assert_eq!(config.hash_set, vec![1, 32]);
    }

    #[test]
    fn step1_totals_cover_all_hashes() {
        let trace = two_needs_trace(500, 42);
        let report = ProfileBuilder::new(config()).profile_conditional(&trace);
        assert_eq!(report.step1.len(), 8);
        for stat in &report.step1 {
            assert_eq!(stat.predictions, 2000);
            assert!(stat.correct <= stat.predictions);
        }
        assert_eq!(report.profiled_branches, 4);
    }

    #[test]
    fn assignment_gives_each_branch_enough_history() {
        let trace = two_needs_trace(800, 7);
        let report = ProfileBuilder::new(config()).profile_conditional(&trace);
        // Branch 0x400 needs >= 2 targets of history (actually 3: its own
        // distance includes the two interleaved branches). What matters:
        // its assigned length must exceed branch 0x300's needs and be
        // at least 2.
        let needs_long = report.assignment.get(Addr::new(0x400));
        assert!(needs_long >= 2, "0x400 needs at least 2, got {needs_long}");
        // The long-need branch must be nearly perfectly predicted with
        // the chosen assignment: verify via a fresh simulation.
        let test_trace = two_needs_trace(800, 99);
        let mut p = PathConditional::new(config().path, report.assignment);
        let mut misses = 0u64;
        let mut total = 0u64;
        for record in test_trace.iter() {
            if record.is_conditional() {
                if record.pc() == Addr::new(0x400) {
                    total += 1;
                    if p.predict(record.pc()) != record.taken() {
                        misses += 1;
                    }
                } else {
                    let _ = p.predict(record.pc());
                }
                p.train(record.pc(), record.taken());
            }
            p.observe(record);
        }
        assert!(
            (misses as f64 / total as f64) < 0.1,
            "long-path branch should be well predicted: {misses}/{total}"
        );
    }

    #[test]
    fn variable_beats_every_fixed_length_on_mixed_needs() {
        let profile_trace = two_needs_trace(800, 11);
        let test_trace = two_needs_trace(800, 12);
        let cfg = config();
        let report = ProfileBuilder::new(cfg.clone()).profile_conditional(&profile_trace);

        let run = |assignment: HashAssignment| -> u64 {
            let mut p = PathConditional::new(cfg.path.clone(), assignment);
            let mut misses = 0;
            for record in test_trace.iter() {
                if record.is_conditional() {
                    if p.predict(record.pc()) != record.taken() {
                        misses += 1;
                    }
                    p.train(record.pc(), record.taken());
                }
                p.observe(record);
            }
            misses
        };

        let vlp_misses = run(report.assignment.clone());
        for fixed in 1..=8u8 {
            let flp_misses = run(HashAssignment::fixed(fixed));
            assert!(
                vlp_misses <= flp_misses + 50,
                "VLP ({vlp_misses}) should not lose to fixed length {fixed} ({flp_misses})"
            );
        }
    }

    #[test]
    fn indirect_profiling_produces_assignment() {
        // Indirect branch whose target is determined by the previous
        // conditional's direction.
        let mut trace = Trace::new();
        let mut x = 3u64;
        for _ in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let flag = (x >> 20) & 1 == 1;
            trace.push(BranchRecord::conditional(
                Addr::new(0x100),
                Addr::new(if flag { 0x11 << 2 } else { 0x22 << 2 }),
                flag,
            ));
            trace.push(BranchRecord::indirect(
                Addr::new(0x200),
                Addr::new(if flag { 0x7000 } else { 0x8000 }),
            ));
        }
        let report = ProfileBuilder::new(config()).profile_indirect(&trace);
        assert_eq!(report.profiled_branches, 1);
        // Must be nearly perfect at some length; best fixed hash should
        // have a tiny miss rate.
        let best = report.step1.iter().find(|s| s.hash == report.best_fixed_hash()).unwrap();
        assert!(best.miss_rate() < 0.05, "got {}", best.miss_rate());
    }

    #[test]
    fn zero_iterations_skips_step2_but_still_assigns() {
        let trace = two_needs_trace(200, 5);
        let cfg = config().with_iterations(0);
        let report = ProfileBuilder::new(cfg).profile_conditional(&trace);
        // With no step-2 data every branch picks its first (step-1 best)
        // candidate.
        assert_eq!(report.assignment.assigned_count(), 4);
    }

    #[test]
    fn empty_trace_profiles_gracefully() {
        let report = ProfileBuilder::new(config()).profile_conditional(&Trace::new());
        assert_eq!(report.profiled_branches, 0);
        assert!(report.assignment.is_fixed());
        assert_eq!(report.step1.iter().map(|s| s.predictions).sum::<u64>(), 0);
    }

    #[test]
    fn best_fixed_hash_prefers_shorter_on_ties() {
        let stats = vec![
            HashStat { hash: 1, predictions: 100, correct: 90 },
            HashStat { hash: 2, predictions: 100, correct: 90 },
        ];
        assert_eq!(best_hash(&stats), 1);
    }

    #[test]
    fn candidate_count_is_respected() {
        let trace = two_needs_trace(300, 21);
        let cfg = config().with_candidates(1).with_iterations(2);
        let builder = ProfileBuilder::new(cfg);
        let (tallies, _) = builder.step1(&trace, Population::Conditional);
        let candidates = builder.pick_candidates(&tallies);
        assert!(candidates.values().all(|c| c.len() == 1));
    }
}
