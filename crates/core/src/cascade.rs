//! A dual-length path hybrid for indirect branches, after Driesen and
//! Hölzle (paper §2): "a hybrid predictor where both components used
//! global path histories but each component used a different length
//! history".
//!
//! The two components split the hardware budget; a chooser table indexed
//! by the branch address learns, per branch set, whether the short- or
//! long-history component predicts better — a hardware-only, two-point
//! approximation of what the variable length path predictor does with 32
//! candidate lengths and profiling.

use vlpp_predict::{BranchObserver, Counter2, IndirectPredictor};
use vlpp_trace::{Addr, BranchRecord};

use crate::path::PathConfig;
use crate::select::HashAssignment;
use crate::PathIndirect;

/// A two-component, dual-path-length indirect hybrid.
///
/// # Example
///
/// ```
/// use vlpp_core::{DualLengthPathIndirect, PathConfig};
/// use vlpp_predict::IndirectPredictor;
/// use vlpp_trace::Addr;
///
/// // Two 1 KB components (2 KB total), lengths 2 and 12.
/// let mut p = DualLengthPathIndirect::new(PathConfig::new(8), 2, 12, 8);
/// let _ = p.predict(Addr::new(0x40));
/// p.train(Addr::new(0x40), Addr::new(0x9000));
/// ```
#[derive(Debug, Clone)]
pub struct DualLengthPathIndirect {
    short: PathIndirect,
    long: PathIndirect,
    /// ≥ 2 selects the long component.
    chooser: Vec<Counter2>,
    chooser_mask: u64,
    short_length: u8,
    long_length: u8,
}

impl DualLengthPathIndirect {
    /// Creates a dual-length hybrid. `component_config` sizes *each*
    /// component table (so total target storage is twice that);
    /// `short_length` / `long_length` are the two fixed path lengths;
    /// the chooser has `2^chooser_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are not in `1..=32` with
    /// `short_length < long_length`, or `chooser_bits` is 0 or greater
    /// than 24.
    pub fn new(
        component_config: PathConfig,
        short_length: u8,
        long_length: u8,
        chooser_bits: u32,
    ) -> Self {
        assert!(
            short_length >= 1 && short_length < long_length && long_length <= 32,
            "need 1 <= short ({short_length}) < long ({long_length}) <= 32"
        );
        assert!(
            (1..=24).contains(&chooser_bits),
            "chooser index width must be in 1..=24, got {chooser_bits}"
        );
        DualLengthPathIndirect {
            short: PathIndirect::new(component_config.clone(), HashAssignment::fixed(short_length)),
            long: PathIndirect::new(component_config, HashAssignment::fixed(long_length)),
            chooser: vec![Counter2::WEAK_TAKEN; 1 << chooser_bits],
            chooser_mask: (1u64 << chooser_bits) - 1,
            short_length,
            long_length,
        }
    }

    #[inline]
    fn chooser_index(&self, pc: Addr) -> usize {
        (pc.word() & self.chooser_mask) as usize
    }

    /// The two component path lengths `(short, long)`.
    pub fn lengths(&self) -> (u8, u8) {
        (self.short_length, self.long_length)
    }

    /// Whether the chooser currently selects the long component for `pc`.
    pub fn selects_long(&self, pc: Addr) -> bool {
        self.chooser[self.chooser_index(pc)].predict_taken()
    }
}

impl BranchObserver for DualLengthPathIndirect {
    fn observe(&mut self, record: &BranchRecord) {
        self.short.observe(record);
        self.long.observe(record);
    }
}

impl IndirectPredictor for DualLengthPathIndirect {
    fn predict(&mut self, pc: Addr) -> Addr {
        if self.selects_long(pc) {
            self.long.predict(pc)
        } else {
            self.short.predict(pc)
        }
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        let short_correct = self.short.predict(pc) == target;
        let long_correct = self.long.predict(pc) == target;
        if short_correct != long_correct {
            let index = self.chooser_index(pc);
            self.chooser[index].update(long_correct);
        }
        self.short.train(pc, target);
        self.long.train(pc, target);
    }

    fn name(&self) -> String {
        format!("dual path ({}/{})", self.short_length, self.long_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(pc: u64, target: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(Addr::new(pc), Addr::new(target), taken)
    }

    #[test]
    fn lengths_and_name() {
        let p = DualLengthPathIndirect::new(PathConfig::new(8), 2, 12, 8);
        assert_eq!(p.lengths(), (2, 12));
        assert_eq!(p.name(), "dual path (2/12)");
    }

    #[test]
    fn chooser_finds_the_right_length_per_branch() {
        let config = PathConfig::new(10);
        let mut p = DualLengthPathIndirect::new(config, 1, 6, 8);
        let mut x: u32 = 3;
        let mut correct = 0;
        // Branch at 0x9000: target determined by the *immediately*
        // preceding conditional's target (needs length 1; length 6 sees
        // 5 extra noisy targets and trains slowly).
        for i in 0..4000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            for noise_slot in 0..5u64 {
                let bit = (x as u64 >> (8 + noise_slot)) & 1;
                p.observe(&cond(
                    0x100 + 4 * noise_slot,
                    (0x40 + noise_slot * 2 + bit) << 2,
                    bit == 1,
                ));
            }
            let hidden = (x >> 16) & 1 == 1;
            p.observe(&cond(0x200, if hidden { 0x11 << 2 } else { 0x22 << 2 }, hidden));
            let pc = Addr::new(0x9000);
            let actual = Addr::new(if hidden { 0x4000 } else { 0x8000 });
            if p.predict(pc) == actual && i >= 1000 {
                correct += 1;
            }
            p.train(pc, actual);
            p.observe(&BranchRecord::indirect(pc, actual));
        }
        assert!(
            correct as f64 / 3000.0 > 0.9,
            "hybrid should converge to the short component: {correct}/3000"
        );
        assert!(!p.selects_long(Addr::new(0x9000)));
    }

    #[test]
    #[should_panic(expected = "short")]
    fn rejects_inverted_lengths() {
        DualLengthPathIndirect::new(PathConfig::new(8), 12, 2, 8);
    }

    #[test]
    fn cold_predicts_null() {
        let mut p = DualLengthPathIndirect::new(PathConfig::new(8), 2, 12, 8);
        assert_eq!(p.predict(Addr::new(0x10)), Addr::NULL);
    }
}
