//! The path predictors themselves: [`PathConditional`] and
//! [`PathIndirect`] (paper §3.1, Figures 1 and 2).
//!
//! Both share [`PathConfig`] (first-level structure) and a selection
//! source: a static [`HashAssignment`] (profile- or compiler-provided,
//! §3.5) or a [`DynamicSelector`] (hardware-only, §3.4). A fixed
//! assignment yields the paper's *fixed length path* predictor; a
//! profiled assignment yields the *variable length path* predictor.

use vlpp_predict::{BranchObserver, Budget, ConditionalPredictor, IndirectPredictor};
use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::hash::IncrementalHashers;
use crate::select::{DynamicSelector, HashAssignment};
use crate::stack::HistoryStack;
use crate::table::{CounterTable, TargetTable};
use crate::thb::Thb;
use crate::MAX_PATH_LENGTH;

/// Structural parameters of a path predictor: everything except the
/// second-level table contents and the hash selection.
///
/// # Example
///
/// ```
/// use vlpp_core::PathConfig;
///
/// let c = PathConfig::conditional_for_bytes(16 * 1024);
/// assert_eq!(c.index_bits, 16);
/// assert_eq!(c.thb_capacity, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathConfig {
    /// Width `k` of the predictor-table index and of each compressed
    /// target in the THB.
    pub index_bits: u32,
    /// THB capacity `N` (the paper uses 32).
    pub thb_capacity: usize,
    /// Whether return targets enter the THB (§3.2 ablation; the paper's
    /// experiments leave them out).
    pub store_returns: bool,
    /// Depth of the §6 call/return history stack, or `None` to disable
    /// (the paper's experiments disable it; it is future work there).
    pub history_stack_depth: Option<usize>,
}

impl PathConfig {
    /// A configuration with the paper's defaults (32-entry THB, no
    /// returns, no history stack) and the given index width.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index width must be in 1..=28, got {index_bits}");
        PathConfig {
            index_bits,
            thb_capacity: MAX_PATH_LENGTH,
            store_returns: false,
            history_stack_depth: None,
        }
    }

    /// A conditional-predictor configuration for a table of `bytes`
    /// bytes (2-bit counter entries).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two or is out of range.
    pub fn conditional_for_bytes(bytes: u64) -> Self {
        PathConfig::new(Budget::from_bytes(bytes).cond_index_bits())
    }

    /// An indirect-predictor configuration for a table of `bytes` bytes
    /// (4-byte target entries).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two or is out of range.
    pub fn indirect_for_bytes(bytes: u64) -> Self {
        PathConfig::new(Budget::from_bytes(bytes).ind_index_bits())
    }

    /// Returns the configuration with return targets recorded.
    pub fn with_returns(mut self) -> Self {
        self.store_returns = true;
        self
    }

    /// Returns the configuration with a call/return history stack of the
    /// given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    pub fn with_history_stack(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "history stack depth must be at least 1");
        self.history_stack_depth = Some(depth);
        self
    }
}

/// The hash-selection source shared by both predictor variants.
#[derive(Debug, Clone)]
enum Selection {
    Static(HashAssignment),
    Dynamic(DynamicSelector),
}

/// First-level history plus hash evaluation: the part of the predictor
/// shared between the conditional and indirect variants.
#[derive(Debug, Clone)]
struct PathCore {
    thb: Thb,
    hashers: IncrementalHashers,
    selection: Selection,
    stack: Option<HistoryStack>,
}

impl PathCore {
    fn new(config: &PathConfig, selection: Selection) -> Self {
        let thb = if config.store_returns {
            Thb::with_returns(config.thb_capacity, config.index_bits)
        } else {
            Thb::new(config.thb_capacity, config.index_bits)
        };
        PathCore {
            thb,
            hashers: IncrementalHashers::new(config.thb_capacity, config.index_bits),
            selection,
            stack: config.history_stack_depth.map(HistoryStack::new),
        }
    }

    /// The hash number selected for `pc`, clamped to the THB capacity.
    #[inline]
    fn hash_number(&self, pc: Addr) -> usize {
        let n = match &self.selection {
            Selection::Static(assignment) => assignment.get(pc),
            Selection::Dynamic(selector) => selector.select(pc),
        } as usize;
        n.min(self.thb.capacity())
    }

    /// The table index for `pc` under the current history.
    #[inline]
    fn index(&self, pc: Addr) -> u64 {
        self.hashers.index(self.hash_number(pc))
    }

    /// The index produced by a specific hash number (used by dynamic
    /// selection training).
    #[inline]
    fn index_for(&self, n: u8) -> u64 {
        self.hashers.index((n as usize).min(self.thb.capacity()))
    }

    fn observe(&mut self, record: &BranchRecord) {
        // §6 history stack: snapshot at calls, restore at returns.
        if let Some(stack) = &mut self.stack {
            match record.kind() {
                BranchKind::Call => stack.push(self.hashers.snapshot()),
                BranchKind::Return => {
                    if let Some(snapshot) = stack.pop() {
                        self.hashers.restore(&snapshot);
                        // The THB mirror is only diagnostic; clearing it
                        // keeps it consistent with "history replaced".
                        self.thb.clear();
                    }
                }
                _ => {}
            }
        }
        // Keep the hash registers in lockstep with the THB's §3.2 policy.
        let store = record.enters_thb()
            || (self.thb.stores_returns() && record.kind() == BranchKind::Return);
        if store {
            self.thb.push(record.target());
            self.hashers.push(record.target());
        }
    }
}

/// A path-based conditional-branch predictor (paper Figure 1 with a
/// counter table).
///
/// With a [`HashAssignment::fixed`] selection this is the paper's **fixed
/// length path** predictor; with a profiled assignment it is the
/// **variable length path** predictor; with [`new_dynamic`] it is the
/// §3.4 hardware-selected variant.
///
/// [`new_dynamic`]: Self::new_dynamic
///
/// # Example
///
/// ```
/// use vlpp_core::{HashAssignment, PathConditional, PathConfig};
/// use vlpp_predict::{BranchObserver, ConditionalPredictor};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut p = PathConditional::new(
///     PathConfig::conditional_for_bytes(1024),
///     HashAssignment::fixed(6),
/// );
/// let pc = Addr::new(0x1000);
/// let _ = p.predict(pc);
/// p.train(pc, true);
/// p.observe(&BranchRecord::conditional(pc, Addr::new(0x2000), true));
/// ```
#[derive(Debug, Clone)]
pub struct PathConditional {
    core: PathCore,
    table: CounterTable,
}

impl PathConditional {
    /// Creates a predictor with a static (compiler/profile) hash
    /// assignment.
    pub fn new(config: PathConfig, assignment: HashAssignment) -> Self {
        PathConditional {
            table: CounterTable::new(config.index_bits),
            core: PathCore::new(&config, Selection::Static(assignment)),
        }
    }

    /// Creates a predictor with hardware-dynamic hash selection over the
    /// given candidate hash numbers, with `2^selector_set_bits` selector
    /// sets.
    ///
    /// Note the structural handicap the `ablate-select` experiment
    /// quantifies: all candidates score their accuracy against the one
    /// *shared* table, but only the currently selected candidate's index
    /// is ever trained, so unselected candidates are judged on stale
    /// entries and the selector tends to lock in early — §3.4 describes
    /// the idea without resolving this; profiling (the paper's choice)
    /// sidesteps it.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or contains hash numbers outside
    /// `1..=32`.
    pub fn new_dynamic(config: PathConfig, candidates: &[u8], selector_set_bits: u32) -> Self {
        PathConditional {
            table: CounterTable::new(config.index_bits),
            core: PathCore::new(
                &config,
                Selection::Dynamic(DynamicSelector::new(candidates, selector_set_bits)),
            ),
        }
    }

    /// The hash number the predictor would use for `pc` right now.
    pub fn selected_hash(&self, pc: Addr) -> usize {
        self.core.hash_number(pc)
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.table.bytes()
    }

    /// Every counter value in index order — the diagnostic surface the
    /// kernel differential tests compare against.
    pub fn counter_values(&self) -> Vec<u8> {
        self.table.values()
    }
}

impl BranchObserver for PathConditional {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl ConditionalPredictor for PathConditional {
    fn predict(&mut self, pc: Addr) -> bool {
        self.table.predict(self.core.index(pc))
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        // Dynamic selection trains the per-candidate accuracy counters by
        // checking what each candidate would have predicted.
        if let Selection::Dynamic(selector) = &self.core.selection {
            let verdicts: Vec<(usize, bool)> = selector
                .candidates()
                .iter()
                .enumerate()
                .map(|(i, &c)| (i, self.table.predict(self.core.index_for(c)) == taken))
                .collect();
            if let Selection::Dynamic(selector) = &mut self.core.selection {
                for (i, correct) in verdicts {
                    selector.reward(pc, i, correct);
                }
            }
        }
        self.table.train(self.core.index(pc), taken);
    }

    fn name(&self) -> String {
        match &self.core.selection {
            Selection::Static(a) if a.is_fixed() => "fixed length path".into(),
            Selection::Static(_) => "variable length path".into(),
            Selection::Dynamic(_) => "dynamic path".into(),
        }
    }
}

/// A path-based indirect-branch predictor (paper Figure 1 with a table of
/// target registers).
///
/// # Example
///
/// ```
/// use vlpp_core::{HashAssignment, PathConfig, PathIndirect};
/// use vlpp_predict::IndirectPredictor;
/// use vlpp_trace::Addr;
///
/// let mut p = PathIndirect::new(
///     PathConfig::indirect_for_bytes(2048),
///     HashAssignment::fixed(21),
/// );
/// let pc = Addr::new(0x1000);
/// assert_eq!(p.predict(pc), Addr::NULL); // cold table
/// p.train(pc, Addr::new(0x9000));
/// assert_eq!(p.predict(pc), Addr::new(0x9000));
/// ```
#[derive(Debug, Clone)]
pub struct PathIndirect {
    core: PathCore,
    table: TargetTable,
}

impl PathIndirect {
    /// Creates a predictor with a static (compiler/profile) hash
    /// assignment.
    pub fn new(config: PathConfig, assignment: HashAssignment) -> Self {
        PathIndirect {
            table: TargetTable::new(config.index_bits),
            core: PathCore::new(&config, Selection::Static(assignment)),
        }
    }

    /// Creates a predictor with hardware-dynamic hash selection.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or contains hash numbers outside
    /// `1..=32`.
    pub fn new_dynamic(config: PathConfig, candidates: &[u8], selector_set_bits: u32) -> Self {
        PathIndirect {
            table: TargetTable::new(config.index_bits),
            core: PathCore::new(
                &config,
                Selection::Dynamic(DynamicSelector::new(candidates, selector_set_bits)),
            ),
        }
    }

    /// The hash number the predictor would use for `pc` right now.
    pub fn selected_hash(&self, pc: Addr) -> usize {
        self.core.hash_number(pc)
    }

    /// The second-level table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.table.bytes()
    }

    /// Every entry's stored target in index order (`None` for
    /// never-written entries) — the diagnostic surface the kernel
    /// differential tests compare against.
    pub fn target_entries(&self) -> Vec<Option<u64>> {
        self.table.stored()
    }
}

impl BranchObserver for PathIndirect {
    fn observe(&mut self, record: &BranchRecord) {
        self.core.observe(record);
    }
}

impl IndirectPredictor for PathIndirect {
    fn predict(&mut self, pc: Addr) -> Addr {
        self.table.predict(self.core.index(pc), pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        if let Selection::Dynamic(selector) = &self.core.selection {
            let verdicts: Vec<(usize, bool)> = selector
                .candidates()
                .iter()
                .enumerate()
                .map(|(i, &c)| (i, self.table.predict(self.core.index_for(c), pc) == target))
                .collect();
            if let Selection::Dynamic(selector) = &mut self.core.selection {
                for (i, correct) in verdicts {
                    selector.reward(pc, i, correct);
                }
            }
        }
        self.table.train(self.core.index(pc), target);
    }

    fn name(&self) -> String {
        match &self.core.selection {
            Selection::Static(a) if a.is_fixed() => "fixed length path".into(),
            Selection::Static(_) => "variable length path".into(),
            Selection::Dynamic(_) => "dynamic path".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(pc: u64, target: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(Addr::new(pc), Addr::new(target), taken)
    }

    #[test]
    fn config_budget_constructors() {
        assert_eq!(PathConfig::conditional_for_bytes(4096).index_bits, 14);
        assert_eq!(PathConfig::indirect_for_bytes(512).index_bits, 7);
    }

    #[test]
    fn names_distinguish_fixed_and_variable() {
        let config = PathConfig::new(8);
        let fixed = PathConditional::new(config.clone(), HashAssignment::fixed(4));
        assert_eq!(fixed.name(), "fixed length path");
        let mut a = HashAssignment::fixed(4);
        a.assign(Addr::new(0x10), 2);
        let variable = PathConditional::new(config.clone(), a);
        assert_eq!(variable.name(), "variable length path");
        let dynamic = PathConditional::new_dynamic(config, &[1, 2, 4], 6);
        assert_eq!(dynamic.name(), "dynamic path");
    }

    #[test]
    fn conditional_learns_a_path_determined_branch() {
        // Branch at 0x9000 is taken iff the previous branch's target was
        // block A. A path predictor with length >= 1 nails this.
        let config = PathConfig::new(10);
        let mut p = PathConditional::new(config, HashAssignment::fixed(1));
        let block_a = Addr::new(0x100 << 2);
        let block_b = Addr::new(0x200 << 2);
        let mut correct = 0;
        let mut x: u32 = 5;
        for i in 0..2000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let go_a = (x >> 16) & 1 == 1;
            let lead_target = if go_a { block_a } else { block_b };
            p.observe(&cond(0x50, lead_target.raw(), true));
            let pc = Addr::new(0x9000);
            let prediction = p.predict(pc);
            p.train(pc, go_a);
            p.observe(&cond(0x9000, 0x9100, go_a));
            if prediction == go_a && i >= 200 {
                correct += 1;
            }
        }
        assert!(correct as f64 / 1800.0 > 0.95, "path length 1 should suffice, got {correct}");
    }

    #[test]
    fn indirect_learns_path_determined_targets() {
        let config = PathConfig::new(8);
        let mut p = PathIndirect::new(config, HashAssignment::fixed(1));
        let (ta, tb) = (Addr::new(0x4000), Addr::new(0x8000));
        // Lead targets must stay distinguishable after 8-bit word
        // compression.
        let block_a = Addr::new(0x11 << 2);
        let block_b = Addr::new(0x22 << 2);
        let mut correct = 0;
        let mut x: u32 = 77;
        for i in 0..2000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let go_a = (x >> 16) & 1 == 1;
            p.observe(&cond(0x50, if go_a { block_a } else { block_b }.raw(), true));
            let pc = Addr::new(0x9000);
            let actual = if go_a { ta } else { tb };
            if p.predict(pc) == actual && i >= 200 {
                correct += 1;
            }
            p.train(pc, actual);
            p.observe(&BranchRecord::indirect(pc, actual));
        }
        assert!(correct as f64 / 1800.0 > 0.95, "got {correct}");
    }

    #[test]
    fn variable_assignment_uses_different_indices_per_branch() {
        let config = PathConfig::new(12);
        let mut a = HashAssignment::fixed(8);
        a.assign(Addr::new(0x10), 1);
        a.assign(Addr::new(0x20), 32);
        let p = PathConditional::new(config, a);
        assert_eq!(p.selected_hash(Addr::new(0x10)), 1);
        assert_eq!(p.selected_hash(Addr::new(0x20)), 32);
        assert_eq!(p.selected_hash(Addr::new(0x999)), 8);
    }

    #[test]
    fn hash_number_clamps_to_thb_capacity() {
        let mut config = PathConfig::new(8);
        config.thb_capacity = 4;
        let p = PathConditional::new(config, HashAssignment::fixed(32));
        assert_eq!(p.selected_hash(Addr::new(0)), 4);
    }

    #[test]
    fn history_stack_restores_caller_path() {
        let config = PathConfig::new(10).with_history_stack(8);
        let mut p = PathConditional::new(config, HashAssignment::fixed(4));
        // Build caller history.
        for i in 0..4u64 {
            p.observe(&cond(0x100 + 4 * i, (0x500 + i) << 2, true));
        }
        let caller_index = p.core.index(Addr::new(0x9000));
        // Call; the callee pollutes history.
        p.observe(&BranchRecord::call(Addr::new(0x200), Addr::new(0x4000)));
        for i in 0..6u64 {
            p.observe(&cond(0x4000 + 4 * i, (0x900 + i) << 2, true));
        }
        assert_ne!(p.core.index(Addr::new(0x9000)), caller_index);
        // Return restores the caller's history.
        p.observe(&BranchRecord::ret(Addr::new(0x4100), Addr::new(0x204)));
        assert_eq!(p.core.index(Addr::new(0x9000)), caller_index);
    }

    #[test]
    fn without_stack_callee_history_persists() {
        let config = PathConfig::new(10);
        let mut p = PathConditional::new(config, HashAssignment::fixed(4));
        for i in 0..4u64 {
            p.observe(&cond(0x100 + 4 * i, (0x500 + i) << 2, true));
        }
        let caller_index = p.core.index(Addr::new(0x9000));
        p.observe(&BranchRecord::call(Addr::new(0x200), Addr::new(0x4000)));
        for i in 0..6u64 {
            p.observe(&cond(0x4000 + 4 * i, (0x900 + i) << 2, true));
        }
        p.observe(&BranchRecord::ret(Addr::new(0x4100), Addr::new(0x204)));
        assert_ne!(p.core.index(Addr::new(0x9000)), caller_index);
    }

    #[test]
    fn dynamic_selection_converges_to_useful_length() {
        // Outcome depends on the path 2 back; HF_1 can't see it, HF_2 can.
        let config = PathConfig::new(10);
        let mut p = PathConditional::new_dynamic(config, &[1, 2], 4);
        let pc = Addr::new(0x9000);
        let mut x: u32 = 3;
        let mut correct = 0;
        for i in 0..4000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let hidden = (x >> 16) & 1 == 1;
            // Branch 2 back encodes `hidden` in its target.
            p.observe(&cond(0x50, if hidden { 0x100 << 2 } else { 0x200 << 2 }, true));
            // Branch 1 back is uncorrelated noise with a 50/50 target.
            let noise = (x >> 18) & 1 == 1;
            p.observe(&cond(0x60, if noise { 0x300 << 2 } else { 0x400 << 2 }, true));
            let prediction = p.predict(pc);
            p.train(pc, hidden);
            p.observe(&cond(pc.raw(), 0x9100, hidden));
            if prediction == hidden && i >= 1000 {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 3000.0 > 0.9,
            "dynamic selector should discover HF_2, got {correct}/3000"
        );
        assert_eq!(p.selected_hash(pc), 2);
    }

    #[test]
    fn indirect_cold_predicts_null() {
        let mut p = PathIndirect::new(PathConfig::new(8), HashAssignment::fixed(3));
        assert_eq!(p.predict(Addr::new(0x10)), Addr::NULL);
    }
}
