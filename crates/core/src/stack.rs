//! The call/return history stack (paper §6, after Jacobson et al.):
//! save path history at a call, restore it at the matching return, so
//! post-return predictions see the caller's path instead of the callee's.

/// A bounded stack of first-level-history snapshots.
///
/// On overflow the *oldest* snapshot is dropped (a circular hardware
/// stack); a return with an empty stack is a no-op, leaving the current
/// history in place — both behaviors mirror how a real implementation
/// degrades on deep recursion or longjmp-style control flow.
///
/// # Example
///
/// ```
/// use vlpp_core::HistoryStack;
///
/// let mut s = HistoryStack::new(4);
/// s.push(vec![1, 2, 3]);
/// assert_eq!(s.pop(), Some(vec![1, 2, 3]));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryStack {
    snapshots: Vec<Vec<u64>>,
    depth: usize,
}

impl HistoryStack {
    /// Creates a stack holding up to `depth` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "history stack depth must be at least 1");
        HistoryStack { snapshots: Vec::with_capacity(depth), depth }
    }

    /// Pushes a snapshot, dropping the oldest if the stack is full.
    pub fn push(&mut self, snapshot: Vec<u64>) {
        if self.snapshots.len() == self.depth {
            self.snapshots.remove(0);
        }
        self.snapshots.push(snapshot);
    }

    /// Pops the most recent snapshot, or `None` if the stack is empty.
    pub fn pop(&mut self) -> Option<Vec<u64>> {
        self.snapshots.pop()
    }

    /// Current number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The maximum number of snapshots.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The stored snapshots, oldest first — the serialization surface
    /// model snapshots persist (rebuild by pushing in order).
    pub fn contents(&self) -> &[Vec<u64>] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = HistoryStack::new(4);
        s.push(vec![1]);
        s.push(vec![2]);
        assert_eq!(s.pop(), Some(vec![2]));
        assert_eq!(s.pop(), Some(vec![1]));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut s = HistoryStack::new(2);
        s.push(vec![1]);
        s.push(vec![2]);
        s.push(vec![3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(vec![3]));
        assert_eq!(s.pop(), Some(vec![2]));
        assert_eq!(s.pop(), None, "the oldest snapshot was dropped");
    }

    #[test]
    fn underflow_is_none() {
        let mut s = HistoryStack::new(1);
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        HistoryStack::new(0);
    }
}
