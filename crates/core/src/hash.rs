//! The path hash functions `HF_1 … HF_N` (paper §3.3) and their O(1)
//! incremental evaluation (paper §4.1).
//!
//! `HF_X` combines the `X` most recent compressed targets into a `k`-bit
//! index: target `T_i` is rotated left by `i − 1` bits (so the *order* of
//! targets is encoded, not just their set) and all rotated targets are
//! XORed together.
//!
//! Evaluating each hash from scratch costs O(X) XORs; the paper's §4.1
//! observes that `I_X(t+1) = rot1(I_{X−1}(t)) XOR newtarget`, so keeping a
//! register with the previous value of `I_{X−1}` evaluates every hash
//! with a single rotate-XOR per inserted target. [`IncrementalHashers`]
//! implements that scheme (and the tests prove it equal to the direct
//! evaluation).

use vlpp_trace::Addr;

use crate::thb::Thb;

/// Rotates a `k`-bit value left by `amount` within `k` bits.
#[inline]
fn rotl(value: u64, amount: u32, k: u32) -> u64 {
    let amount = amount % k;
    if amount == 0 {
        return value;
    }
    if k == 64 {
        return value.rotate_left(amount);
    }
    let mask = (1u64 << k) - 1;
    ((value << amount) | (value >> (k - amount))) & mask
}

/// Directly evaluates `HF_len(PATH_len)` from the THB contents:
/// `XOR_{i=1..len} rotl(T_i, i−1)`.
///
/// This is the specification; predictors use [`IncrementalHashers`] which
/// computes the same value in O(1) per retired branch.
///
/// # Panics
///
/// Panics if `len` is 0 or exceeds the THB capacity.
///
/// # Example
///
/// ```
/// use vlpp_core::{hash_path, Thb};
/// use vlpp_trace::Addr;
///
/// let mut thb = Thb::new(4, 8);
/// thb.push(Addr::new(0x3 << 2)); // T2 after next push
/// thb.push(Addr::new(0x5 << 2)); // T1
/// // HF_2 = rotl(T1, 0) ^ rotl(T2, 1) = 0x5 ^ 0x6 = 0x3
/// assert_eq!(hash_path(&thb, 2), 0x3);
/// ```
pub fn hash_path(thb: &Thb, len: usize) -> u64 {
    let k = thb.k();
    thb.path(len).enumerate().fold(0u64, |acc, (i, target)| acc ^ rotl(target, i as u32, k))
}

/// The §4.1 partial-sum registers: maintains the current value of every
/// hash function `HF_1 … HF_n` with one rotate-XOR per hash per inserted
/// target.
///
/// Register `X` holds `I_X`, the index `HF_X` would produce for the
/// current THB contents. When a new target arrives,
/// `I_X ← rotl(I_{X−1}, 1) XOR target` for `X = n..1` (computed high to
/// low so each update reads the *previous* value of its neighbor).
///
/// # Example
///
/// ```
/// use vlpp_core::{hash_path, IncrementalHashers, Thb};
/// use vlpp_trace::Addr;
///
/// let mut thb = Thb::new(8, 10);
/// let mut inc = IncrementalHashers::new(8, 10);
/// for raw in [0x123, 0x456, 0x789] {
///     let t = Addr::new(raw << 2);
///     thb.push(t);
///     inc.push(t);
/// }
/// assert_eq!(inc.index(5), hash_path(&thb, 5));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalHashers {
    /// `indices[x-1]` = current `I_x`.
    indices: Vec<u64>,
    k: u32,
}

impl IncrementalHashers {
    /// Creates registers for hash functions `HF_1 … HF_count` producing
    /// `k`-bit indices.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or `k` is not in `1..=64`.
    pub fn new(count: usize, k: u32) -> Self {
        assert!(count >= 1, "need at least one hash function");
        assert!((1..=64).contains(&k), "index width must be in 1..=64, got {k}");
        IncrementalHashers { indices: vec![0; count], k }
    }

    /// Updates every register for a newly inserted target address
    /// (compressed to `k` bits, like the THB entry it mirrors).
    pub fn push(&mut self, target: Addr) {
        let t = target.low_bits(self.k);
        // I_X(t+1) = rotl(I_{X-1}(t), 1) ^ t ; I_0 is the empty hash, 0.
        for x in (1..self.indices.len()).rev() {
            self.indices[x] = rotl(self.indices[x - 1], 1, self.k) ^ t;
        }
        self.indices[0] = t;
    }

    /// The current index `I_x` produced by `HF_x` (`x` is 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `x` is 0 or exceeds the number of hash functions.
    #[inline]
    pub fn index(&self, x: usize) -> u64 {
        assert!(x >= 1 && x <= self.indices.len(), "hash number must be in 1..=count, got {x}");
        self.indices[x - 1]
    }

    /// All current indices, `I_1` first.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// The number of hash functions maintained.
    pub fn count(&self) -> usize {
        self.indices.len()
    }

    /// The index width in bits.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Resets all registers to the empty-history state.
    pub fn clear(&mut self) {
        self.indices.fill(0);
    }

    /// Restores registers from a snapshot taken with
    /// [`snapshot`](Self::snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a differently-configured
    /// hasher.
    pub fn restore(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), self.indices.len(), "snapshot size mismatch");
        self.indices.copy_from_slice(snapshot);
    }

    /// Captures the register state (used by the §6 history stack).
    pub fn snapshot(&self) -> Vec<u64> {
        self.indices.clone()
    }
}

/// The §4.1 register file folded into a single running register: the
/// throughput kernel's O(1)-per-retire form of [`IncrementalHashers`].
///
/// Unrolling the §4.1 recurrence shows every partial-sum register is a
/// window of one *infinite-history* sum. Let
/// `S(t) = rot1(S(t−1)) XOR target_t` (one register, never truncated).
/// Then, because rotation distributes over XOR and the targets older
/// than `X` cancel,
///
/// ```text
/// I_X(t) = S(t) XOR rotl(S(t−X), X)
/// ```
///
/// So instead of updating `n` registers per retired branch (one
/// rotate-XOR each — O(n) with `n` up to 32), this structure updates
/// `S` once and remembers its last `n` values in a ring; *any* hash
/// function's index is then one ring read and one rotate-XOR, on
/// demand. Warmup falls out for free: ring slots not yet written are
/// zero, which is exactly `S` of the empty history.
///
/// The values produced are bit-identical to [`IncrementalHashers`] (and
/// therefore to the direct [`hash_path`] evaluation) — the tests prove
/// all three equal.
///
/// # Example
///
/// ```
/// use vlpp_core::{IncrementalHashers, RollingHashers};
/// use vlpp_trace::Addr;
///
/// let mut registers = IncrementalHashers::new(8, 10);
/// let mut rolling = RollingHashers::new(8, 10);
/// for raw in [0x123, 0x456, 0x789] {
///     registers.push(Addr::new(raw << 2));
///     rolling.push(Addr::new(raw << 2));
/// }
/// for x in 1..=8 {
///     assert_eq!(rolling.index(x), registers.index(x));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RollingHashers {
    /// `S(t)` — the infinite-history partial sum.
    s: u64,
    /// The last values of `S`, `ring[j & ring_mask] = S(j)`; sized to
    /// the next power of two above `count` so the ring offset is a
    /// mask, not a modulo.
    ring: Vec<u64>,
    /// Targets pushed so far.
    t: u64,
    /// `rots[x] = x mod k`, precomputed so a lookup does no division.
    rots: Vec<u8>,
    count: usize,
    k: u32,
    mask: u64,
    ring_mask: u64,
}

impl RollingHashers {
    /// Creates the rolling form of `count` hash functions producing
    /// `k`-bit indices.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or `k` is not in `1..=64`.
    pub fn new(count: usize, k: u32) -> Self {
        assert!(count >= 1, "need at least one hash function");
        assert!((1..=64).contains(&k), "index width must be in 1..=64, got {k}");
        let ring_len = count.next_power_of_two();
        RollingHashers {
            s: 0,
            ring: vec![0; ring_len],
            t: 0,
            rots: (0..=count).map(|x| (x as u32 % k) as u8).collect(),
            count,
            k,
            mask: if k == 64 { u64::MAX } else { (1u64 << k) - 1 },
            ring_mask: ring_len as u64 - 1,
        }
    }

    /// Advances `S` for a newly inserted target: one rotate-XOR and one
    /// ring store, independent of `count`.
    #[inline]
    pub fn push(&mut self, target: Addr) {
        let t = target.low_bits(self.k);
        self.ring[(self.t & self.ring_mask) as usize] = self.s;
        // rot1 within k bits; for k = 64 the mask is all-ones and the
        // shift pair is the native rotate.
        self.s = (((self.s << 1) | (self.s >> (self.k - 1))) & self.mask) ^ t;
        self.t += 1;
    }

    /// The current index `I_x` produced by `HF_x` (`x` is 1-based):
    /// `S(t) XOR rotl(S(t−x), x)`. Ring slots before the first push are
    /// zero, which is the empty-history `S` — warmup needs no branch.
    ///
    /// # Panics
    ///
    /// Panics if `x` is 0 or exceeds the number of hash functions.
    #[inline]
    pub fn index(&self, x: usize) -> u64 {
        assert!(x >= 1 && x <= self.count, "hash number must be in 1..=count, got {x}");
        let past = self.ring[(self.t.wrapping_sub(x as u64) & self.ring_mask) as usize];
        let amount = self.rots[x] as u32;
        // Branchless k-bit rotate: `past` is already masked to k bits,
        // so at amount == 0 the right shift contributes nothing (shift
        // by k, forced in-range by `& 63` for k == 64) and the left
        // shift is the identity — no data-dependent branch on the
        // rotation amount.
        let rotated = ((past << amount) | (past >> ((self.k - amount) & 63))) & self.mask;
        self.s ^ rotated
    }

    /// The number of hash functions maintained.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The index width in bits.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Resets to the empty-history state.
    pub fn clear(&mut self) {
        self.s = 0;
        self.t = 0;
        self.ring.fill(0);
    }

    /// The exact length of [`snapshot`](Self::snapshot)'s vector for
    /// this configuration — snapshot loaders validate against it
    /// before calling [`restore`](Self::restore), which panics on a
    /// mismatch.
    pub fn snapshot_len(&self) -> usize {
        2 + self.ring.len()
    }

    /// Captures the full rolling state (used by the §6 history stack):
    /// `[S, t, ring…]`, opaque to the caller.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut snapshot = Vec::with_capacity(2 + self.ring.len());
        snapshot.push(self.s);
        snapshot.push(self.t);
        snapshot.extend_from_slice(&self.ring);
        snapshot
    }

    /// Restores state from a snapshot taken with
    /// [`snapshot`](Self::snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a differently-configured
    /// hasher.
    pub fn restore(&mut self, snapshot: &[u64]) {
        assert_eq!(snapshot.len(), 2 + self.ring.len(), "snapshot size mismatch");
        self.s = snapshot[0];
        self.t = snapshot[1];
        self.ring.copy_from_slice(&snapshot[2..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple deterministic pseudo-random sequence for tests.
    fn pseudo_targets(n: usize) -> Vec<Addr> {
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Addr::new((x >> 11) << 2)
            })
            .collect()
    }

    #[test]
    fn direct_hash_of_single_target_is_target() {
        let mut thb = Thb::new(4, 12);
        thb.push(Addr::new(0xabc << 2));
        assert_eq!(hash_path(&thb, 1), 0xabc);
    }

    #[test]
    fn direct_hash_encodes_order() {
        let (a, b) = (Addr::new(0x11 << 2), Addr::new(0x22 << 2));
        let mut ab = Thb::new(4, 8);
        ab.push(a);
        ab.push(b);
        let mut ba = Thb::new(4, 8);
        ba.push(b);
        ba.push(a);
        assert_ne!(hash_path(&ab, 2), hash_path(&ba, 2));
    }

    #[test]
    fn incremental_matches_direct_for_all_lengths() {
        let cap = 32;
        let k = 14;
        let mut thb = Thb::new(cap, k);
        let mut inc = IncrementalHashers::new(cap, k);
        for target in pseudo_targets(300) {
            thb.push(target);
            inc.push(target);
            for len in 1..=cap {
                assert_eq!(inc.index(len), hash_path(&thb, len), "mismatch at length {len}");
            }
        }
    }

    #[test]
    fn incremental_matches_direct_during_warmup() {
        // Fewer targets than hash length: missing slots are zero in both.
        let mut thb = Thb::new(8, 10);
        let mut inc = IncrementalHashers::new(8, 10);
        for target in pseudo_targets(5) {
            thb.push(target);
            inc.push(target);
        }
        for len in 1..=8 {
            assert_eq!(inc.index(len), hash_path(&thb, len));
        }
    }

    #[test]
    fn incremental_matches_direct_at_k_64() {
        let mut thb = Thb::new(8, 64);
        let mut inc = IncrementalHashers::new(8, 64);
        for target in pseudo_targets(50) {
            thb.push(target);
            inc.push(target);
            assert_eq!(inc.index(8), hash_path(&thb, 8));
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut inc = IncrementalHashers::new(8, 10);
        for target in pseudo_targets(20) {
            inc.push(target);
        }
        let saved = inc.snapshot();
        let at_save: Vec<u64> = inc.indices().to_vec();
        for target in pseudo_targets(7) {
            inc.push(target);
        }
        inc.restore(&saved);
        assert_eq!(inc.indices(), &at_save[..]);
    }

    #[test]
    fn clear_resets_to_empty_state() {
        let mut inc = IncrementalHashers::new(4, 10);
        inc.push(Addr::new(0x40));
        inc.clear();
        assert!(inc.indices().iter().all(|&i| i == 0));
    }

    #[test]
    fn indices_stay_within_k_bits() {
        let mut inc = IncrementalHashers::new(16, 9);
        for target in pseudo_targets(100) {
            inc.push(target);
            assert!(inc.indices().iter().all(|&i| i < (1 << 9)));
        }
    }

    #[test]
    #[should_panic(expected = "hash number")]
    fn index_rejects_zero() {
        IncrementalHashers::new(4, 8).index(0);
    }

    #[test]
    fn rolling_matches_incremental_for_all_lengths() {
        // Non-power-of-two counts and awkward widths included.
        for (count, k) in [(1, 1), (5, 9), (16, 14), (31, 10), (32, 28), (8, 64)] {
            let mut registers = IncrementalHashers::new(count, k);
            let mut rolling = RollingHashers::new(count, k);
            for target in pseudo_targets(3 * count + 40) {
                registers.push(target);
                rolling.push(target);
                for x in 1..=count {
                    assert_eq!(
                        rolling.index(x),
                        registers.index(x),
                        "count {count} k {k} length {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn rolling_warmup_matches_incremental() {
        // Fewer targets than the deepest hash: unwritten ring slots must
        // act as the empty-history S.
        let mut registers = IncrementalHashers::new(12, 10);
        let mut rolling = RollingHashers::new(12, 10);
        for target in pseudo_targets(5) {
            registers.push(target);
            rolling.push(target);
        }
        for x in 1..=12 {
            assert_eq!(rolling.index(x), registers.index(x));
        }
    }

    #[test]
    fn rolling_snapshot_restore_round_trips() {
        let mut rolling = RollingHashers::new(8, 10);
        for target in pseudo_targets(20) {
            rolling.push(target);
        }
        let saved = rolling.snapshot();
        let at_save: Vec<u64> = (1..=8).map(|x| rolling.index(x)).collect();
        for target in pseudo_targets(40) {
            rolling.push(target);
        }
        rolling.restore(&saved);
        let restored: Vec<u64> = (1..=8).map(|x| rolling.index(x)).collect();
        assert_eq!(restored, at_save);
    }

    #[test]
    fn rolling_clear_resets_to_empty_state() {
        let mut rolling = RollingHashers::new(4, 10);
        rolling.push(Addr::new(0x40));
        rolling.clear();
        for x in 1..=4 {
            assert_eq!(rolling.index(x), 0);
        }
    }

    #[test]
    #[should_panic(expected = "hash number")]
    fn rolling_index_rejects_out_of_range() {
        RollingHashers::new(4, 8).index(5);
    }
}
