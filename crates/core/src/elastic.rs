//! Variable-length *pattern* history: the Tarlescu–Theobald–Gao
//! "elastic history buffer" (paper §2), profile-selecting the number of
//! outcome-history bits per branch.
//!
//! This is the pattern-history mirror of the paper's contribution: same
//! per-branch length selection, but over gshare's outcome bits instead
//! of path target addresses. Comparing [`ElasticGshare`] against
//! [`PathConditional`](crate::PathConditional) isolates *what kind of
//! history* is being varied — the workspace's `related-cond` experiment
//! does exactly that.

use std::collections::HashMap;

use vlpp_predict::{BranchObserver, ConditionalPredictor, OutcomeHistory};
use vlpp_trace::{Addr, BranchKind, BranchRecord, Trace};

use crate::select::HashAssignment;
use crate::table::CounterTable;

/// A gshare-style predictor whose history length is selected per static
/// branch (lengths come from a [`HashAssignment`], 1..=32 bits, clamped
/// to the index width; the assignment's "hash number" is reinterpreted
/// as a history bit count).
///
/// # Example
///
/// ```
/// use vlpp_core::{ElasticGshare, HashAssignment};
/// use vlpp_predict::ConditionalPredictor;
/// use vlpp_trace::Addr;
///
/// let mut p = ElasticGshare::new(12, HashAssignment::fixed(8));
/// let _ = p.predict(Addr::new(0x40));
/// p.train(Addr::new(0x40), true);
/// ```
#[derive(Debug, Clone)]
pub struct ElasticGshare {
    history: OutcomeHistory,
    table: CounterTable,
    assignment: HashAssignment,
    index_bits: u32,
}

impl ElasticGshare {
    /// Creates an elastic gshare with a `2^index_bits`-entry table and
    /// the given per-branch history-length assignment.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32, assignment: HashAssignment) -> Self {
        assert!((1..=28).contains(&index_bits), "index width must be in 1..=28, got {index_bits}");
        ElasticGshare {
            history: OutcomeHistory::new(index_bits.min(32)),
            table: CounterTable::new(index_bits),
            assignment,
            index_bits,
        }
    }

    /// The history length (bits) used for `pc`.
    pub fn selected_length(&self, pc: Addr) -> u32 {
        (self.assignment.get(pc) as u32).min(self.index_bits)
    }

    #[inline]
    fn index(&self, pc: Addr) -> u64 {
        let length = self.selected_length(pc);
        let history = if length >= 64 {
            self.history.bits()
        } else {
            self.history.bits() & ((1u64 << length) - 1)
        };
        history ^ pc.word()
    }
}

impl BranchObserver for ElasticGshare {
    fn observe(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.history.push(record.taken());
        }
    }
}

impl ConditionalPredictor for ElasticGshare {
    fn predict(&mut self, pc: Addr) -> bool {
        self.table.predict(self.index(pc))
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        self.table.train(self.index(pc), taken);
    }

    fn name(&self) -> String {
        if self.assignment.is_fixed() {
            "gshare".into()
        } else {
            "elastic gshare".into()
        }
    }
}

/// Profiles per-branch history lengths for [`ElasticGshare`] the same
/// way the paper's step 1 profiles path lengths: one private-table
/// predictor per candidate length, best length per branch, global best
/// as the default.
///
/// # Example
///
/// ```
/// use vlpp_core::elastic::profile_lengths;
/// use vlpp_trace::Trace;
///
/// let assignment = profile_lengths(&Trace::new(), 10);
/// assert!(assignment.is_fixed()); // nothing to profile
/// ```
pub fn profile_lengths(trace: &Trace, index_bits: u32) -> HashAssignment {
    let lengths: Vec<u32> = (1..=index_bits.min(16)).collect();
    let mut history = OutcomeHistory::new(index_bits);
    let mut tables: Vec<CounterTable> =
        lengths.iter().map(|_| CounterTable::new(index_bits)).collect();
    let mut correct: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut totals = vec![0u64; lengths.len()];

    for record in trace.iter() {
        if record.is_conditional() {
            let tally = correct.entry(record.pc().raw()).or_insert_with(|| vec![0; lengths.len()]);
            for (i, &length) in lengths.iter().enumerate() {
                let bits = history.bits() & ((1u64 << length) - 1);
                let index = bits ^ record.pc().word();
                let prediction = tables[i].predict(index);
                if prediction == record.taken() {
                    tally[i] += 1;
                    totals[i] += 1;
                }
                tables[i].train(index, record.taken());
            }
            history.push(record.taken());
        }
    }

    let default = lengths
        .iter()
        .enumerate()
        .max_by_key(|&(i, _)| (totals[i], std::cmp::Reverse(i)))
        .map(|(_, &l)| l as u8)
        .unwrap_or(8);
    let mut assignment = HashAssignment::fixed(default);
    for (pc, tally) in correct {
        let best = (0..lengths.len())
            .max_by_key(|&i| (tally[i], std::cmp::Reverse(i)))
            .expect("non-empty lengths");
        assignment.assign(Addr::new(pc), lengths[best] as u8);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut ElasticGshare, pc: u64, taken: bool) -> bool {
        let pc = Addr::new(pc);
        let prediction = p.predict(pc);
        p.train(pc, taken);
        p.observe(&BranchRecord::conditional(pc, Addr::new(pc.raw() + 4), taken));
        prediction
    }

    #[test]
    fn fixed_full_length_behaves_like_gshare() {
        // With length = index width for every branch, the index formula
        // is exactly gshare's.
        let mut elastic = ElasticGshare::new(10, HashAssignment::fixed(10));
        let mut gshare = vlpp_predict::Gshare::new(10);
        let mut x: u32 = 3;
        for _ in 0..2000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x1000 + ((x >> 8) & 0xfc) as u64;
            let taken = (x >> 16) & 3 != 0;
            let e = drive(&mut elastic, pc, taken);
            let g = {
                let a = Addr::new(pc);
                let prediction = gshare.predict(a);
                gshare.train(a, taken);
                gshare.observe(&BranchRecord::conditional(a, Addr::new(pc + 4), taken));
                prediction
            };
            assert_eq!(e, g);
        }
    }

    #[test]
    fn per_branch_short_length_shields_a_biased_branch() {
        // The elastic mechanism in one scenario: a strongly biased
        // branch amid heavy random history. Giving *that branch alone*
        // a 1-bit history confines it to two strongly-trained entries;
        // a global 8-bit history sprays it over 256 rarely-revisited,
        // noise-polluted entries.
        let biased_pc = 0x4004u64;
        let mut per_branch = HashAssignment::fixed(8);
        per_branch.assign(Addr::new(biased_pc), 1);
        let mut elastic = ElasticGshare::new(8, per_branch);
        let mut uniform = ElasticGshare::new(8, HashAssignment::fixed(8));
        let mut x: u32 = 9;
        let mut elastic_correct = 0;
        let mut uniform_correct = 0;
        for i in 0..1500u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            // Eight random branches keep the history high-entropy and
            // the table under pressure, so an 8-bit-history biased
            // branch never finishes training.
            for slot in 0..8u64 {
                let noise = (x as u64 >> (12 + slot)) & 1 == 1;
                drive(&mut elastic, 0x9000 + 4 * slot, noise);
                drive(&mut uniform, 0x9000 + 4 * slot, noise);
            }
            if drive(&mut elastic, biased_pc, true) && i > 50 {
                elastic_correct += 1;
            }
            if drive(&mut uniform, biased_pc, true) && i > 50 {
                uniform_correct += 1;
            }
        }
        assert!(
            elastic_correct > uniform_correct,
            "a per-branch short history should win on the biased branch: \
             {elastic_correct} vs {uniform_correct}"
        );
    }

    #[test]
    fn profiled_lengths_adapt_per_branch() {
        // Branch A: biased (wants short history). Branch B: correlated
        // with the previous outcome (wants >= 1 bit).
        let mut trace = Trace::new();
        let mut x: u32 = 7;
        for _ in 0..4000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let r = (x >> 16) & 1 == 1;
            trace.push(BranchRecord::conditional(Addr::new(0x100), Addr::new(0x200), r));
            trace.push(BranchRecord::conditional(Addr::new(0x300), Addr::new(0x400), r));
        }
        let assignment = profile_lengths(&trace, 10);
        assert_eq!(assignment.assigned_count(), 2);
        // Branch 0x300 repeats 0x100's outcome: one bit of history
        // suffices and more only costs; its length should be small.
        assert!(assignment.get(Addr::new(0x300)) <= 4);
    }

    #[test]
    fn profiled_elastic_beats_plain_gshare_on_mixed_needs() {
        let mut profile = Trace::new();
        let mut test = Trace::new();
        for (seed, trace) in [(11u64, &mut profile), (22u64, &mut test)] {
            let mut x = seed;
            for _ in 0..6000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (x >> 33) & 1 == 1;
                // Pure noise branch.
                trace.push(BranchRecord::conditional(Addr::new(0x100), Addr::new(0x200), r));
                // Strongly biased branch (wants short history).
                let biased = (x >> 40) & 0xf != 0;
                trace.push(BranchRecord::conditional(Addr::new(0x300), Addr::new(0x400), biased));
                // Correlated branch (wants some history).
                trace.push(BranchRecord::conditional(Addr::new(0x500), Addr::new(0x600), r));
            }
        }
        let assignment = profile_lengths(&profile, 10);
        let run = |assignment: HashAssignment| {
            let mut p = ElasticGshare::new(10, assignment);
            let mut misses = 0u64;
            for r in test.iter() {
                if r.is_conditional() {
                    if p.predict(r.pc()) != r.taken() {
                        misses += 1;
                    }
                    p.train(r.pc(), r.taken());
                }
                p.observe(r);
            }
            misses
        };
        let elastic = run(assignment);
        let plain = run(HashAssignment::fixed(10));
        assert!(elastic <= plain, "elastic ({elastic}) should not lose to gshare ({plain})");
    }

    #[test]
    fn name_distinguishes_fixed_and_elastic() {
        assert_eq!(ElasticGshare::new(8, HashAssignment::fixed(8)).name(), "gshare");
        let mut a = HashAssignment::fixed(8);
        a.assign(Addr::new(4), 2);
        assert_eq!(ElasticGshare::new(8, a).name(), "elastic gshare");
    }
}
