//! # vlpp-core — Variable Length Path Branch Prediction
//!
//! A from-scratch implementation of the predictor proposed by Stark,
//! Evers, and Patt in *Variable Length Path Branch Prediction*
//! (ASPLOS-VIII, 1998).
//!
//! ## The idea
//!
//! Path-based predictors index a prediction table with a hash of the
//! target addresses of the last `N` branches. Fixing `N` globally is a
//! compromise: some branches are determined by a long path, others by a
//! short one, and hashing irrelevant path prefix into the index wastes
//! table capacity and stretches training time. This predictor computes
//! **all** path hashes `HF_1 … HF_N` simultaneously (cheaply, via the
//! §4.1 partial-sum registers) and selects, per static branch, which one
//! indexes the table — the selection coming from a two-step profiling
//! heuristic (§3.5), a hardware selector (§3.4), or a fixed default.
//!
//! ## Map of the crate
//!
//! | Paper section | Module |
//! |---|---|
//! | §3.1 predictor structure (Fig. 1, 2) | [`thb`], [`hash`], [`table`], [`path`] |
//! | §3.2 recording the path | [`thb`] ([`Thb::observe`](thb::Thb::observe)) |
//! | §3.3 rotate-then-XOR hash functions | [`hash`] |
//! | §3.4 hash selection | [`select`] |
//! | §3.5 profiling heuristic | [`profile`] |
//! | §4.1 single-XOR evaluation | [`hash::IncrementalHashers`] |
//! | §4 practicality: the throughput kernel | [`kernel`] |
//! | §4.3 pipelining / HFNT (Fig. 3, 4) | [`hfnt`] |
//! | §6 future work: call/return history stack | [`stack`] |
//! | §2 related work: Tarlescu elastic history | [`elastic`] |
//! | §2 related work: Driesen–Hölzle dual-length hybrid | [`cascade`] |
//!
//! The user-facing predictors are [`PathConditional`] and
//! [`PathIndirect`]; both implement the `vlpp-predict` traits, so the
//! `vlpp-sim` runner drives them interchangeably with the baselines.
//!
//! ## Example: fixed- and variable-length path prediction
//!
//! ```
//! use vlpp_core::{HashAssignment, PathConditional, PathConfig};
//! use vlpp_predict::ConditionalPredictor;
//! use vlpp_trace::Addr;
//!
//! let config = PathConfig::conditional_for_bytes(4096);
//!
//! // Fixed length: every branch hashes the last 9 targets (Table 2's
//! // best length for a 4 KB table).
//! let mut flp = PathConditional::new(config.clone(), HashAssignment::fixed(9));
//! let _ = flp.predict(Addr::new(0x1000));
//!
//! // Variable length: per-branch lengths, normally produced by
//! // `profile::ProfileBuilder`.
//! let mut assignment = HashAssignment::fixed(9);
//! assignment.assign(Addr::new(0x1000), 3);
//! let mut vlp = PathConditional::new(config, assignment);
//! let _ = vlp.predict(Addr::new(0x1000));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cascade;
pub mod elastic;
pub mod hash;
pub mod hfnt;
pub mod kernel;
pub mod path;
pub mod profile;
pub mod select;
pub mod stack;
pub mod table;
pub mod thb;

pub use cascade::DualLengthPathIndirect;
pub use elastic::ElasticGshare;
pub use hash::{hash_path, IncrementalHashers, RollingHashers};
pub use hfnt::{Hfnt, HfntStats};
pub use kernel::{CondKernel, IndKernel, KernelState, TargetPlane};
pub use path::{PathConditional, PathConfig, PathIndirect};
pub use profile::{ProfileBuilder, ProfileConfig, ProfileReport};
pub use select::{DynamicSelector, HashAssignment};
pub use stack::HistoryStack;
pub use table::{CounterTable, TargetTable};
pub use thb::Thb;

/// The THB capacity the paper uses: at most 32 target addresses, hence
/// hash functions `HF_1 … HF_32`.
pub const MAX_PATH_LENGTH: usize = 32;
