//! Hash-function selection (paper §3.4): which `HF_X` indexes the table
//! for each branch.
//!
//! The paper discusses three selection agents: the compiler (via profiling
//! and ISA bits — [`HashAssignment`]), the hardware (run-time accuracy
//! bookkeeping — [`DynamicSelector`]), or a combination. A fixed global
//! hash number (a [`HashAssignment::fixed`] assignment) degenerates to the
//! fixed-length path predictor.

use std::collections::HashMap;
use std::fmt;

use vlpp_trace::Addr;

/// A per-static-branch assignment of hash-function numbers, plus the
/// default used for branches never profiled (§3.4: "the default value
/// specifies the hash function that provides the highest branch
/// prediction accuracy for the average program").
///
/// # Example
///
/// ```
/// use vlpp_core::HashAssignment;
/// use vlpp_trace::Addr;
///
/// let mut a = HashAssignment::fixed(9);
/// a.assign(Addr::new(0x1000), 3);
/// assert_eq!(a.get(Addr::new(0x1000)), 3);
/// assert_eq!(a.get(Addr::new(0x2000)), 9); // default
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashAssignment {
    map: HashMap<u64, u8>,
    default: u8,
}

impl HashAssignment {
    /// Creates an assignment that maps every branch to `default` — the
    /// fixed-length path predictor's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `default` is 0 or greater than 32.
    pub fn fixed(default: u8) -> Self {
        assert!(
            default >= 1 && default as usize <= crate::MAX_PATH_LENGTH,
            "hash number must be in 1..=32, got {default}"
        );
        HashAssignment { map: HashMap::new(), default }
    }

    /// Assigns hash number `n` to the branch at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 32.
    pub fn assign(&mut self, pc: Addr, n: u8) {
        assert!(
            n >= 1 && n as usize <= crate::MAX_PATH_LENGTH,
            "hash number must be in 1..=32, got {n}"
        );
        self.map.insert(pc.raw(), n);
    }

    /// The hash number for the branch at `pc` (the default if the branch
    /// was never assigned).
    #[inline]
    pub fn get(&self, pc: Addr) -> u8 {
        self.map.get(&pc.raw()).copied().unwrap_or(self.default)
    }

    /// The default hash number.
    pub fn default_hash(&self) -> u8 {
        self.default
    }

    /// The number of branches with explicit assignments.
    pub fn assigned_count(&self) -> usize {
        self.map.len()
    }

    /// Whether this is a pure fixed-length configuration (no per-branch
    /// assignments).
    pub fn is_fixed(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the explicit `(pc, hash number)` assignments in an
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u8)> + '_ {
        self.map.iter().map(|(&pc, &n)| (Addr::new(pc), n))
    }

    /// A histogram of assigned hash numbers, indexed by hash number − 1
    /// (32 buckets). Diagnostic for "how variable is the assignment".
    pub fn length_histogram(&self) -> [usize; crate::MAX_PATH_LENGTH] {
        let mut histogram = [0usize; crate::MAX_PATH_LENGTH];
        for &n in self.map.values() {
            histogram[(n - 1) as usize] += 1;
        }
        histogram
    }

    /// Serializes the assignment to the text format the workspace uses
    /// to persist profiling results (the software stand-in for the §4.2
    /// ISA encoding): a `default <n>` line followed by one
    /// `<pc-hex> <n>` line per branch, sorted by pc.
    pub fn to_text(&self) -> String {
        let mut lines = Vec::with_capacity(self.map.len() + 2);
        lines.push("# vlpp hash assignment".to_string());
        lines.push(format!("default {}", self.default));
        let mut entries: Vec<(&u64, &u8)> = self.map.iter().collect();
        entries.sort_unstable();
        for (pc, n) in entries {
            lines.push(format!("{pc:x} {n}"));
        }
        lines.join("\n") + "\n"
    }

    /// Parses the format produced by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line: missing or
    /// duplicate `default`, bad hex, or a hash number outside `1..=32`.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut assignment: Option<HashAssignment> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let describe = |message: &str| format!("line {}: {message}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(value) = line.strip_prefix("default ") {
                if assignment.is_some() {
                    return Err(describe("duplicate `default` line"));
                }
                let n: u8 =
                    value.trim().parse().map_err(|_| describe("bad default hash number"))?;
                if n < 1 || n as usize > crate::MAX_PATH_LENGTH {
                    return Err(describe("default hash number must be in 1..=32"));
                }
                assignment = Some(HashAssignment::fixed(n));
                continue;
            }
            let assignment =
                assignment.as_mut().ok_or_else(|| describe("entry before the `default` line"))?;
            let (pc_text, n_text) =
                line.split_once(' ').ok_or_else(|| describe("expected `<pc-hex> <hash>`"))?;
            let pc = u64::from_str_radix(pc_text.trim(), 16).map_err(|_| describe("bad pc hex"))?;
            let n: u8 = n_text.trim().parse().map_err(|_| describe("bad hash number"))?;
            if n < 1 || n as usize > crate::MAX_PATH_LENGTH {
                return Err(describe("hash number must be in 1..=32"));
            }
            assignment.assign(Addr::new(pc), n);
        }
        assignment.ok_or_else(|| "missing `default` line".to_string())
    }
}

impl fmt::Display for HashAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} assigned branches, default HF_{}", self.map.len(), self.default)
    }
}

/// Hardware-only hash selection (§3.4): per branch set, a small
/// accuracy counter per candidate hash function; each prediction uses the
/// candidate whose counter is highest.
///
/// The paper notes this trades die area (the counter storage) for the
/// ability to use run-time information. The workspace uses it for the
/// `dynamic-select` ablation.
///
/// # Example
///
/// ```
/// use vlpp_core::DynamicSelector;
/// use vlpp_trace::Addr;
///
/// let mut s = DynamicSelector::new(&[1, 2, 4, 8, 16, 32], 10);
/// let pc = Addr::new(0x400);
/// let first = s.select(pc);
/// assert_eq!(first, 1); // ties break toward the shortest path
/// s.reward(pc, 2, true); // candidate index 2 (HF_4) was correct
/// assert_eq!(s.select(pc), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicSelector {
    candidates: Vec<u8>,
    /// `counters[set * candidates.len() + c]`, saturating `0..=MAX`.
    counters: Vec<u8>,
    mask: u64,
}

impl DynamicSelector {
    const COUNTER_MAX: u8 = 63;

    /// Creates a selector choosing among `candidates` (hash numbers,
    /// each in `1..=32`), with `2^set_bits` branch sets.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, contains an out-of-range hash
    /// number, or `set_bits` exceeds 24.
    pub fn new(candidates: &[u8], set_bits: u32) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate hash function");
        assert!(
            candidates.iter().all(|&c| c >= 1 && c as usize <= crate::MAX_PATH_LENGTH),
            "candidate hash numbers must be in 1..=32"
        );
        assert!(set_bits <= 24, "set index width must be <= 24, got {set_bits}");
        DynamicSelector {
            candidates: candidates.to_vec(),
            counters: vec![Self::COUNTER_MAX / 2; candidates.len() << set_bits],
            mask: (1u64 << set_bits) - 1,
        }
    }

    /// The candidate hash numbers.
    pub fn candidates(&self) -> &[u8] {
        &self.candidates
    }

    #[inline]
    fn base(&self, pc: Addr) -> usize {
        (pc.word() & self.mask) as usize * self.candidates.len()
    }

    /// Selects the hash number with the highest accuracy counter for
    /// `pc`'s branch set. Ties break toward the earlier (shorter)
    /// candidate.
    pub fn select(&self, pc: Addr) -> u8 {
        let base = self.base(pc);
        let slice = &self.counters[base..base + self.candidates.len()];
        let best = slice
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .expect("candidates is non-empty");
        self.candidates[best]
    }

    /// Index of the currently selected candidate within
    /// [`candidates`](Self::candidates), for callers that track per-
    /// candidate state.
    pub fn selected_index(&self, pc: Addr) -> usize {
        let n = self.select(pc);
        self.candidates.iter().position(|&c| c == n).expect("selected from candidates")
    }

    /// Rewards (`correct = true`) or penalizes candidate
    /// `candidate_index` for `pc`'s branch set.
    ///
    /// # Panics
    ///
    /// Panics if `candidate_index` is out of range.
    pub fn reward(&mut self, pc: Addr, candidate_index: usize, correct: bool) {
        assert!(candidate_index < self.candidates.len(), "candidate index out of range");
        let slot = self.base(pc) + candidate_index;
        let counter = &mut self.counters[slot];
        if correct {
            *counter = (*counter + 1).min(Self::COUNTER_MAX);
        } else {
            *counter = counter.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_assignment_returns_default_everywhere() {
        let a = HashAssignment::fixed(14);
        assert!(a.is_fixed());
        assert_eq!(a.get(Addr::new(0xdead)), 14);
        assert_eq!(a.assigned_count(), 0);
    }

    #[test]
    fn explicit_assignment_overrides_default() {
        let mut a = HashAssignment::fixed(14);
        a.assign(Addr::new(0x10), 1);
        a.assign(Addr::new(0x20), 32);
        assert_eq!(a.get(Addr::new(0x10)), 1);
        assert_eq!(a.get(Addr::new(0x20)), 32);
        assert_eq!(a.get(Addr::new(0x30)), 14);
        assert!(!a.is_fixed());
        assert_eq!(a.assigned_count(), 2);
    }

    #[test]
    fn reassignment_replaces() {
        let mut a = HashAssignment::fixed(5);
        a.assign(Addr::new(0x10), 1);
        a.assign(Addr::new(0x10), 7);
        assert_eq!(a.get(Addr::new(0x10)), 7);
        assert_eq!(a.assigned_count(), 1);
    }

    #[test]
    fn histogram_counts_assignments() {
        let mut a = HashAssignment::fixed(5);
        a.assign(Addr::new(0x10), 3);
        a.assign(Addr::new(0x20), 3);
        a.assign(Addr::new(0x30), 32);
        let h = a.length_histogram();
        assert_eq!(h[2], 2);
        assert_eq!(h[31], 1);
        assert_eq!(h.iter().sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "hash number")]
    fn rejects_hash_zero() {
        HashAssignment::fixed(0);
    }

    #[test]
    #[should_panic(expected = "hash number")]
    fn rejects_hash_over_32() {
        let mut a = HashAssignment::fixed(1);
        a.assign(Addr::new(0), 33);
    }

    #[test]
    fn dynamic_selector_learns_preference() {
        let mut s = DynamicSelector::new(&[1, 4, 16], 8);
        let pc = Addr::new(0x100);
        for _ in 0..10 {
            s.reward(pc, 1, true); // HF_4 keeps being right
            s.reward(pc, 0, false);
            s.reward(pc, 2, false);
        }
        assert_eq!(s.select(pc), 4);
    }

    #[test]
    fn dynamic_selector_is_per_set() {
        let mut s = DynamicSelector::new(&[1, 2], 8);
        let a = Addr::new(0x1 << 2);
        let b = Addr::new(0x2 << 2);
        for _ in 0..10 {
            s.reward(a, 1, true);
            s.reward(a, 0, false);
            s.reward(b, 0, true);
            s.reward(b, 1, false);
        }
        assert_eq!(s.select(a), 2);
        assert_eq!(s.select(b), 1);
    }

    #[test]
    fn dynamic_selector_counters_saturate() {
        let mut s = DynamicSelector::new(&[1], 2);
        let pc = Addr::new(0);
        for _ in 0..200 {
            s.reward(pc, 0, true);
        }
        s.reward(pc, 0, false);
        assert_eq!(s.select(pc), 1); // still selectable, no overflow panic
        for _ in 0..200 {
            s.reward(pc, 0, false);
        }
        assert_eq!(s.select(pc), 1);
    }

    #[test]
    fn text_round_trip() {
        let mut a = HashAssignment::fixed(9);
        a.assign(Addr::new(0x1000), 3);
        a.assign(Addr::new(0x2040), 32);
        a.assign(Addr::new(0x4), 1);
        let text = a.to_text();
        let back = HashAssignment::from_text(&text).unwrap();
        assert_eq!(back, a);
        // And the text itself is stable (sorted).
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn text_round_trip_fixed_only() {
        let a = HashAssignment::fixed(17);
        let back = HashAssignment::from_text(&a.to_text()).unwrap();
        assert_eq!(back, a);
        assert!(back.is_fixed());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(HashAssignment::from_text("").is_err());
        assert!(HashAssignment::from_text("10 3\n").is_err(), "entry before default");
        assert!(HashAssignment::from_text("default 0\n").is_err());
        assert!(HashAssignment::from_text("default 33\n").is_err());
        assert!(HashAssignment::from_text("default 4\ndefault 5\n").is_err());
        assert!(HashAssignment::from_text("default 4\nzz 3\n").is_err());
        assert!(HashAssignment::from_text("default 4\n10 99\n").is_err());
        assert!(HashAssignment::from_text("default 4\n10\n").is_err());
        let err = HashAssignment::from_text("default 4\n10 99\n").unwrap_err();
        assert!(err.starts_with("line 2"), "errors carry line numbers: {err}");
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let a = HashAssignment::from_text("# hi\n\ndefault 6\n# entry\n40 2\n").unwrap();
        assert_eq!(a.default_hash(), 6);
        assert_eq!(a.get(Addr::new(0x40)), 2);
    }

    #[test]
    fn display_summarizes() {
        let mut a = HashAssignment::fixed(6);
        a.assign(Addr::new(4), 2);
        let text = a.to_string();
        assert!(text.contains("1 assigned"));
        assert!(text.contains("HF_6"));
    }
}
