//! The Target History Buffer (THB): first-level history of a path
//! predictor (paper §3.1–3.2).

use std::collections::VecDeque;

use vlpp_trace::{Addr, BranchKind, BranchRecord};

/// The Target History Buffer: the `k`-bit-compressed target addresses of
/// the most recently encountered branches, newest first.
///
/// Per the paper's §3.2 recording policy, only the targets of conditional
/// and indirect branches are stored; unconditional branches and calls
/// contribute no useful path information, and returns are excluded by
/// default (the paper found accuracy "does not strongly depend" on them
/// and left them out — [`Thb::with_returns`] enables them for the
/// ablation experiment).
///
/// # Example
///
/// ```
/// use vlpp_core::Thb;
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut thb = Thb::new(32, 14);
/// thb.observe(&BranchRecord::conditional(Addr::new(0x10), Addr::new(0x400), true));
/// thb.observe(&BranchRecord::indirect(Addr::new(0x20), Addr::new(0x800)));
/// // Unconditional jumps are not recorded.
/// thb.observe(&BranchRecord::unconditional(Addr::new(0x30), Addr::new(0xc00)));
/// assert_eq!(thb.len(), 2);
/// assert_eq!(thb.target(1), Addr::new(0x800).low_bits(14)); // T1 = newest
/// ```
#[derive(Debug, Clone)]
pub struct Thb {
    targets: VecDeque<u64>,
    capacity: usize,
    k: u32,
    store_returns: bool,
}

impl Thb {
    /// Creates an empty THB holding up to `capacity` targets compressed
    /// to `k` bits, with return targets excluded (the paper's default).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or `k` is not in `1..=64`.
    pub fn new(capacity: usize, k: u32) -> Self {
        assert!(capacity >= 1, "THB capacity must be at least 1");
        assert!((1..=64).contains(&k), "compression width must be in 1..=64, got {k}");
        Thb { targets: VecDeque::with_capacity(capacity), capacity, k, store_returns: false }
    }

    /// Creates a THB that also records return targets (§3.2 ablation).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new).
    pub fn with_returns(capacity: usize, k: u32) -> Self {
        let mut thb = Thb::new(capacity, k);
        thb.store_returns = true;
        thb
    }

    /// Records `record`'s target if the §3.2 policy says it belongs in
    /// the path history.
    pub fn observe(&mut self, record: &BranchRecord) {
        let store =
            record.enters_thb() || (self.store_returns && record.kind() == BranchKind::Return);
        if store {
            self.push(record.target());
        }
    }

    /// Unconditionally records a target address (compressed to `k` bits),
    /// evicting the oldest if full.
    pub fn push(&mut self, target: Addr) {
        if self.targets.len() == self.capacity {
            self.targets.pop_back();
        }
        self.targets.push_front(target.low_bits(self.k));
    }

    /// `T_X`: the `X`-th most recent compressed target (`X` is 1-based,
    /// as in the paper). Returns 0 if fewer than `X` targets have been
    /// recorded — an empty slot contributes nothing to a hash.
    ///
    /// # Panics
    ///
    /// Panics if `x` is 0 or exceeds the capacity.
    #[inline]
    pub fn target(&self, x: usize) -> u64 {
        assert!(x >= 1 && x <= self.capacity, "T_X index must be in 1..=capacity, got {x}");
        self.targets.get(x - 1).copied().unwrap_or(0)
    }

    /// Iterates over `PATH_len`: the compressed targets `T_1 … T_len`,
    /// padding with zeros if fewer targets have been recorded.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds the capacity.
    pub fn path(&self, len: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(len >= 1 && len <= self.capacity, "path length must be in 1..=capacity, got {len}");
        (1..=len).map(|x| self.targets.get(x - 1).copied().unwrap_or(0))
    }

    /// Number of targets currently recorded (saturates at the capacity).
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether no targets have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The maximum number of targets the THB holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compression width `k` in bits.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Whether return targets are recorded.
    pub fn stores_returns(&self) -> bool {
        self.store_returns
    }

    /// Forgets all recorded targets.
    pub fn clear(&mut self) {
        self.targets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: BranchKind, target: u64) -> BranchRecord {
        BranchRecord::new(Addr::new(0x10), Addr::new(target), kind, true)
    }

    #[test]
    fn newest_is_t1() {
        let mut thb = Thb::new(4, 16);
        thb.push(Addr::new(0xa << 2));
        thb.push(Addr::new(0xb << 2));
        assert_eq!(thb.target(1), 0xb);
        assert_eq!(thb.target(2), 0xa);
    }

    #[test]
    fn eviction_at_capacity() {
        let mut thb = Thb::new(2, 16);
        thb.push(Addr::new(0x1 << 2));
        thb.push(Addr::new(0x2 << 2));
        thb.push(Addr::new(0x3 << 2));
        assert_eq!(thb.len(), 2);
        assert_eq!(thb.target(1), 0x3);
        assert_eq!(thb.target(2), 0x2);
    }

    #[test]
    fn missing_slots_read_zero() {
        let thb = Thb::new(8, 16);
        assert_eq!(thb.target(5), 0);
        assert!(thb.is_empty());
    }

    #[test]
    fn compression_discards_high_bits() {
        let mut thb = Thb::new(2, 8);
        thb.push(Addr::new(0xabcd << 2));
        assert_eq!(thb.target(1), 0xcd);
    }

    #[test]
    fn observe_policy_matches_section_3_2() {
        let mut thb = Thb::new(8, 16);
        thb.observe(&record(BranchKind::Conditional, 0x100));
        thb.observe(&record(BranchKind::Indirect, 0x200));
        thb.observe(&record(BranchKind::Unconditional, 0x300));
        thb.observe(&record(BranchKind::Call, 0x400));
        thb.observe(&record(BranchKind::Return, 0x500));
        assert_eq!(thb.len(), 2, "only conditional and indirect targets enter the THB");
    }

    #[test]
    fn with_returns_also_records_returns() {
        let mut thb = Thb::with_returns(8, 16);
        assert!(thb.stores_returns());
        thb.observe(&record(BranchKind::Return, 0x500));
        assert_eq!(thb.len(), 1);
        thb.observe(&record(BranchKind::Call, 0x400));
        assert_eq!(thb.len(), 1, "calls are never recorded");
    }

    #[test]
    fn path_pads_with_zeros() {
        let mut thb = Thb::new(4, 16);
        thb.push(Addr::new(0x7 << 2));
        let path: Vec<u64> = thb.path(3).collect();
        assert_eq!(path, vec![0x7, 0, 0]);
    }

    #[test]
    fn clear_empties() {
        let mut thb = Thb::new(4, 16);
        thb.push(Addr::new(0x7 << 2));
        thb.clear();
        assert!(thb.is_empty());
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn path_rejects_overlong() {
        let thb = Thb::new(4, 16);
        let _ = thb.path(5).count();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn rejects_zero_capacity() {
        Thb::new(0, 16);
    }
}
