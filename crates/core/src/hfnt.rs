//! The Hash Function Number Table (paper §4.3, Figures 3–4): pipelining
//! the two sequential table accesses a variable length path prediction
//! requires.
//!
//! The HFNT is indexed with low branch-address bits and *predicts* the
//! hash function number; the predictor table is then accessed with the
//! index that hash function produced. When the branch is decoded, the
//! actual hash number (from the opcode) is compared with the HFNT's
//! prediction; a mismatch forces a re-prediction — an extra cycle, not a
//! misprediction. The HFNT entry is written at retire.
//!
//! This module models that structure so the re-prediction cost of the
//! scheme can be measured (the `hfnt` experiment in `vlpp-sim`).

use std::fmt;

use vlpp_trace::Addr;

/// Statistics accumulated by an [`Hfnt`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HfntStats {
    /// Number of lookups (one per predicted branch).
    pub lookups: u64,
    /// Number of lookups whose predicted hash number did not match the
    /// actual one, forcing a re-prediction.
    pub mismatches: u64,
}

impl HfntStats {
    /// Fraction of predictions that had to be re-made, in [0, 1].
    pub fn mismatch_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.lookups as f64
        }
    }
}

impl fmt::Display for HfntStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} re-predictions ({:.2}%)",
            self.lookups,
            self.mismatches,
            100.0 * self.mismatch_rate()
        )
    }
}

/// The Hash Function Number Table.
///
/// # Example
///
/// ```
/// use vlpp_core::Hfnt;
/// use vlpp_trace::Addr;
///
/// let mut hfnt = Hfnt::new(10, 6); // 1 Ki entries, initialized to HF_6
/// let pc = Addr::new(0x4000);
/// let predicted = hfnt.lookup(pc);
/// assert_eq!(predicted, 6);
/// hfnt.resolve(pc, 3); // actual hash number was 3: mismatch, re-predict
/// assert_eq!(hfnt.stats().mismatches, 1);
/// assert_eq!(hfnt.lookup(pc), 3); // entry updated at retire
/// ```
#[derive(Debug, Clone)]
pub struct Hfnt {
    entries: Vec<u8>,
    mask: u64,
    stats: HfntStats,
}

impl Hfnt {
    /// Creates a `2^set_bits`-entry HFNT with every entry initialized to
    /// `initial` (sensibly, the program's default hash number).
    ///
    /// # Panics
    ///
    /// Panics if `set_bits` exceeds 24 or `initial` is not in `1..=32`.
    pub fn new(set_bits: u32, initial: u8) -> Self {
        assert!(set_bits <= 24, "HFNT index width must be <= 24, got {set_bits}");
        assert!(
            initial >= 1 && initial as usize <= crate::MAX_PATH_LENGTH,
            "initial hash number must be in 1..=32, got {initial}"
        );
        Hfnt {
            entries: vec![initial; 1 << set_bits],
            mask: (1u64 << set_bits) - 1,
            stats: HfntStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (pc.word() & self.mask) as usize
    }

    /// Fetch-time access: predicts the hash number for the branch at
    /// `pc` and counts the lookup.
    pub fn lookup(&mut self, pc: Addr) -> u8 {
        self.stats.lookups += 1;
        self.entries[self.index(pc)]
    }

    /// Peeks at the entry without counting a lookup.
    pub fn peek(&self, pc: Addr) -> u8 {
        self.entries[self.index(pc)]
    }

    /// Decode/retire-time resolution: compares the last prediction for
    /// `pc` against the `actual` hash number from the opcode, counts a
    /// mismatch if they differ, and writes the entry. Returns `true` if
    /// the numbers matched (no re-prediction needed).
    ///
    /// # Panics
    ///
    /// Panics if `actual` is not in `1..=32`.
    pub fn resolve(&mut self, pc: Addr, actual: u8) -> bool {
        assert!(
            actual >= 1 && actual as usize <= crate::MAX_PATH_LENGTH,
            "hash number must be in 1..=32, got {actual}"
        );
        let index = self.index(pc);
        let matched = self.entries[index] == actual;
        if !matched {
            self.stats.mismatches += 1;
        }
        self.entries[index] = actual;
        matched
    }

    /// The accumulated lookup/mismatch statistics.
    pub fn stats(&self) -> HfntStats {
        self.stats
    }

    /// The number of HFNT entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_branch_never_re_predicts_after_first_write() {
        let mut hfnt = Hfnt::new(8, 1);
        let pc = Addr::new(0x40);
        hfnt.lookup(pc);
        hfnt.resolve(pc, 7); // first encounter: mismatch against init
        for _ in 0..10 {
            hfnt.lookup(pc);
            assert!(hfnt.resolve(pc, 7));
        }
        assert_eq!(hfnt.stats().mismatches, 1);
        assert_eq!(hfnt.stats().lookups, 11);
    }

    #[test]
    fn aliased_branches_with_different_numbers_thrash() {
        let mut hfnt = Hfnt::new(2, 1);
        let a = Addr::new(0x1 << 2);
        let b = Addr::new((0x1 + 4) << 2); // aliases with a in a 2-bit table
        for _ in 0..5 {
            hfnt.lookup(a);
            hfnt.resolve(a, 3);
            hfnt.lookup(b);
            hfnt.resolve(b, 9);
        }
        // After warmup each access sees the other branch's number.
        assert!(hfnt.stats().mismatches >= 9);
    }

    #[test]
    fn matching_initial_value_is_free() {
        let mut hfnt = Hfnt::new(4, 6);
        let pc = Addr::new(0x10);
        hfnt.lookup(pc);
        assert!(hfnt.resolve(pc, 6));
        assert_eq!(hfnt.stats().mismatches, 0);
    }

    #[test]
    fn mismatch_rate_handles_zero_lookups() {
        assert_eq!(HfntStats::default().mismatch_rate(), 0.0);
    }

    #[test]
    fn peek_does_not_count() {
        let mut hfnt = Hfnt::new(4, 2);
        assert_eq!(hfnt.peek(Addr::new(0)), 2);
        assert_eq!(hfnt.stats().lookups, 0);
        hfnt.lookup(Addr::new(0));
        assert_eq!(hfnt.stats().lookups, 1);
    }

    #[test]
    fn display_reports_percentage() {
        let stats = HfntStats { lookups: 200, mismatches: 10 };
        assert!(stats.to_string().contains("5.00%"));
    }

    #[test]
    #[should_panic(expected = "hash number")]
    fn resolve_rejects_zero() {
        Hfnt::new(4, 1).resolve(Addr::new(0), 0);
    }
}
