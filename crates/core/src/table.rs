//! Second-level predictor tables (paper §3.1): 2-bit counters for
//! conditional branches, target registers for indirect branches.

use vlpp_predict::Counter2;
use vlpp_trace::Addr;

/// A table of 2-bit saturating counters indexed by a path hash.
///
/// # Example
///
/// ```
/// use vlpp_core::CounterTable;
///
/// let mut t = CounterTable::new(10);
/// assert!(!t.predict(5));
/// t.train(5, true);
/// t.train(5, true);
/// assert!(t.predict(5));
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    counters: Vec<Counter2>,
    mask: u64,
}

impl CounterTable {
    /// Creates a `2^index_bits`-entry counter table.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index width must be in 1..=28, got {index_bits}");
        CounterTable {
            counters: vec![Counter2::default(); 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Predicts the direction stored at `index` (taken when the counter
    /// is ≥ 2). Out-of-range index bits are masked off.
    #[inline]
    pub fn predict(&self, index: u64) -> bool {
        self.counters[(index & self.mask) as usize].predict_taken()
    }

    /// Updates the counter at `index` with a resolved direction.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        self.counters[(index & self.mask) as usize].update(taken);
    }

    /// The number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// The table size in bytes under the 2-bits-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.counters.len() as u64 / 4
    }

    /// Every counter value in index order — the diagnostic form the
    /// differential tests compare against the packed counter plane.
    pub fn values(&self) -> Vec<u8> {
        self.counters.iter().map(|c| c.value()).collect()
    }
}

/// A table of target-address registers indexed by a path hash.
///
/// Each entry stores the full 64-bit target last written to it. The
/// paper's footnote 1 stores only the low 32 bits and splices the high
/// half from the predicted branch's own pc — the CHP baselines in
/// `vlpp-predict` keep that hardware behavior, but the VLPP tables
/// dropped it after the splice was shown to alias targets ≥ 2^32 on
/// 64-bit address spaces (a branch whose pc and target live in
/// different 4 GiB regions could never predict correctly). The
/// 4-bytes-per-entry *budget accounting* is unchanged:
/// [`bytes`](Self::bytes) still reports the paper's hardware cost
/// model.
///
/// # Example
///
/// ```
/// use vlpp_core::TargetTable;
/// use vlpp_trace::Addr;
///
/// let mut t = TargetTable::new(9);
/// assert_eq!(t.predict(3, Addr::new(0x1000)), Addr::NULL);
/// t.train(3, Addr::new(0x2000));
/// assert_eq!(t.predict(3, Addr::new(0x1000)), Addr::new(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct TargetTable {
    targets: Vec<u64>,
    valid: Vec<bool>,
    mask: u64,
}

impl TargetTable {
    /// Creates a `2^index_bits`-entry target table.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=26).contains(&index_bits), "index width must be in 1..=26, got {index_bits}");
        TargetTable {
            targets: vec![0; 1 << index_bits],
            valid: vec![false; 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Predicts the full target stored at `index`. Returns
    /// [`Addr::NULL`] for a never-written entry. `pc` is unused since
    /// the footnote-1 splice was removed, but stays in the signature:
    /// it is the hardware lookup key shape and keeps the table
    /// call-compatible with the spliced CHP baselines.
    #[inline]
    pub fn predict(&self, index: u64, _pc: Addr) -> Addr {
        let i = (index & self.mask) as usize;
        if self.valid[i] {
            Addr::new(self.targets[i])
        } else {
            Addr::NULL
        }
    }

    /// Writes the resolved `target` into the entry at `index`.
    #[inline]
    pub fn train(&mut self, index: u64, target: Addr) {
        let i = (index & self.mask) as usize;
        self.targets[i] = target.raw();
        self.valid[i] = true;
    }

    /// The number of entries.
    pub fn entries(&self) -> usize {
        self.targets.len()
    }

    /// The table size in bytes under the paper's 4-bytes-per-entry
    /// accounting (footnote 1's hardware cost model — kept even though
    /// the software table stores full 64-bit targets).
    pub fn bytes(&self) -> u64 {
        self.targets.len() as u64 * 4
    }

    /// Every entry's stored target in index order (`None` for
    /// never-written entries) — the diagnostic form the differential
    /// tests compare against the packed target plane.
    pub fn stored(&self) -> Vec<Option<u64>> {
        self.targets.iter().zip(&self.valid).map(|(&v, &ok)| ok.then_some(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_defaults_not_taken() {
        let t = CounterTable::new(6);
        assert!((0..64).all(|i| !t.predict(i)));
    }

    #[test]
    fn counter_table_masks_index() {
        let mut t = CounterTable::new(4);
        t.train(0x13, true);
        t.train(0x13, true);
        assert!(t.predict(0x3), "index 0x13 aliases to 0x3 in a 4-bit table");
    }

    #[test]
    fn counter_table_budget_accounting() {
        // 2^14 counters = 4 KB.
        assert_eq!(CounterTable::new(14).bytes(), 4096);
    }

    #[test]
    fn target_table_budget_accounting() {
        // 2^9 targets = 2 KB.
        assert_eq!(TargetTable::new(9).bytes(), 2048);
    }

    #[test]
    fn target_table_stores_full_width_targets() {
        // Regression for the footnote-1 splice: a target whose high 32
        // bits differ from the predicting pc's must come back intact,
        // not with the pc's high half spliced over it.
        let mut t = TargetTable::new(4);
        t.train(1, Addr::new(0xbbbb_0000_0000_2000));
        let predicted = t.predict(1, Addr::new(0xaaaa_0000_0000_1000));
        assert_eq!(predicted, Addr::new(0xbbbb_0000_0000_2000));
    }

    #[test]
    fn target_table_predicts_repeating_high_address_branch() {
        // Pre-fix, a branch at pc 0x1_0000_0000 with target
        // 0x2_0000_0000 could never be predicted correctly: the stored
        // low 32 bits are zero and the splice pinned the high half to
        // the pc's, yielding 0x1_0000_0000 forever.
        let mut t = TargetTable::new(4);
        let pc = Addr::new(0x1_0000_0000);
        let target = Addr::new(0x2_0000_0000);
        t.train(7, target);
        assert_eq!(t.predict(7, pc), target);
    }

    #[test]
    fn target_table_overwrites_on_alias() {
        let mut t = TargetTable::new(4);
        t.train(2, Addr::new(0x100));
        t.train(2 + 16, Addr::new(0x200)); // same masked index
        assert_eq!(t.predict(2, Addr::new(0)), Addr::new(0x200));
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn counter_table_rejects_zero_bits() {
        CounterTable::new(0);
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn target_table_rejects_oversize() {
        TargetTable::new(27);
    }
}
