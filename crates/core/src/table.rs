//! Second-level predictor tables (paper §3.1): 2-bit counters for
//! conditional branches, target registers for indirect branches.

use vlpp_predict::Counter2;
use vlpp_trace::Addr;

/// A table of 2-bit saturating counters indexed by a path hash.
///
/// # Example
///
/// ```
/// use vlpp_core::CounterTable;
///
/// let mut t = CounterTable::new(10);
/// assert!(!t.predict(5));
/// t.train(5, true);
/// t.train(5, true);
/// assert!(t.predict(5));
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    counters: Vec<Counter2>,
    mask: u64,
}

impl CounterTable {
    /// Creates a `2^index_bits`-entry counter table.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index width must be in 1..=28, got {index_bits}");
        CounterTable {
            counters: vec![Counter2::default(); 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Predicts the direction stored at `index` (taken when the counter
    /// is ≥ 2). Out-of-range index bits are masked off.
    #[inline]
    pub fn predict(&self, index: u64) -> bool {
        self.counters[(index & self.mask) as usize].predict_taken()
    }

    /// Updates the counter at `index` with a resolved direction.
    #[inline]
    pub fn train(&mut self, index: u64, taken: bool) {
        self.counters[(index & self.mask) as usize].update(taken);
    }

    /// The number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// The table size in bytes under the 2-bits-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.counters.len() as u64 / 4
    }

    /// Every counter value in index order — the diagnostic form the
    /// differential tests compare against the packed counter plane.
    pub fn values(&self) -> Vec<u8> {
        self.counters.iter().map(|c| c.value()).collect()
    }
}

/// A table of target-address registers indexed by a path hash.
///
/// Each entry stores the low 32 bits of the last target written to it
/// (paper footnote 1); predictions splice those bits under the high half
/// of the predicted branch's own address.
///
/// # Example
///
/// ```
/// use vlpp_core::TargetTable;
/// use vlpp_trace::Addr;
///
/// let mut t = TargetTable::new(9);
/// assert_eq!(t.predict(3, Addr::new(0x1000)), Addr::NULL);
/// t.train(3, Addr::new(0x2000));
/// assert_eq!(t.predict(3, Addr::new(0x1000)), Addr::new(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct TargetTable {
    low32: Vec<u32>,
    valid: Vec<bool>,
    mask: u64,
}

impl TargetTable {
    /// Creates a `2^index_bits`-entry target table.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=26).contains(&index_bits), "index width must be in 1..=26, got {index_bits}");
        TargetTable {
            low32: vec![0; 1 << index_bits],
            valid: vec![false; 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    /// Predicts the target stored at `index`, splicing the stored low 32
    /// bits under `pc`'s high 32. Returns [`Addr::NULL`] for a
    /// never-written entry.
    #[inline]
    pub fn predict(&self, index: u64, pc: Addr) -> Addr {
        let i = (index & self.mask) as usize;
        if self.valid[i] {
            pc.with_low32(self.low32[i])
        } else {
            Addr::NULL
        }
    }

    /// Writes the resolved `target` into the entry at `index`.
    #[inline]
    pub fn train(&mut self, index: u64, target: Addr) {
        let i = (index & self.mask) as usize;
        self.low32[i] = target.low32();
        self.valid[i] = true;
    }

    /// The number of entries.
    pub fn entries(&self) -> usize {
        self.low32.len()
    }

    /// The table size in bytes under the 4-bytes-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.low32.len() as u64 * 4
    }

    /// Every entry's stored low-32 value in index order (`None` for
    /// never-written entries) — the diagnostic form the differential
    /// tests compare against the packed target plane.
    pub fn stored(&self) -> Vec<Option<u32>> {
        self.low32.iter().zip(&self.valid).map(|(&v, &ok)| ok.then_some(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_defaults_not_taken() {
        let t = CounterTable::new(6);
        assert!((0..64).all(|i| !t.predict(i)));
    }

    #[test]
    fn counter_table_masks_index() {
        let mut t = CounterTable::new(4);
        t.train(0x13, true);
        t.train(0x13, true);
        assert!(t.predict(0x3), "index 0x13 aliases to 0x3 in a 4-bit table");
    }

    #[test]
    fn counter_table_budget_accounting() {
        // 2^14 counters = 4 KB.
        assert_eq!(CounterTable::new(14).bytes(), 4096);
    }

    #[test]
    fn target_table_budget_accounting() {
        // 2^9 targets = 2 KB.
        assert_eq!(TargetTable::new(9).bytes(), 2048);
    }

    #[test]
    fn target_table_splices_high_bits_from_pc() {
        let mut t = TargetTable::new(4);
        t.train(1, Addr::new(0xbbbb_0000_0000_2000));
        let predicted = t.predict(1, Addr::new(0xaaaa_0000_0000_1000));
        assert_eq!(predicted, Addr::new(0xaaaa_0000_0000_2000));
    }

    #[test]
    fn target_table_overwrites_on_alias() {
        let mut t = TargetTable::new(4);
        t.train(2, Addr::new(0x100));
        t.train(2 + 16, Addr::new(0x200)); // same masked index
        assert_eq!(t.predict(2, Addr::new(0)), Addr::new(0x200));
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn counter_table_rejects_zero_bits() {
        CounterTable::new(0);
    }

    #[test]
    #[should_panic(expected = "index width")]
    fn target_table_rejects_oversize() {
        TargetTable::new(27);
    }
}
