//! Property tests for the core predictor machinery.

use std::collections::HashMap;

use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
use vlpp_core::{
    hash_path, CounterTable, HashAssignment, IncrementalHashers, PathConditional, PathConfig,
    ProfileBuilder, ProfileConfig, TargetTable, Thb,
};
use vlpp_predict::{BranchObserver, ConditionalPredictor};
use vlpp_trace::{Addr, BranchKind, BranchRecord, Trace};

/// The §4.1 partial-sum registers compute exactly the §3.3 hashes, for
/// every index width, THB capacity, path length, and target stream.
#[test]
fn incremental_hashers_equal_direct_evaluation() {
    check("incremental_hashers_equal_direct_evaluation", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 24);
        let capacity = g.range_usize(1, 32);
        let targets = g.vec(1, 120, |g| g.u64());
        let mut thb = Thb::new(capacity, k);
        let mut inc = IncrementalHashers::new(capacity, k);
        for &raw in &targets {
            let t = Addr::new(raw);
            thb.push(t);
            inc.push(t);
            for len in 1..=capacity {
                prop_assert_eq!(inc.index(len), hash_path(&thb, len), "len {}", len);
            }
        }
        Ok(())
    });
}

/// Hash indices always fit in k bits.
#[test]
fn hash_indices_fit_index_width() {
    check("hash_indices_fit_index_width", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 30);
        let targets = g.vec(1, 60, |g| g.u64());
        let mut inc = IncrementalHashers::new(8, k);
        for &raw in &targets {
            inc.push(Addr::new(raw));
            for &index in inc.indices() {
                if k < 64 {
                    prop_assert!(index < (1u64 << k));
                }
            }
        }
        Ok(())
    });
}

/// The THB is a faithful sliding window: after any push sequence,
/// T_1..T_len are the most recent pushes, newest first, compressed.
#[test]
fn thb_is_a_sliding_window() {
    check("thb_is_a_sliding_window", CheckConfig::default(), |g| {
        let capacity = g.range_usize(1, 32);
        let k = g.range_u32(1, 32);
        let targets = g.vec(0, 80, |g| g.u64());
        let mut thb = Thb::new(capacity, k);
        for &raw in &targets {
            thb.push(Addr::new(raw));
        }
        let expected: Vec<u64> =
            targets.iter().rev().take(capacity).map(|&raw| Addr::new(raw).low_bits(k)).collect();
        let got: Vec<u64> = thb.path(capacity).collect();
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(got[i], *want, "slot {}", i);
        }
        for (slot, &value) in got.iter().enumerate().skip(expected.len()) {
            prop_assert_eq!(value, 0, "empty slot {}", slot);
        }
        Ok(())
    });
}

/// Assignments store and retrieve arbitrary pc -> hash mappings.
#[test]
fn hash_assignment_is_a_map() {
    check("hash_assignment_is_a_map", CheckConfig::default(), |g| {
        let default = g.range_u8(1, 32);
        let entries: HashMap<u64, u8> =
            g.vec(0, 50, |g| (g.u64(), g.range_u8(1, 32))).into_iter().collect();
        let mut assignment = HashAssignment::fixed(default);
        for (&pc, &n) in &entries {
            assignment.assign(Addr::new(pc), n);
        }
        for (&pc, &n) in &entries {
            prop_assert_eq!(assignment.get(Addr::new(pc)), n);
        }
        prop_assert_eq!(assignment.assigned_count(), entries.len());
        let histogram = assignment.length_histogram();
        prop_assert_eq!(histogram.iter().sum::<usize>(), entries.len());
        Ok(())
    });
}

/// A predictor is a deterministic state machine: the same trace produces
/// the same prediction sequence.
#[test]
fn path_predictor_is_deterministic() {
    check("path_predictor_is_deterministic", CheckConfig::default(), |g| {
        let trace = random_trace(g.u64(), 400);
        let length = g.range_u8(1, 16);
        let run = || {
            let mut p = PathConditional::new(PathConfig::new(10), HashAssignment::fixed(length));
            let mut outcomes = Vec::new();
            for r in trace.iter() {
                if r.is_conditional() {
                    outcomes.push(p.predict(r.pc()));
                    p.train(r.pc(), r.taken());
                }
                p.observe(r);
            }
            outcomes
        };
        prop_assert_eq!(run(), run());
        Ok(())
    });
}

/// Profiling only assigns hash numbers from the configured set, and only
/// to branches that actually appear in the trace.
#[test]
fn profiling_respects_hash_set() {
    check("profiling_respects_hash_set", CheckConfig::default(), |g| {
        let trace = random_trace(g.u64(), 600);
        let hash_set = vec![2u8, 5, 9];
        let config = ProfileConfig::new(PathConfig::new(8))
            .with_hash_set(hash_set.clone())
            .with_iterations(2);
        let report = ProfileBuilder::new(config).profile_conditional(&trace);
        prop_assert!(hash_set.contains(&report.default_hash));
        for (pc, n) in report.assignment.iter() {
            prop_assert!(hash_set.contains(&n), "branch {pc} got hash {n}");
            prop_assert!(
                trace.conditionals().any(|r| r.pc() == pc),
                "assigned branch {pc} not in trace"
            );
        }
        prop_assert_eq!(report.step1.len(), hash_set.len());
        Ok(())
    });
}

/// The fused step-1 kernel (one contiguous `[hash × index]` array, the
/// population dispatch hoisted out of the trace loop) produces exactly
/// the per-hash totals of the straightforward implementation it
/// replaced: one separately-allocated [`CounterTable`]/[`TargetTable`]
/// per configured hash number.
#[test]
fn fused_step1_matches_per_table_reference() {
    check("fused_step1_matches_per_table_reference", CheckConfig::default(), |g| {
        let trace = random_trace(g.u64(), 500);
        let mut path = PathConfig::new(g.range_u32(2, 10));
        path.thb_capacity = g.range_usize(1, 16);
        // A random non-empty strictly-increasing subset of the valid
        // hash numbers 1..=thb_capacity.
        let mut hash_set: Vec<u8> =
            (1..=path.thb_capacity as u8).filter(|_| g.below(2) == 0).collect();
        if hash_set.is_empty() {
            hash_set.push(g.range_u8(1, path.thb_capacity as u8));
        }
        let config =
            ProfileConfig::new(path.clone()).with_hash_set(hash_set.clone()).with_iterations(0);

        let cond = ProfileBuilder::new(config.clone()).profile_conditional(&trace);
        let cond_ref = reference_step1(&path, &hash_set, &trace, true);
        let ind = ProfileBuilder::new(config).profile_indirect(&trace);
        let ind_ref = reference_step1(&path, &hash_set, &trace, false);
        for (report, reference) in [(&cond, &cond_ref), (&ind, &ind_ref)] {
            prop_assert_eq!(report.step1.len(), reference.len());
            for (got, want) in report.step1.iter().zip(reference.iter()) {
                prop_assert_eq!(got.hash, want.0, "hash number order");
                prop_assert_eq!(got.predictions, want.1, "predictions for hash {}", want.0);
                prop_assert_eq!(got.correct, want.2, "correct for hash {}", want.0);
            }
        }
        Ok(())
    });
}

/// The pre-fusion step-1 implementation, reconstructed from the public
/// per-table API: one private [`CounterTable`] (conditional) or
/// [`TargetTable`] (indirect) per hash number, each predicting and
/// training at its own hash index on every relevant record. Returns
/// `(hash, predictions, correct)` per configured hash number.
fn reference_step1(
    path: &PathConfig,
    hash_set: &[u8],
    trace: &Trace,
    conditional: bool,
) -> Vec<(u8, u64, u64)> {
    let mut hashers = IncrementalHashers::new(path.thb_capacity, path.index_bits);
    let mut counters: Vec<CounterTable> =
        hash_set.iter().map(|_| CounterTable::new(path.index_bits)).collect();
    let mut targets: Vec<TargetTable> =
        hash_set.iter().map(|_| TargetTable::new(path.index_bits)).collect();
    let mut stats: Vec<(u8, u64, u64)> = hash_set.iter().map(|&h| (h, 0, 0)).collect();
    for record in trace.iter() {
        if conditional && record.is_conditional() {
            let taken = record.taken();
            for (hi, &hash) in hash_set.iter().enumerate() {
                let index = hashers.index(hash as usize);
                stats[hi].1 += 1;
                if counters[hi].predict(index) == taken {
                    stats[hi].2 += 1;
                }
                counters[hi].train(index, taken);
            }
        } else if !conditional && record.is_indirect() {
            for (hi, &hash) in hash_set.iter().enumerate() {
                let index = hashers.index(hash as usize);
                stats[hi].1 += 1;
                if targets[hi].predict(index, record.pc()) == record.target() {
                    stats[hi].2 += 1;
                }
                targets[hi].train(index, record.target());
            }
        }
        if record.enters_thb() || (path.store_returns && record.kind() == BranchKind::Return) {
            hashers.push(record.target());
        }
    }
    stats
}

/// A deterministic pseudo-random mixed trace.
fn random_trace(seed: u64, n: usize) -> Trace {
    let mut x = seed | 1;
    let mut step = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x
    };
    let mut trace = Trace::new();
    for _ in 0..n {
        let r = step();
        let pc = Addr::new(((r >> 8) & 0xff) << 2 | 0x1000);
        let target = Addr::new(((r >> 16) & 0xff) << 2 | 0x2000);
        match r % 5 {
            0..=2 => trace.push(BranchRecord::conditional(pc, target, r & 1 == 0)),
            3 => trace.push(BranchRecord::indirect(pc, target)),
            _ => trace.push(BranchRecord::unconditional(pc, target)),
        }
    }
    trace
}
