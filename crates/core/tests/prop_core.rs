//! Property tests for the core predictor machinery.

use std::collections::HashMap;

use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
use vlpp_core::{
    hash_path, HashAssignment, IncrementalHashers, PathConditional, PathConfig, ProfileBuilder,
    ProfileConfig, Thb,
};
use vlpp_predict::{BranchObserver, ConditionalPredictor};
use vlpp_trace::{Addr, BranchRecord, Trace};

/// The §4.1 partial-sum registers compute exactly the §3.3 hashes, for
/// every index width, THB capacity, path length, and target stream.
#[test]
fn incremental_hashers_equal_direct_evaluation() {
    check("incremental_hashers_equal_direct_evaluation", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 24);
        let capacity = g.range_usize(1, 32);
        let targets = g.vec(1, 120, |g| g.u64());
        let mut thb = Thb::new(capacity, k);
        let mut inc = IncrementalHashers::new(capacity, k);
        for &raw in &targets {
            let t = Addr::new(raw);
            thb.push(t);
            inc.push(t);
            for len in 1..=capacity {
                prop_assert_eq!(inc.index(len), hash_path(&thb, len), "len {}", len);
            }
        }
        Ok(())
    });
}

/// Hash indices always fit in k bits.
#[test]
fn hash_indices_fit_index_width() {
    check("hash_indices_fit_index_width", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 30);
        let targets = g.vec(1, 60, |g| g.u64());
        let mut inc = IncrementalHashers::new(8, k);
        for &raw in &targets {
            inc.push(Addr::new(raw));
            for &index in inc.indices() {
                if k < 64 {
                    prop_assert!(index < (1u64 << k));
                }
            }
        }
        Ok(())
    });
}

/// The THB is a faithful sliding window: after any push sequence,
/// T_1..T_len are the most recent pushes, newest first, compressed.
#[test]
fn thb_is_a_sliding_window() {
    check("thb_is_a_sliding_window", CheckConfig::default(), |g| {
        let capacity = g.range_usize(1, 32);
        let k = g.range_u32(1, 32);
        let targets = g.vec(0, 80, |g| g.u64());
        let mut thb = Thb::new(capacity, k);
        for &raw in &targets {
            thb.push(Addr::new(raw));
        }
        let expected: Vec<u64> = targets
            .iter()
            .rev()
            .take(capacity)
            .map(|&raw| Addr::new(raw).low_bits(k))
            .collect();
        let got: Vec<u64> = thb.path(capacity).collect();
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(got[i], *want, "slot {}", i);
        }
        for slot in expected.len()..capacity {
            prop_assert_eq!(got[slot], 0, "empty slot {}", slot);
        }
        Ok(())
    });
}

/// Assignments store and retrieve arbitrary pc -> hash mappings.
#[test]
fn hash_assignment_is_a_map() {
    check("hash_assignment_is_a_map", CheckConfig::default(), |g| {
        let default = g.range_u8(1, 32);
        let entries: HashMap<u64, u8> =
            g.vec(0, 50, |g| (g.u64(), g.range_u8(1, 32))).into_iter().collect();
        let mut assignment = HashAssignment::fixed(default);
        for (&pc, &n) in &entries {
            assignment.assign(Addr::new(pc), n);
        }
        for (&pc, &n) in &entries {
            prop_assert_eq!(assignment.get(Addr::new(pc)), n);
        }
        prop_assert_eq!(assignment.assigned_count(), entries.len());
        let histogram = assignment.length_histogram();
        prop_assert_eq!(histogram.iter().sum::<usize>(), entries.len());
        Ok(())
    });
}

/// A predictor is a deterministic state machine: the same trace produces
/// the same prediction sequence.
#[test]
fn path_predictor_is_deterministic() {
    check("path_predictor_is_deterministic", CheckConfig::default(), |g| {
        let trace = random_trace(g.u64(), 400);
        let length = g.range_u8(1, 16);
        let run = || {
            let mut p = PathConditional::new(PathConfig::new(10), HashAssignment::fixed(length));
            let mut outcomes = Vec::new();
            for r in trace.iter() {
                if r.is_conditional() {
                    outcomes.push(p.predict(r.pc()));
                    p.train(r.pc(), r.taken());
                }
                p.observe(r);
            }
            outcomes
        };
        prop_assert_eq!(run(), run());
        Ok(())
    });
}

/// Profiling only assigns hash numbers from the configured set, and only
/// to branches that actually appear in the trace.
#[test]
fn profiling_respects_hash_set() {
    check("profiling_respects_hash_set", CheckConfig::default(), |g| {
        let trace = random_trace(g.u64(), 600);
        let hash_set = vec![2u8, 5, 9];
        let config = ProfileConfig::new(PathConfig::new(8))
            .with_hash_set(hash_set.clone())
            .with_iterations(2);
        let report = ProfileBuilder::new(config).profile_conditional(&trace);
        prop_assert!(hash_set.contains(&report.default_hash));
        for (pc, n) in report.assignment.iter() {
            prop_assert!(hash_set.contains(&n), "branch {pc} got hash {n}");
            prop_assert!(
                trace.conditionals().any(|r| r.pc() == pc),
                "assigned branch {pc} not in trace"
            );
        }
        prop_assert_eq!(report.step1.len(), hash_set.len());
        Ok(())
    });
}

/// A deterministic pseudo-random mixed trace.
fn random_trace(seed: u64, n: usize) -> Trace {
    let mut x = seed | 1;
    let mut step = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x
    };
    let mut trace = Trace::new();
    for _ in 0..n {
        let r = step();
        let pc = Addr::new(((r >> 8) & 0xff) << 2 | 0x1000);
        let target = Addr::new(((r >> 16) & 0xff) << 2 | 0x2000);
        match r % 5 {
            0 | 1 | 2 => trace.push(BranchRecord::conditional(pc, target, r & 1 == 0)),
            3 => trace.push(BranchRecord::indirect(pc, target)),
            _ => trace.push(BranchRecord::unconditional(pc, target)),
        }
    }
    trace
}
