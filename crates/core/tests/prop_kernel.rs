//! The differential test layer pinning the structure-of-arrays
//! throughput kernels bit-for-bit to the boxed reference predictors,
//! plus the §4.1 incremental-hashing properties the kernel's O(1)
//! lookup rests on.
//!
//! Seeded configurations × synthetic traces drive [`CondKernel`] /
//! [`IndKernel`] and [`PathConditional`] / [`PathIndirect`] side by
//! side and assert that per-record predictions, final counter/target
//! state, and final statistics are exactly equal — not approximately,
//! not statistically: any single differing bit fails the property.

use std::collections::HashMap;

use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
use vlpp_core::{
    hash_path, CondKernel, HashAssignment, IncrementalHashers, IndKernel, PathConditional,
    PathConfig, PathIndirect, Thb, MAX_PATH_LENGTH,
};
use vlpp_predict::{BranchObserver, ConditionalPredictor, IndirectPredictor};
use vlpp_trace::{Addr, BranchRecord, Trace};

/// A random predictor configuration: index width, THB capacity, the
/// §3.2 returns policy, and (sometimes) a §6 history stack.
fn random_config(g: &mut vlpp_check::Gen) -> PathConfig {
    let mut config = PathConfig::new(g.range_u32(2, 12));
    config.thb_capacity = g.range_usize(1, MAX_PATH_LENGTH);
    config.store_returns = g.below(2) == 0;
    if g.below(2) == 0 {
        config.history_stack_depth = Some(g.range_usize(1, 8));
    }
    config
}

/// A random hash assignment over the small pc universe
/// [`random_trace`] draws branches from. Hash numbers deliberately
/// range over all of `1..=32` so some exceed the THB capacity and
/// exercise the clamp.
fn random_assignment(g: &mut vlpp_check::Gen) -> HashAssignment {
    let mut assignment = HashAssignment::fixed(g.range_u8(1, 32));
    for _ in 0..g.range_usize(0, 12) {
        assignment.assign(Addr::new(0x1000 | (g.below(64) << 2)), g.range_u8(1, 32));
    }
    assignment
}

/// A deterministic mixed trace over a small pc universe: conditionals,
/// indirects, unconditionals, and call/return pairs (so the history
/// stack sees pops of pushed frames *and* pops of an empty stack).
/// Addresses independently land above 2^32 about a quarter of the
/// time, with pc and target drawing *different* high halves — the
/// aliasing surface of the (since removed) footnote-1 low-32 target
/// splice on 64-bit address spaces.
fn random_trace(g: &mut vlpp_check::Gen, n: usize) -> Trace {
    let mut trace = Trace::new();
    for _ in 0..n {
        let pc_high = if g.below(4) == 0 { (1 + g.below(3)) << 32 } else { 0 };
        let target_high = if g.below(4) == 0 { (1 + g.below(3)) << 33 } else { 0 };
        let pc = Addr::new(pc_high | 0x1000 | (g.below(64) << 2));
        let target = Addr::new(target_high | 0x2000 | (g.below(256) << 2));
        match g.below(8) {
            0 => trace.push(BranchRecord::indirect(pc, target)),
            1 => trace.push(BranchRecord::call(pc, target)),
            2 => trace.push(BranchRecord::ret(pc, target)),
            3 => trace.push(BranchRecord::unconditional(pc, target)),
            _ => trace.push(BranchRecord::conditional(pc, target, g.below(2) == 0)),
        }
    }
    trace
}

/// The SoA conditional kernel is bit-identical to the boxed reference:
/// every per-record prediction and correctness verdict, the final
/// packed counter plane vs the reference table, and the final totals
/// and per-branch statistics.
#[test]
fn cond_kernel_is_bit_identical_to_boxed_reference() {
    check("cond_kernel_is_bit_identical_to_boxed_reference", CheckConfig::default(), |g| {
        let config = random_config(g);
        let assignment = random_assignment(g);
        let trace = random_trace(g, 600);

        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        let mut predictions = 0u64;
        let mut mispredictions = 0u64;
        let mut per_branch: HashMap<u64, (u64, u64)> = HashMap::new();
        for (i, record) in trace.iter().enumerate() {
            let got = kernel.apply(record);
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                let correct = expected == record.taken();
                prop_assert_eq!(got, Some((expected, correct)), "record {}", i);
                predictions += 1;
                let row = per_branch.entry(record.pc().raw()).or_insert((0, 0));
                row.0 += 1;
                if !correct {
                    mispredictions += 1;
                    row.1 += 1;
                }
            } else {
                prop_assert_eq!(got, None, "record {}", i);
            }
            reference.observe(record);
        }
        prop_assert_eq!(kernel.counter_values(), reference.counter_values(), "counter state");
        prop_assert_eq!(kernel.predictions(), predictions);
        prop_assert_eq!(kernel.mispredictions(), mispredictions);
        prop_assert_eq!(kernel.static_branches(), per_branch.len());
        let rows: HashMap<u64, (u64, u64)> =
            kernel.branch_stats().map(|(pc, p, m)| (pc, (p, m))).collect();
        prop_assert_eq!(rows, per_branch, "per-branch stats");
        Ok(())
    });
}

/// The SoA indirect kernel is bit-identical to the boxed reference:
/// every per-record target prediction, the final packed target plane vs
/// the reference table, and the final statistics.
#[test]
fn ind_kernel_is_bit_identical_to_boxed_reference() {
    check("ind_kernel_is_bit_identical_to_boxed_reference", CheckConfig::default(), |g| {
        let config = random_config(g);
        let assignment = random_assignment(g);
        let trace = random_trace(g, 600);

        let mut kernel = IndKernel::new(&config, &assignment);
        let mut reference = PathIndirect::new(config, assignment);
        let mut predictions = 0u64;
        let mut mispredictions = 0u64;
        let mut per_branch: HashMap<u64, (u64, u64)> = HashMap::new();
        for (i, record) in trace.iter().enumerate() {
            let got = kernel.apply(record);
            if record.is_indirect() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.target());
                let correct = expected == record.target();
                prop_assert_eq!(got, Some((expected, correct)), "record {}", i);
                predictions += 1;
                let row = per_branch.entry(record.pc().raw()).or_insert((0, 0));
                row.0 += 1;
                if !correct {
                    mispredictions += 1;
                    row.1 += 1;
                }
            } else {
                prop_assert_eq!(got, None, "record {}", i);
            }
            reference.observe(record);
        }
        prop_assert_eq!(kernel.target_entries(), reference.target_entries(), "target state");
        prop_assert_eq!(kernel.predictions(), predictions);
        prop_assert_eq!(kernel.mispredictions(), mispredictions);
        let rows: HashMap<u64, (u64, u64)> =
            kernel.branch_stats().map(|(pc, p, m)| (pc, (p, m))).collect();
        prop_assert_eq!(rows, per_branch, "per-branch stats");
        Ok(())
    });
}

/// The trait-protocol path (predict → train → observe as three calls)
/// and the fused `apply` evolve the kernel identically — the serve
/// executor and any trait-generic caller see the same state machine.
#[test]
fn kernel_trait_protocol_matches_fused_apply() {
    check("kernel_trait_protocol_matches_fused_apply", CheckConfig::default(), |g| {
        let config = random_config(g);
        let assignment = random_assignment(g);
        let trace = random_trace(g, 400);
        let mut fused = CondKernel::new(&config, &assignment);
        let mut stepwise = CondKernel::new(&config, &assignment);
        for record in trace.iter() {
            let via_apply = fused.apply(record);
            if record.is_conditional() {
                let predicted = stepwise.predict(record.pc());
                stepwise.train(record.pc(), record.taken());
                prop_assert_eq!(via_apply.map(|(p, _)| p), Some(predicted));
            }
            stepwise.observe(record);
        }
        prop_assert_eq!(fused.counter_values(), stepwise.counter_values());
        Ok(())
    });
}

/// Deeply nested (and unbalanced) call/return streams keep the kernel
/// and reference in lockstep: stack overflow drops the oldest frame,
/// returns with an empty stack are no-ops, and restores roll the
/// registers back identically on both sides.
#[test]
fn kernel_matches_reference_under_deep_call_return_nesting() {
    check("kernel_matches_reference_under_deep_call_return_nesting", CheckConfig::default(), |g| {
        let mut config =
            PathConfig::new(g.range_u32(4, 10)).with_history_stack(g.range_usize(1, 3));
        config.thb_capacity = g.range_usize(1, 16);
        let assignment = random_assignment(g);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        // Heavily call/return-biased stream: nesting routinely exceeds
        // the stack depth, and returns often outnumber calls.
        for i in 0..500 {
            let pc = Addr::new(0x1000 | (g.below(64) << 2));
            let target = Addr::new(0x2000 | (g.below(256) << 2));
            let record = match g.below(4) {
                0 => BranchRecord::call(pc, target),
                1 | 2 => BranchRecord::ret(pc, target),
                _ => BranchRecord::conditional(pc, target, g.below(2) == 0),
            };
            let got = kernel.apply(&record);
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                prop_assert_eq!(got.map(|(p, _)| p), Some(expected), "record {}", i);
            }
            reference.observe(&record);
        }
        prop_assert_eq!(kernel.counter_values(), reference.counter_values());
        Ok(())
    });
}

/// §4.1 soundness, step by step: after every push, each partial-sum
/// register `I_X` equals a from-scratch §3.3 re-hash of the THB's
/// current path — including at and past the history-length boundary,
/// where the sliding window starts dropping old targets.
#[test]
fn partial_sums_equal_rehash_after_every_step() {
    check("partial_sums_equal_rehash_after_every_step", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 28);
        let capacity = g.range_usize(1, MAX_PATH_LENGTH);
        // Push well past the capacity so every register crosses its
        // history-length boundary (the wrap from a partially-filled to
        // a saturated window).
        let targets = g.vec(capacity + 1, capacity * 2 + 40, |g| g.u64());
        let mut thb = Thb::new(capacity, k);
        let mut inc = IncrementalHashers::new(capacity, k);
        for (step, &raw) in targets.iter().enumerate() {
            let t = Addr::new(raw);
            thb.push(t);
            inc.push(t);
            for len in 1..=capacity {
                prop_assert_eq!(
                    inc.index(len),
                    hash_path(&thb, len),
                    "register {} at step {}",
                    len,
                    step
                );
            }
        }
        Ok(())
    });
}

/// §4.1 rollback: restoring a snapshot rewinds every register to its
/// exact value at the snapshot point, and the recurrence then evolves
/// from the restored state exactly as it evolved from the original —
/// the property the §6 history stack (and crash-safe resume) rely on.
#[test]
fn snapshot_restore_rolls_registers_back_exactly() {
    check("snapshot_restore_rolls_registers_back_exactly", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 28);
        let capacity = g.range_usize(1, MAX_PATH_LENGTH);
        let prefix = g.vec(0, 40, |g| g.u64());
        let detour = g.vec(1, 40, |g| g.u64());
        let suffix = g.vec(0, 40, |g| g.u64());

        let mut inc = IncrementalHashers::new(capacity, k);
        for &raw in &prefix {
            inc.push(Addr::new(raw));
        }
        let snapshot = inc.snapshot();
        for &raw in &detour {
            inc.push(Addr::new(raw));
        }
        inc.restore(&snapshot);
        prop_assert_eq!(inc.indices(), &snapshot[..], "registers after rollback");

        // From the restored state, the future must look exactly as it
        // would have had the detour never happened.
        let mut replay = IncrementalHashers::new(capacity, k);
        for &raw in prefix.iter().chain(&suffix) {
            replay.push(Addr::new(raw));
        }
        for &raw in &suffix {
            inc.push(Addr::new(raw));
        }
        prop_assert_eq!(inc.indices(), replay.indices(), "post-rollback evolution");
        Ok(())
    });
}

/// Register-file truncation is sound: because the §4.1 recurrence for
/// `I_X` reads only registers below `X`, a hasher truncated to `m`
/// registers maintains exactly the first `m` registers of the
/// full-capacity hasher through arbitrary pushes — the property that
/// lets the kernel size its register file to the longest hash actually
/// assigned.
#[test]
fn truncated_registers_match_full_capacity_prefix() {
    check("truncated_registers_match_full_capacity_prefix", CheckConfig::default(), |g| {
        let k = g.range_u32(1, 28);
        let m = g.range_usize(1, MAX_PATH_LENGTH);
        let targets = g.vec(0, 100, |g| g.u64());
        let mut truncated = IncrementalHashers::new(m, k);
        let mut full = IncrementalHashers::new(MAX_PATH_LENGTH, k);
        for &raw in &targets {
            truncated.push(Addr::new(raw));
            full.push(Addr::new(raw));
            prop_assert_eq!(truncated.indices(), &full.indices()[..m]);
        }
        Ok(())
    });
}

/// End-to-end length-boundary check on the kernel itself: a hash number
/// assigned *above* the THB capacity clamps to the capacity on both
/// sides, so predictions stay bit-identical at the boundary.
#[test]
fn kernel_clamps_overlong_hashes_like_reference() {
    check("kernel_clamps_overlong_hashes_like_reference", CheckConfig::default(), |g| {
        let mut config = PathConfig::new(g.range_u32(2, 10));
        config.thb_capacity = g.range_usize(1, 8);
        // Every hash number in the assignment exceeds the capacity.
        let mut assignment = HashAssignment::fixed(g.range_u8(9, 32));
        for _ in 0..g.range_usize(0, 6) {
            assignment.assign(Addr::new(0x1000 | (g.below(64) << 2)), g.range_u8(9, 32));
        }
        let trace = random_trace(g, 300);
        let mut kernel = CondKernel::new(&config, &assignment);
        let mut reference = PathConditional::new(config, assignment);
        for record in trace.iter() {
            let got = kernel.apply(record);
            if record.is_conditional() {
                let expected = reference.predict(record.pc());
                reference.train(record.pc(), record.taken());
                prop_assert_eq!(got.map(|(p, _)| p), Some(expected));
            }
            reference.observe(record);
        }
        prop_assert_eq!(kernel.counter_values(), reference.counter_values());
        Ok(())
    });
}

/// The packed planes really are the compact layout they claim: byte
/// accounting matches the boxed tables entry for entry.
#[test]
fn kernel_table_bytes_match_reference_accounting() {
    check("kernel_table_bytes_match_reference_accounting", CheckConfig::default(), |g| {
        let config = PathConfig::new(g.range_u32(2, 12));
        let assignment = HashAssignment::fixed(g.range_u8(1, 32));
        let cond = CondKernel::new(&config, &assignment);
        let cond_ref = PathConditional::new(config.clone(), assignment.clone());
        prop_assert_eq!(cond.table_bytes(), cond_ref.table_bytes());
        let ind = IndKernel::new(&config, &assignment);
        let ind_ref = PathIndirect::new(config, assignment);
        prop_assert_eq!(ind.table_bytes(), ind_ref.table_bytes());
        prop_assert!(cond.table_bytes() < ind.table_bytes(), "2-bit counters vs 4-byte targets");
        Ok(())
    });
}
