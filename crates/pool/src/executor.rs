//! The bounded work-queue executor.
//!
//! A [`Pool`] of `threads` is `threads − 1` long-lived workers plus the
//! thread that calls [`Pool::map`]: the caller pushes its batch onto the
//! shared queue, then *helps* — it pops and runs tasks from its own
//! batch until every slot is filled. Nested maps (a task calling
//! [`Pool::map`] again) therefore cost zero extra threads: the nested
//! caller just becomes a helper for its own sub-batch, and the total
//! thread count stays at the configured bound at any nesting depth.
//!
//! Helpers only run tasks from their *own* batch. This keeps a blocked
//! computation from re-entering itself: if a helper could steal
//! arbitrary work, a task that initializes a [`Memo`](crate::Memo) key
//! could steal another task that waits on that same key — on the same
//! stack — and deadlock. Idle *workers* take any task from any batch,
//! so cross-batch parallelism is still fully exploited.
//!
//! ## Fault tolerance
//!
//! Two map flavors share the queue:
//!
//! * [`Pool::map`] — results in input order, panics re-raised on the
//!   caller with their **original payload** (worker id and payload text
//!   are additionally recorded, see [`Pool::last_panic`]). The caller
//!   always joins its whole batch, so task closures may borrow from the
//!   caller's stack.
//! * [`Pool::try_map`] — per-task `Result`s instead of propagation:
//!   panics are contained as [`TaskError::Panicked`], and when a
//!   watchdog deadline is configured (`VLPP_TASK_TIMEOUT_MS`), a task
//!   that runs past it is *abandoned* — its typed
//!   [`TaskError::TimedOut`] returns immediately while the straggler
//!   finishes (or hangs) harmlessly on its worker, keeping only its own
//!   heap state alive. Failed tasks are retried once after a backoff;
//!   the retry keeps the task's fault-injection sequence number, so
//!   transient injected faults succeed on retry and `:persist` faults
//!   surface as errors (see [`fault`](crate::fault-injection docs in
//!   `ROBUSTNESS.md`)).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vlpp_metrics::{Counter, Gauge};

use crate::{fault, lock};

/// A type-erased unit of work. Tasks are only `'static` from the queue's
/// point of view; [`Pool::map`] guarantees every task it pushes has run
/// to completion before it returns, so the borrows erased in
/// [`Pool::map`] never dangle. [`Pool::try_map`] tasks own their data
/// outright and need no such guarantee.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued task, tagged with the batch that owns it so helping
/// callers can pick out their own work.
struct QueuedTask {
    batch: usize,
    task: Task,
}

/// State shared between the workers and every mapping caller.
struct Shared {
    queue: Mutex<VecDeque<QueuedTask>>,
    /// Signalled when tasks are pushed or the pool shuts down.
    task_ready: Condvar,
    /// Monotonic batch-id source.
    next_batch: AtomicUsize,
    shutdown: AtomicBool,
}

thread_local! {
    /// Pool worker index of the current thread; `None` on caller threads.
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The pool worker index of the calling thread, if it is a pool worker.
fn current_worker() -> Option<usize> {
    WORKER_ID.with(|cell| cell.get())
}

/// Why a task inside a batch did not produce a value.
enum Failure {
    /// The work closure (or an injected fault) panicked.
    Panic { payload: Box<dyn Any + Send>, worker: Option<usize> },
    /// The task ran past the watchdog deadline.
    Timeout { elapsed_ms: u64, limit_ms: u64 },
}

/// Why a [`Pool::try_map`] task failed, after its retry (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked; the panic was contained at the task boundary.
    Panicked {
        /// The panic payload rendered as text.
        payload: String,
        /// The pool worker that ran the task (`None` = the caller).
        worker: Option<usize>,
    },
    /// The task exceeded the watchdog deadline and was cancelled.
    TimedOut {
        /// Measured run time when the task was given up on.
        elapsed_ms: u64,
        /// The configured deadline.
        limit_ms: u64,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { payload, worker: Some(id) } => {
                write!(f, "task panicked on worker {id}: {payload}")
            }
            TaskError::Panicked { payload, worker: None } => {
                write!(f, "task panicked: {payload}")
            }
            TaskError::TimedOut { elapsed_ms, limit_ms } => {
                write!(f, "task exceeded the {limit_ms} ms deadline (ran {elapsed_ms} ms)")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Context for the most recent panic a [`Pool::map`] re-raised — the
/// original payload crosses the unwind untouched, and this report
/// preserves the scheduling context (which item, which worker) that the
/// unwind cannot carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicReport {
    /// Input index of the panicking item.
    pub index: usize,
    /// Worker that ran it (`None` = the mapping caller's own thread).
    pub worker: Option<usize>,
    /// The payload rendered as text.
    pub payload: String,
}

/// Knobs for [`Pool::try_map_with`]. [`MapOptions::from_env`] is what
/// [`Pool::try_map`] uses; tests can pass explicit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapOptions {
    /// Watchdog deadline per task attempt; `None` disables the watchdog.
    pub timeout_ms: Option<u64>,
    /// Retry a failed task once before reporting its error.
    pub retry: bool,
    /// Sleep this long before the retry (the "backoff" in
    /// retry-once-with-backoff — gives transient conditions time to
    /// clear).
    pub backoff_ms: u64,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions { timeout_ms: None, retry: true, backoff_ms: 50 }
    }
}

impl MapOptions {
    /// Reads `VLPP_TASK_TIMEOUT_MS`, `VLPP_RETRY`, and
    /// `VLPP_RETRY_BACKOFF_MS`. Invalid values warn on stderr and fall
    /// back to the defaults (no deadline, retry once, 50 ms backoff) —
    /// a bad knob must degrade, not abort.
    pub fn from_env() -> Self {
        let mut options = MapOptions::default();
        if let Ok(raw) = std::env::var("VLPP_TASK_TIMEOUT_MS") {
            match raw.trim().parse::<u64>() {
                Ok(ms) if ms >= 1 => options.timeout_ms = Some(ms),
                _ => eprintln!(
                    "warning: ignoring invalid VLPP_TASK_TIMEOUT_MS=`{raw}` \
                     (expected an integer >= 1); watchdog disabled"
                ),
            }
        }
        if let Ok(raw) = std::env::var("VLPP_RETRY") {
            match raw.trim() {
                "0" | "false" | "off" => options.retry = false,
                "1" | "true" | "on" => options.retry = true,
                _ => eprintln!(
                    "warning: ignoring invalid VLPP_RETRY=`{raw}` (expected 0/1); retry stays on"
                ),
            }
        }
        if let Ok(raw) = std::env::var("VLPP_RETRY_BACKOFF_MS") {
            match raw.trim().parse::<u64>() {
                Ok(ms) => options.backoff_ms = ms,
                _ => eprintln!(
                    "warning: ignoring invalid VLPP_RETRY_BACKOFF_MS=`{raw}`; using {} ms",
                    options.backoff_ms
                ),
            }
        }
        options
    }
}

/// Completion tracking for one borrowed (`map`) batch of `n` tasks.
struct BatchState<R> {
    /// `slots[i]` receives item `i`'s result (or its failure).
    slots: Vec<Option<Result<R, Failure>>>,
    remaining: usize,
}

struct Batch<R> {
    state: Mutex<BatchState<R>>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

/// One slot of an owned (`try_map`) batch.
enum Slot<R> {
    /// Queued, not yet picked up.
    Pending,
    /// Executing since `started`.
    Running { started: Instant },
    /// Finished (terminal).
    Done(Result<R, Failure>),
    /// The watchdog gave up on it (terminal); the straggler may still be
    /// running and will discard its result on completion.
    Abandoned,
}

/// Completion tracking for one owned (`try_map`) batch. Heap-allocated
/// and `Arc`-shared with every task, so an abandoned straggler keeps
/// only this state alive rather than borrowing the caller's stack.
struct OwnedBatch<R> {
    state: Mutex<OwnedBatchState<R>>,
    done: Condvar,
}

struct OwnedBatchState<R> {
    slots: Vec<Slot<R>>,
    /// Slots not yet terminal (`Done` or `Abandoned`).
    remaining: usize,
}

/// The pool's process-wide instruments (see `OBSERVABILITY.md`). All
/// pools in the process share them — the registry hands out one
/// instrument per name — so they read as whole-process totals.
struct PoolMetrics {
    /// `pool.queue_depth`: queue length sampled after each batch is
    /// enqueued; its high-water mark is how full the queue ever ran.
    queue_depth: Arc<Gauge>,
    /// `pool.tasks.helped`: tasks a mapping caller ran from its own
    /// batch while waiting for it to drain.
    helped: Arc<Counter>,
    /// `pool.tasks.stolen`: tasks claimed and run by pool workers.
    stolen: Arc<Counter>,
    /// `pool.tasks.inline`: items run sequentially on the caller when a
    /// map does not distribute (single item or single-threaded pool).
    inline: Arc<Counter>,
    /// `pool.tasks.retried`: failed `try_map` tasks given their one
    /// retry.
    retried: Arc<Counter>,
    /// `pool.tasks.timed_out`: task attempts that exceeded the watchdog
    /// deadline (abandoned mid-run or rejected post-completion).
    timed_out: Arc<Counter>,
    /// `pool.tasks.sharded`: items dispatched through
    /// [`Pool::map_sharded`]'s shard-affinity grouping.
    sharded: Arc<Counter>,
}

/// A bounded work-queue executor with order-preserving parallel map,
/// panic propagation, and thread-free nesting.
///
/// # Example
///
/// ```
/// use vlpp_pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map(vec![1u64, 2, 3], |n| n * n);
/// assert_eq!(squares, vec![1, 4, 9]);
/// // Nested maps reuse the same four threads.
/// let nested = pool.map(vec![10u64, 20], |base| {
///     pool.map(vec![1u64, 2], |off| base + off)
/// });
/// assert_eq!(nested, vec![vec![11, 12], vec![21, 22]]);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    metrics: PoolMetrics,
    last_panic: Mutex<Option<PanicReport>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

/// Renders a panic payload as text (String and &str payloads verbatim,
/// anything else a placeholder).
fn payload_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Pool {
    /// Creates a pool that runs at most `threads` tasks concurrently
    /// (`threads − 1` worker threads plus the mapping caller).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            next_batch: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let metrics = PoolMetrics {
            queue_depth: vlpp_metrics::gauge("pool.queue_depth"),
            helped: vlpp_metrics::counter("pool.tasks.helped"),
            stolen: vlpp_metrics::counter("pool.tasks.stolen"),
            inline: vlpp_metrics::counter("pool.tasks.inline"),
            retried: vlpp_metrics::counter("pool.tasks.retried"),
            timed_out: vlpp_metrics::counter("pool.tasks.timed_out"),
            sharded: vlpp_metrics::counter("pool.tasks.sharded"),
        };
        let workers = (0..threads - 1)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let tasks = vlpp_metrics::counter(&format!("pool.worker.{worker:02}.tasks"));
                let stolen = Arc::clone(&metrics.stolen);
                std::thread::spawn(move || {
                    WORKER_ID.with(|cell| cell.set(Some(worker)));
                    worker_loop(&shared, &tasks, &stolen)
                })
            })
            .collect();
        Pool { shared, workers, threads, metrics, last_panic: Mutex::new(None) }
    }

    /// The process-wide pool, sized by `VLPP_THREADS` (default: the
    /// machine's available parallelism). An unparseable or zero value
    /// warns on stderr and falls back to the default.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(threads_from_env()))
    }

    /// The configured concurrency bound (workers + mapping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Context for the most recent panic [`Pool::map`] re-raised on a
    /// caller: which input index failed, on which worker, with what
    /// payload text. The unwound payload itself crosses [`Pool::map`]
    /// unmodified; this is the side channel for the context it cannot
    /// carry.
    pub fn last_panic(&self) -> Option<PanicReport> {
        lock(&self.last_panic).clone()
    }

    /// Applies `work` to every item, in parallel, returning results in
    /// input order.
    ///
    /// The calling thread participates: it runs tasks from this batch
    /// while waiting, so a single-threaded pool degrades to an ordinary
    /// sequential map and nested calls never spawn or deadlock.
    ///
    /// ```
    /// use vlpp_pool::Pool;
    ///
    /// let squares = Pool::global().map(vec![1u64, 2, 3, 4], |n| n * n);
    /// assert_eq!(squares, vec![1, 4, 9, 16]); // input order, any thread count
    /// ```
    ///
    /// # Panics
    ///
    /// If one or more tasks panic, the panic of the lowest-indexed
    /// failing item is re-raised on the caller with its **original
    /// payload** (after the whole batch has finished, so no result slot
    /// is ever abandoned mid-write). The item index, worker id, and
    /// payload text are recorded first — see [`Pool::last_panic`].
    pub fn map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let seqs: Vec<u64> = (0..n).map(|_| fault::next_seq()).collect();

        if n == 1 || self.threads == 1 {
            // Nothing to distribute: run inline. Panics are caught only
            // to record their context, then re-raised untouched.
            self.metrics.inline.add(n as u64);
            let mut results = Vec::with_capacity(n);
            for (index, (item, seq)) in items.into_iter().zip(seqs).enumerate() {
                match catch_unwind(AssertUnwindSafe(|| {
                    fault::fire(seq, 1);
                    work(item)
                })) {
                    Ok(value) => results.push(value),
                    Err(payload) => {
                        self.record_panic(index, current_worker(), &payload);
                        resume_unwind(payload);
                    }
                }
            }
            return results;
        }

        let batch_id = self.shared.next_batch.fetch_add(1, Ordering::Relaxed);
        let batch: Batch<R> = Batch {
            state: Mutex::new(BatchState { slots: (0..n).map(|_| None).collect(), remaining: n }),
            done: Condvar::new(),
        };

        {
            let work = &work;
            let batch = &batch;
            let mut queue = lock(&self.shared.queue);
            for (i, (item, seq)) in items.into_iter().zip(seqs).enumerate() {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        fault::fire(seq, 1);
                        work(item)
                    }))
                    .map_err(|payload| Failure::Panic { payload, worker: current_worker() });
                    let mut state = lock(&batch.state);
                    state.slots[i] = Some(result);
                    state.remaining -= 1;
                    if state.remaining == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: erases the borrows of `work`, `batch`, and the
                // moved `item` to 'static so the task can sit in the
                // shared queue. The help loop below does not return
                // until `remaining == 0`, i.e. until every one of these
                // tasks has finished running, so no borrow outlives this
                // call frame. Panics inside `work` are caught above and
                // still decrement `remaining`.
                let task: Task = unsafe { std::mem::transmute(task) };
                queue.push_back(QueuedTask { batch: batch_id, task });
            }
            self.metrics.queue_depth.record(queue.len() as u64);
            self.shared.task_ready.notify_all();
        }

        // Help: run this batch's tasks until all slots are filled. Tasks
        // already claimed by workers finish over there; `done` wakes us.
        loop {
            let own_task = {
                let mut queue = lock(&self.shared.queue);
                queue.iter().position(|qt| qt.batch == batch_id).and_then(|at| queue.remove(at))
            };
            match own_task {
                Some(qt) => {
                    (qt.task)();
                    self.metrics.helped.incr();
                }
                None => {
                    let state = lock(&batch.state);
                    if state.remaining == 0 {
                        break;
                    }
                    drop(batch.done.wait(state).unwrap_or_else(|e| e.into_inner()));
                }
            }
        }

        let state = batch.state.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for (index, slot) in state.slots.into_iter().enumerate() {
            match slot.expect("a completed batch has every slot filled") {
                Ok(result) => results.push(result),
                Err(Failure::Panic { payload, worker }) => {
                    if first_panic.is_none() {
                        self.record_panic(index, worker, &payload);
                        first_panic = Some(payload);
                    }
                }
                Err(Failure::Timeout { .. }) => {
                    unreachable!("map batches run without a watchdog deadline")
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }

    /// Applies `work` to every `(shard, item)` pair with **shard
    /// affinity**: items that share a shard key run sequentially, in
    /// input order, inside a single task, while distinct shards run in
    /// parallel. Results come back in input order, like [`Pool::map`].
    ///
    /// This is the dispatch primitive under `vlpp serve`: each shard
    /// owns mutable predictor state (a THB, partial-sum registers), so
    /// two records routed to the same shard must never interleave — and
    /// because the per-shard order equals the input order, the combined
    /// output is byte-identical at any `VLPP_THREADS` setting.
    ///
    /// # Panics
    ///
    /// As [`Pool::map`]: a panicking item re-raises on the caller with
    /// its original payload after the batch drains. Items queued behind
    /// the panicking item *in the same shard* never run (their shard
    /// task unwound with it).
    pub fn map_sharded<T, R, F>(&self, items: Vec<(usize, T)>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        // Group by shard key, preserving input order within each group
        // and first-appearance order across groups.
        let mut groups: Vec<(usize, Vec<(usize, T)>)> = Vec::new();
        let mut group_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (index, (shard, item)) in items.into_iter().enumerate() {
            let at = *group_of.entry(shard).or_insert_with(|| {
                groups.push((shard, Vec::new()));
                groups.len() - 1
            });
            groups[at].1.push((index, item));
        }
        self.metrics.sharded.add(n as u64);
        let per_group: Vec<Vec<(usize, R)>> = self.map(groups, |(shard, group)| {
            group.into_iter().map(|(index, item)| (index, work(shard, item))).collect()
        });
        // Scatter back to input order.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (index, result) in per_group.into_iter().flatten() {
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every input index produced a result")).collect()
    }

    fn record_panic(&self, index: usize, worker: Option<usize>, payload: &Box<dyn Any + Send>) {
        *lock(&self.last_panic) =
            Some(PanicReport { index, worker, payload: payload_text(payload.as_ref()) });
    }

    /// [`Pool::try_map_with`] under the environment's fault-tolerance
    /// knobs (`VLPP_TASK_TIMEOUT_MS`, `VLPP_RETRY`,
    /// `VLPP_RETRY_BACKOFF_MS`).
    pub fn try_map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<Result<R, TaskError>>
    where
        T: Send + Clone + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.try_map_with(items, MapOptions::from_env(), work)
    }

    /// Applies `work` to every item, in parallel, returning one
    /// `Result` per item in input order — the fault-isolating flavor of
    /// [`Pool::map`]:
    ///
    /// * a panicking task becomes [`TaskError::Panicked`] (payload
    ///   text and worker id) without unwinding into the caller or
    ///   poisoning the batch;
    /// * with a deadline set, a task running past it is **abandoned**:
    ///   its [`TaskError::TimedOut`] is reported while the straggler
    ///   finishes (or hangs) on its worker thread, keeping only its own
    ///   `Arc`-shared state alive. A task the *caller* happens to run
    ///   cannot be preempted — it is deadline-checked on completion
    ///   instead, so every over-limit attempt yields `TimedOut` either
    ///   way;
    /// * with `retry` on, each failed item is re-run once on the caller
    ///   after `backoff_ms` (the retry keeps the task's fault-injection
    ///   sequence number — transient faults pass, `:persist` faults
    ///   fail again).
    ///
    /// `'static` bounds (unlike [`Pool::map`]): abandonment means a
    /// straggler can outlive this call, so tasks must own their data —
    /// share context via `Arc`, not borrows. `T: Clone` feeds the
    /// retry; note a retried item may briefly run concurrently with its
    /// abandoned straggler, so `work` should be effect-free or
    /// idempotent (every experiment computation here is).
    pub fn try_map_with<T, R, F>(
        &self,
        items: Vec<T>,
        options: MapOptions,
        work: F,
    ) -> Vec<Result<R, TaskError>>
    where
        T: Send + Clone + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let work = Arc::new(work);
        let seqs: Vec<u64> = (0..n).map(|_| fault::next_seq()).collect();
        let retry_items: Vec<T> = if options.retry { items.clone() } else { Vec::new() };

        let mut results: Vec<Result<R, Failure>> = if n == 1 || self.threads == 1 {
            self.metrics.inline.add(n as u64);
            items
                .into_iter()
                .zip(&seqs)
                .map(|(item, &seq)| self.run_owned(&work, item, seq, 1, options.timeout_ms))
                .collect()
        } else {
            self.run_owned_batch(items, &seqs, &work, options.timeout_ms)
        };

        if options.retry {
            for i in 0..n {
                if results[i].is_err() {
                    self.metrics.retried.incr();
                    if options.backoff_ms > 0 {
                        std::thread::sleep(Duration::from_millis(options.backoff_ms));
                    }
                    results[i] = self.run_owned(
                        &work,
                        retry_items[i].clone(),
                        seqs[i],
                        2,
                        options.timeout_ms,
                    );
                }
            }
        }

        results
            .into_iter()
            .map(|result| {
                result.map_err(|failure| match failure {
                    Failure::Panic { payload, worker } => {
                        TaskError::Panicked { payload: payload_text(payload.as_ref()), worker }
                    }
                    Failure::Timeout { elapsed_ms, limit_ms } => {
                        TaskError::TimedOut { elapsed_ms, limit_ms }
                    }
                })
            })
            .collect()
    }

    /// Runs one owned task on the current thread: fault hook, panic
    /// containment, and a post-completion deadline check (the only kind
    /// possible when the task runs on the thread that would watch it).
    fn run_owned<T, R, F>(
        &self,
        work: &Arc<F>,
        item: T,
        seq: u64,
        attempt: u32,
        timeout_ms: Option<u64>,
    ) -> Result<R, Failure>
    where
        F: Fn(T) -> R,
    {
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            fault::fire(seq, attempt);
            work(item)
        })) {
            Ok(value) => {
                if let Some(limit_ms) = timeout_ms {
                    let elapsed_ms = started.elapsed().as_millis() as u64;
                    if elapsed_ms > limit_ms {
                        self.metrics.timed_out.incr();
                        return Err(Failure::Timeout { elapsed_ms, limit_ms });
                    }
                }
                Ok(value)
            }
            Err(payload) => Err(Failure::Panic { payload, worker: current_worker() }),
        }
    }

    /// Distributes owned tasks across the pool and waits with an
    /// optional watchdog. First attempt only; retries run inline in
    /// [`Pool::try_map_with`].
    fn run_owned_batch<T, R, F>(
        &self,
        items: Vec<T>,
        seqs: &[u64],
        work: &Arc<F>,
        timeout_ms: Option<u64>,
    ) -> Vec<Result<R, Failure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let batch_id = self.shared.next_batch.fetch_add(1, Ordering::Relaxed);
        let batch: Arc<OwnedBatch<R>> = Arc::new(OwnedBatch {
            state: Mutex::new(OwnedBatchState {
                slots: (0..n).map(|_| Slot::Pending).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        });
        let timed_out_counter = Arc::clone(&self.metrics.timed_out);

        {
            let mut queue = lock(&self.shared.queue);
            for (i, (item, &seq)) in items.into_iter().zip(seqs).enumerate() {
                let work = Arc::clone(work);
                let batch = Arc::clone(&batch);
                let timed_out_counter = Arc::clone(&timed_out_counter);
                // Fully owned — no lifetime erasure needed: if the
                // watchdog abandons this task, the closure's `Arc`s keep
                // the batch state and `work` alive until it finishes.
                let task: Task = Box::new(move || {
                    let started = Instant::now();
                    {
                        let mut state = lock(&batch.state);
                        if matches!(state.slots[i], Slot::Pending) {
                            state.slots[i] = Slot::Running { started };
                        }
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        fault::fire(seq, 1);
                        work(item)
                    }))
                    .map_err(|payload| Failure::Panic { payload, worker: current_worker() });
                    let outcome = match result {
                        Ok(value) => match timeout_ms {
                            Some(limit_ms) if started.elapsed().as_millis() as u64 > limit_ms => {
                                timed_out_counter.incr();
                                Err(Failure::Timeout {
                                    elapsed_ms: started.elapsed().as_millis() as u64,
                                    limit_ms,
                                })
                            }
                            _ => Ok(value),
                        },
                        Err(failure) => Err(failure),
                    };
                    let mut state = lock(&batch.state);
                    match state.slots[i] {
                        // The watchdog already reported this task; the
                        // straggler's result is discarded.
                        Slot::Abandoned => {}
                        _ => {
                            state.slots[i] = Slot::Done(outcome);
                            state.remaining -= 1;
                            if state.remaining == 0 {
                                batch.done.notify_all();
                            }
                        }
                    }
                });
                queue.push_back(QueuedTask { batch: batch_id, task });
            }
            self.metrics.queue_depth.record(queue.len() as u64);
            self.shared.task_ready.notify_all();
        }

        // Help with our own batch; between tasks, reap overdue stragglers.
        loop {
            let own_task = {
                let mut queue = lock(&self.shared.queue);
                queue.iter().position(|qt| qt.batch == batch_id).and_then(|at| queue.remove(at))
            };
            match own_task {
                Some(qt) => {
                    (qt.task)();
                    self.metrics.helped.incr();
                }
                None => {
                    let mut state = lock(&batch.state);
                    if state.remaining == 0 {
                        break;
                    }
                    match timeout_ms {
                        None => {
                            drop(batch.done.wait(state).unwrap_or_else(|e| e.into_inner()));
                        }
                        Some(limit_ms) => {
                            let poll = Duration::from_millis((limit_ms / 4).clamp(5, 50));
                            let (guard, _) = batch
                                .done
                                .wait_timeout(state, poll)
                                .unwrap_or_else(|e| e.into_inner());
                            state = guard;
                            let mut reaped = 0;
                            for slot in state.slots.iter_mut() {
                                if let Slot::Running { started } = slot {
                                    let elapsed_ms = started.elapsed().as_millis() as u64;
                                    if elapsed_ms > limit_ms {
                                        self.metrics.timed_out.incr();
                                        *slot = Slot::Abandoned;
                                        reaped += 1;
                                    }
                                }
                            }
                            state.remaining -= reaped;
                            if state.remaining == 0 {
                                break;
                            }
                        }
                    }
                }
            }
        }

        let mut state = lock(&batch.state);
        let limit_ms = timeout_ms.unwrap_or(0);
        state
            .slots
            .iter_mut()
            .map(|slot| match std::mem::replace(slot, Slot::Abandoned) {
                Slot::Done(result) => result,
                Slot::Abandoned => Err(Failure::Timeout { elapsed_ms: limit_ms, limit_ms }),
                Slot::Pending | Slot::Running { .. } => {
                    unreachable!("batch completed with a non-terminal slot")
                }
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, tasks: &Counter, stolen: &Counter) {
    loop {
        let task = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(qt) = queue.pop_front() {
                    break Some(qt.task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.task_ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => {
                task();
                tasks.incr();
                stolen.incr();
            }
            None => return,
        }
    }
}

/// Parses a `VLPP_THREADS`-style value: a positive integer, or `None`
/// for anything unusable.
pub(crate) fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse().ok().filter(|&n| n >= 1)
}

fn threads_from_env() -> usize {
    let default = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("VLPP_THREADS") {
        Err(_) => default,
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring invalid VLPP_THREADS=`{raw}` \
                 (expected an integer >= 1); using {default}"
            );
            default
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let doubled = pool.map((0u64..100).collect(), |n| n * 2);
        assert_eq!(doubled, (0u64..100).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let pool = Pool::new(3);
        let counter = AtomicU32::new(0);
        let results =
            pool.map((0..57).collect::<Vec<u32>>(), |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(results.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn single_threaded_pool_is_a_sequential_map() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = std::sync::Mutex::new(Vec::new());
        pool.map(vec![1, 2, 3], |n| order.lock().unwrap().push(n));
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3], "threads=1 runs in input order");
    }

    #[test]
    fn empty_and_singleton_maps_work() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |n| n), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7], |n| n + 1), vec![8]);
    }

    #[test]
    fn nested_maps_complete_without_extra_threads() {
        let pool = Pool::new(2);
        let grids = pool.map(vec![0u64, 10, 20, 30], |base| {
            pool.map(vec![1u64, 2, 3], |off| pool.map(vec![100u64], |deep| base + off + deep)[0])
        });
        assert_eq!(grids[3], vec![131, 132, 133]);
        assert_eq!(grids.len(), 4);
    }

    #[test]
    fn panic_propagates_with_lowest_index_payload() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16).collect::<Vec<u32>>(), |n| {
                if n % 2 == 1 {
                    panic!("boom at {n}");
                }
                n
            })
        }));
        let payload = result.expect_err("a panicking task must fail the map");
        let message = payload.downcast_ref::<String>().expect("panic message");
        assert_eq!(message, "boom at 1", "the lowest failing index wins");
        let report = pool.last_panic().expect("panic context is recorded");
        assert_eq!(report.index, 1);
        assert_eq!(report.payload, "boom at 1");
    }

    #[test]
    fn map_preserves_non_string_panic_payloads() {
        // Regression test: the unwinding path must hand the caller the
        // *original* payload object, not a rendering of it.
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0u32, 1, 2, 3], |n| {
                if n == 2 {
                    std::panic::panic_any(Box::new(0xdead_beefu64));
                }
                n
            })
        }));
        let payload = result.expect_err("panicking task fails the map");
        let boxed = payload
            .downcast_ref::<Box<u64>>()
            .expect("original typed payload survives propagation");
        assert_eq!(**boxed, 0xdead_beef);
        let report = pool.last_panic().expect("context recorded");
        assert_eq!(report.index, 2);
        assert_eq!(report.payload, "<non-string panic payload>");
        // Distributed batches run on workers 0..=2 or the caller.
        if let Some(worker) = report.worker {
            assert!(worker < 3, "worker id {worker} out of range");
        }
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = Pool::new(2);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0], |_| panic!("first batch dies"))
        }));
        assert_eq!(pool.map(vec![1, 2], |n| n * 3), vec![3, 6]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |n: u64| -> u64 {
            // Deterministic but order-sensitive-looking work.
            (0..n % 997).fold(n, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let items: Vec<u64> = (0..200).map(|i| i * 7919).collect();
        let one = Pool::new(1).map(items.clone(), work);
        let eight = Pool::new(8).map(items, work);
        assert_eq!(one, eight);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("eight"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_pool_is_rejected() {
        Pool::new(0);
    }

    const NO_RETRY: MapOptions = MapOptions { timeout_ms: None, retry: false, backoff_ms: 0 };

    #[test]
    fn try_map_contains_panics_per_task() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let results = pool.try_map_with((0..8).collect::<Vec<u32>>(), NO_RETRY, |n| {
                if n == 3 {
                    panic!("isolated boom {n}");
                }
                n * 10
            });
            assert_eq!(results.len(), 8);
            for (i, result) in results.iter().enumerate() {
                if i == 3 {
                    match result {
                        Err(TaskError::Panicked { payload, .. }) => {
                            assert_eq!(payload, "isolated boom 3")
                        }
                        other => panic!("expected a contained panic, got {other:?}"),
                    }
                } else {
                    assert_eq!(*result.as_ref().unwrap(), (i as u32) * 10);
                }
            }
        }
    }

    #[test]
    fn try_map_retries_transient_failures_once() {
        let pool = Pool::new(1);
        let attempts = AtomicU32::new(0);
        let options = MapOptions { timeout_ms: None, retry: true, backoff_ms: 0 };
        let results = pool.try_map_with(vec![7u32], options, move |n| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            n
        });
        assert_eq!(results, vec![Ok(7)]);
    }

    #[test]
    fn try_map_reports_persistent_failures_after_retry() {
        let pool = Pool::new(1);
        let options = MapOptions { timeout_ms: None, retry: true, backoff_ms: 0 };
        let results = pool.try_map_with(vec![1u32], options, |_| -> u32 { panic!("always fails") });
        assert!(
            matches!(&results[0], Err(TaskError::Panicked { payload, .. }) if payload == "always fails")
        );
    }

    #[test]
    fn try_map_times_out_overdue_tasks_and_keeps_the_rest() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let options = MapOptions { timeout_ms: Some(40), retry: false, backoff_ms: 0 };
            let results = pool.try_map_with(vec![0u64, 250, 0, 0], options, |sleep_ms| {
                std::thread::sleep(Duration::from_millis(sleep_ms));
                sleep_ms
            });
            assert_eq!(results.len(), 4);
            for (i, result) in results.iter().enumerate() {
                if i == 1 {
                    match result {
                        Err(TaskError::TimedOut { limit_ms: 40, .. }) => {}
                        other => panic!("threads={threads}: expected timeout, got {other:?}"),
                    }
                } else {
                    assert_eq!(*result.as_ref().unwrap(), 0, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_map_timeout_retry_succeeds_when_the_stall_clears() {
        let pool = Pool::new(1);
        let attempts = AtomicU32::new(0);
        let options = MapOptions { timeout_ms: Some(40), retry: true, backoff_ms: 0 };
        let results = pool.try_map_with(vec![5u32], options, move |n| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                std::thread::sleep(Duration::from_millis(120));
            }
            n
        });
        assert_eq!(results, vec![Ok(5)]);
    }

    #[test]
    fn try_map_preserves_order_and_matches_map() {
        let pool = Pool::new(4);
        let via_try: Vec<u64> = pool
            .try_map_with((0u64..100).collect(), NO_RETRY, |n| n * 3)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(via_try, pool.map((0u64..100).collect(), |n| n * 3));
    }

    #[test]
    fn map_sharded_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<(usize, u64)> = (0..100).map(|i| (i % 7, i as u64)).collect();
        let results = pool.map_sharded(items, |shard, n| n * 10 + shard as u64);
        let expected: Vec<u64> = (0..100u64).map(|i| i * 10 + i % 7).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn map_sharded_serializes_within_a_shard() {
        // Items of one shard must run sequentially in input order even
        // while other shards run in parallel: record the per-shard
        // arrival order and require it to equal the input order.
        let pool = Pool::new(8);
        let shards = 4usize;
        let orders: Vec<Mutex<Vec<u64>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
        let items: Vec<(usize, u64)> =
            (0..200u64).map(|i| ((i % shards as u64) as usize, i)).collect();
        pool.map_sharded(items, |shard, i| {
            orders[shard].lock().unwrap().push(i);
        });
        for (shard, order) in orders.iter().enumerate() {
            let seen = order.lock().unwrap().clone();
            let expected: Vec<u64> =
                (0..200u64).filter(|i| (i % shards as u64) as usize == shard).collect();
            assert_eq!(seen, expected, "shard {shard} ran out of order");
        }
    }

    #[test]
    fn map_sharded_matches_sequential_for_stateful_shards() {
        // The whole point: per-shard mutable state evolves identically
        // at any thread count. Model each shard as a running hash.
        let run = |threads: usize| -> Vec<u64> {
            let pool = Pool::new(threads);
            let states: Vec<Mutex<u64>> = (0..5).map(|_| Mutex::new(0)).collect();
            let items: Vec<(usize, u64)> =
                (0..300u64).map(|i| ((i * 31 % 5) as usize, i)).collect();
            pool.map_sharded(items, |shard, i| {
                let mut state = states[shard].lock().unwrap();
                *state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
                *state
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn map_sharded_handles_empty_and_single_shard() {
        let pool = Pool::new(4);
        assert_eq!(pool.map_sharded(Vec::<(usize, u32)>::new(), |_, n| n), Vec::<u32>::new());
        let all_one: Vec<(usize, u32)> = (0..10).map(|i| (3usize, i)).collect();
        assert_eq!(pool.map_sharded(all_one, |_, n| n + 1), (1..11).collect::<Vec<u32>>());
    }

    #[test]
    fn map_sharded_propagates_panics() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_sharded(vec![(0usize, 1u32), (1, 2), (0, 3)], |_, n| {
                if n == 2 {
                    panic!("shard boom");
                }
                n
            })
        }));
        let payload = result.expect_err("panicking shard fails the map");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"shard boom"));
        // The pool survives for the next batch.
        assert_eq!(pool.map_sharded(vec![(0usize, 7u32)], |_, n| n), vec![7]);
    }

    #[test]
    fn map_options_default_is_retry_without_deadline() {
        let options = MapOptions::default();
        assert_eq!(options.timeout_ms, None);
        assert!(options.retry);
        assert!(options.backoff_ms > 0);
    }
}
