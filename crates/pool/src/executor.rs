//! The bounded work-queue executor.
//!
//! A [`Pool`] of `threads` is `threads − 1` long-lived workers plus the
//! thread that calls [`Pool::map`]: the caller pushes its batch onto the
//! shared queue, then *helps* — it pops and runs tasks from its own
//! batch until every slot is filled. Nested maps (a task calling
//! [`Pool::map`] again) therefore cost zero extra threads: the nested
//! caller just becomes a helper for its own sub-batch, and the total
//! thread count stays at the configured bound at any nesting depth.
//!
//! Helpers only run tasks from their *own* batch. This keeps a blocked
//! computation from re-entering itself: if a helper could steal
//! arbitrary work, a task that initializes a [`Memo`](crate::Memo) key
//! could steal another task that waits on that same key — on the same
//! stack — and deadlock. Idle *workers* take any task from any batch,
//! so cross-batch parallelism is still fully exploited.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use vlpp_metrics::{Counter, Gauge};

use crate::lock;

/// A type-erased unit of work. Tasks are only `'static` from the queue's
/// point of view; [`Pool::map`] guarantees every task it pushes has run
/// to completion before it returns, so the borrows erased in
/// [`Pool::map`] never dangle.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued task, tagged with the batch that owns it so helping
/// callers can pick out their own work.
struct QueuedTask {
    batch: usize,
    task: Task,
}

/// State shared between the workers and every mapping caller.
struct Shared {
    queue: Mutex<VecDeque<QueuedTask>>,
    /// Signalled when tasks are pushed or the pool shuts down.
    task_ready: Condvar,
    /// Monotonic batch-id source.
    next_batch: AtomicUsize,
    shutdown: AtomicBool,
}

/// Completion tracking for one `map` call's batch of `n` tasks.
struct BatchState<R> {
    /// `slots[i]` receives item `i`'s result (or its panic payload).
    slots: Vec<Option<std::thread::Result<R>>>,
    remaining: usize,
}

struct Batch<R> {
    state: Mutex<BatchState<R>>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

/// The pool's process-wide instruments (see `OBSERVABILITY.md`). All
/// pools in the process share them — the registry hands out one
/// instrument per name — so they read as whole-process totals.
struct PoolMetrics {
    /// `pool.queue_depth`: queue length sampled after each batch is
    /// enqueued; its high-water mark is how full the queue ever ran.
    queue_depth: Arc<Gauge>,
    /// `pool.tasks.helped`: tasks a mapping caller ran from its own
    /// batch while waiting for it to drain.
    helped: Arc<Counter>,
    /// `pool.tasks.stolen`: tasks claimed and run by pool workers.
    stolen: Arc<Counter>,
    /// `pool.tasks.inline`: items run sequentially on the caller when a
    /// map does not distribute (single item or single-threaded pool).
    inline: Arc<Counter>,
}

/// A bounded work-queue executor with order-preserving parallel map,
/// panic propagation, and thread-free nesting.
///
/// # Example
///
/// ```
/// use vlpp_pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map(vec![1u64, 2, 3], |n| n * n);
/// assert_eq!(squares, vec![1, 4, 9]);
/// // Nested maps reuse the same four threads.
/// let nested = pool.map(vec![10u64, 20], |base| {
///     pool.map(vec![1u64, 2], |off| base + off)
/// });
/// assert_eq!(nested, vec![vec![11, 12], vec![21, 22]]);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    metrics: PoolMetrics,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

impl Pool {
    /// Creates a pool that runs at most `threads` tasks concurrently
    /// (`threads − 1` worker threads plus the mapping caller).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            next_batch: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let metrics = PoolMetrics {
            queue_depth: vlpp_metrics::gauge("pool.queue_depth"),
            helped: vlpp_metrics::counter("pool.tasks.helped"),
            stolen: vlpp_metrics::counter("pool.tasks.stolen"),
            inline: vlpp_metrics::counter("pool.tasks.inline"),
        };
        let workers = (0..threads - 1)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let tasks = vlpp_metrics::counter(&format!("pool.worker.{worker:02}.tasks"));
                let stolen = Arc::clone(&metrics.stolen);
                std::thread::spawn(move || worker_loop(&shared, &tasks, &stolen))
            })
            .collect();
        Pool { shared, workers, threads, metrics }
    }

    /// The process-wide pool, sized by `VLPP_THREADS` (default: the
    /// machine's available parallelism). An unparseable or zero value
    /// warns on stderr and falls back to the default.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(threads_from_env()))
    }

    /// The configured concurrency bound (workers + mapping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `work` to every item, in parallel, returning results in
    /// input order.
    ///
    /// The calling thread participates: it runs tasks from this batch
    /// while waiting, so a single-threaded pool degrades to an ordinary
    /// sequential map and nested calls never spawn or deadlock.
    ///
    /// # Panics
    ///
    /// If one or more tasks panic, the panic of the lowest-indexed
    /// failing item is re-raised on the caller (after the whole batch
    /// has finished, so no result slot is ever abandoned mid-write).
    pub fn map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.threads == 1 {
            // Nothing to distribute: run inline, panics propagate as-is.
            self.metrics.inline.add(n as u64);
            return items.into_iter().map(work).collect();
        }

        let batch_id = self.shared.next_batch.fetch_add(1, Ordering::Relaxed);
        let batch: Batch<R> = Batch {
            state: Mutex::new(BatchState {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        };

        {
            let work = &work;
            let batch = &batch;
            let mut queue = lock(&self.shared.queue);
            for (i, item) in items.into_iter().enumerate() {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| work(item)));
                    let mut state = lock(&batch.state);
                    state.slots[i] = Some(result);
                    state.remaining -= 1;
                    if state.remaining == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: erases the borrows of `work`, `batch`, and the
                // moved `item` to 'static so the task can sit in the
                // shared queue. The help loop below does not return
                // until `remaining == 0`, i.e. until every one of these
                // tasks has finished running, so no borrow outlives this
                // call frame. Panics inside `work` are caught above and
                // still decrement `remaining`.
                let task: Task = unsafe { std::mem::transmute(task) };
                queue.push_back(QueuedTask { batch: batch_id, task });
            }
            self.metrics.queue_depth.record(queue.len() as u64);
            self.shared.task_ready.notify_all();
        }

        // Help: run this batch's tasks until all slots are filled. Tasks
        // already claimed by workers finish over there; `done` wakes us.
        loop {
            let own_task = {
                let mut queue = lock(&self.shared.queue);
                queue
                    .iter()
                    .position(|qt| qt.batch == batch_id)
                    .and_then(|at| queue.remove(at))
            };
            match own_task {
                Some(qt) => {
                    (qt.task)();
                    self.metrics.helped.incr();
                }
                None => {
                    let state = lock(&batch.state);
                    if state.remaining == 0 {
                        break;
                    }
                    drop(batch.done.wait(state).unwrap_or_else(|e| e.into_inner()));
                }
            }
        }

        let state = batch.state.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in state.slots {
            match slot.expect("a completed batch has every slot filled") {
                Ok(result) => results.push(result),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, tasks: &Counter, stolen: &Counter) {
    loop {
        let task = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(qt) = queue.pop_front() {
                    break Some(qt.task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.task_ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => {
                task();
                tasks.incr();
                stolen.incr();
            }
            None => return,
        }
    }
}

/// Parses a `VLPP_THREADS`-style value: a positive integer, or `None`
/// for anything unusable.
pub(crate) fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse().ok().filter(|&n| n >= 1)
}

fn threads_from_env() -> usize {
    let default = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("VLPP_THREADS") {
        Err(_) => default,
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring invalid VLPP_THREADS=`{raw}` \
                 (expected an integer >= 1); using {default}"
            );
            default
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let doubled = pool.map((0u64..100).collect(), |n| n * 2);
        assert_eq!(doubled, (0u64..100).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let pool = Pool::new(3);
        let counter = AtomicU32::new(0);
        let results = pool.map((0..57).collect::<Vec<u32>>(), |_| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(results.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn single_threaded_pool_is_a_sequential_map() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = std::sync::Mutex::new(Vec::new());
        pool.map(vec![1, 2, 3], |n| order.lock().unwrap().push(n));
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3], "threads=1 runs in input order");
    }

    #[test]
    fn empty_and_singleton_maps_work() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |n| n), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7], |n| n + 1), vec![8]);
    }

    #[test]
    fn nested_maps_complete_without_extra_threads() {
        let pool = Pool::new(2);
        let grids = pool.map(vec![0u64, 10, 20, 30], |base| {
            pool.map(vec![1u64, 2, 3], |off| {
                pool.map(vec![100u64], |deep| base + off + deep)[0]
            })
        });
        assert_eq!(grids[3], vec![131, 132, 133]);
        assert_eq!(grids.len(), 4);
    }

    #[test]
    fn panic_propagates_with_lowest_index_payload() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16).collect::<Vec<u32>>(), |n| {
                if n % 2 == 1 {
                    panic!("boom at {n}");
                }
                n
            })
        }));
        let payload = result.expect_err("a panicking task must fail the map");
        let message = payload.downcast_ref::<String>().expect("panic message");
        assert_eq!(message, "boom at 1", "the lowest failing index wins");
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = Pool::new(2);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0], |_| panic!("first batch dies"))
        }));
        assert_eq!(pool.map(vec![1, 2], |n| n * 3), vec![3, 6]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |n: u64| -> u64 {
            // Deterministic but order-sensitive-looking work.
            (0..n % 997).fold(n, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let items: Vec<u64> = (0..200).map(|i| i * 7919).collect();
        let one = Pool::new(1).map(items.clone(), work);
        let eight = Pool::new(8).map(items, work);
        assert_eq!(one, eight);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("eight"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_pool_is_rejected() {
        Pool::new(0);
    }
}
