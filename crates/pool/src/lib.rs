//! # vlpp-pool — bounded deterministic execution for the experiment engine
//!
//! The experiment engine is embarrassingly parallel at three levels
//! (experiments, benchmarks within an experiment, profile sweeps within
//! a benchmark), and before this crate each level spawned its own
//! unbounded `std::thread::scope` workers: a comparison worker that
//! called into the Table-2 machinery would spawn 16 more threads, and a
//! full `vlpp all` run oversubscribed the machine by an order of
//! magnitude. This crate provides the one shared execution layer they
//! all sit on now:
//!
//! * [`Pool`] — a bounded work-queue executor. Worker count comes from
//!   `VLPP_THREADS` (invalid values warn and fall back to
//!   `available_parallelism`). [`Pool::map`] preserves input order,
//!   propagates panics, and lets the calling thread *help* execute its
//!   own batch, so nested maps reuse the same bounded thread set
//!   instead of spawning — total threads never exceed the configured
//!   count, at any nesting depth.
//! * [`Pool::try_map`] — the fault-isolating flavor: one `Result` per
//!   item, panics contained as [`TaskError::Panicked`], a per-task
//!   watchdog deadline (`VLPP_TASK_TIMEOUT_MS`) that abandons overdue
//!   tasks as [`TaskError::TimedOut`], and a single retry with backoff
//!   (`VLPP_RETRY`, `VLPP_RETRY_BACKOFF_MS`). `ROBUSTNESS.md` at the
//!   repository root describes the semantics and the `VLPP_FAULT`
//!   injection hook used to test them.
//! * [`Memo`] — a compute-once-per-key concurrent memo table. Two
//!   threads that miss on the same key no longer both run a minutes-long
//!   computation with one result thrown away: the first computes, the
//!   second blocks and shares the winner's `Arc`. Distinct keys still
//!   compute in parallel. A computation that panics is evicted, never
//!   cached, so a poisoned key heals on the next request.
//!
//! Determinism: a `map`'s results are placed by input index and memoized
//! values are computed by pure functions of their key, so every
//! experiment output is byte-identical at any `VLPP_THREADS` setting —
//! the integration suite asserts exactly that.
//!
//! ## Observability
//!
//! The pool reports into the process-wide `vlpp-metrics` registry
//! (lock-free atomics — metrics never perturb scheduling or output):
//! the work-queue depth and its high-water mark (`pool.queue_depth`),
//! how tasks were executed (`pool.tasks.stolen` by workers,
//! `pool.tasks.helped` by mapping callers, `pool.tasks.inline` when a
//! map degrades to sequential), per-worker task counts
//! (`pool.worker.NN.tasks`), and — for [`Memo`]s created with
//! [`Memo::named`] — hit/miss counts (`pool.memo.<name>.{hits,misses}`).
//! `OBSERVABILITY.md` at the repository root catalogs every metric.
//!
//! This crate depends only on in-tree crates (`vlpp-metrics`, which
//! itself uses only `vlpp-trace`'s JSON tree), so the tree keeps
//! building offline.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
mod fault;
mod memo;

pub use executor::{MapOptions, PanicReport, Pool, TaskError};
pub use memo::Memo;

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, ignoring poisoning: every critical section in this
/// crate is a handful of panic-free bookkeeping statements, and user
/// panics are caught before they can poison anything.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
