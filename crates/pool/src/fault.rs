//! Deterministic, env-driven fault injection — the test-only hook the
//! fault-injection harness (`vlpp-check`'s `FaultPlan` and
//! `tests/integration_faults.rs`) drives to prove the stack degrades
//! gracefully instead of aborting.
//!
//! The hook is armed by the `VLPP_FAULT` environment variable and is
//! completely inert (one relaxed atomic increment per task) when unset.
//! Grammar:
//!
//! ```text
//! VLPP_FAULT=panic@N            panic task N's first attempt only
//! VLPP_FAULT=panic@N:persist    panic every attempt of task N
//! VLPP_FAULT=stall@N:MS         stall task N's first attempt for MS ms
//! VLPP_FAULT=stall@N:MS:persist stall every attempt of task N
//! ```
//!
//! `N` is the global task sequence number: every task submitted to any
//! [`Pool`](crate::Pool) map draws the next number *at submission, in
//! input order*, so with `VLPP_THREADS=1` the numbering — and therefore
//! the injected fault's landing site — is identical run after run. A
//! retried task keeps its original sequence number, which is what makes
//! the `persist` distinction meaningful: a plain fault is *transient*
//! (the retry succeeds), a `:persist` fault is *permanent* (the retry
//! fails too and the typed error surfaces to the caller).
//!
//! `VLPP_FAULT` may carry a comma-separated list; this hook consumes
//! the first non-`net*` item. Items whose kind starts with `net`
//! (`netdrop@N`, `netstall@N:MS`, `nettrunc@N:BYTES`) are *network*
//! faults owned by the frame layer in `vlpp-trace` and are silently
//! skipped here, exactly as the frame layer skips `panic`/`stall`.
//!
//! Every fired fault increments the `pool.faults_injected` counter. An
//! unparseable `VLPP_FAULT` warns on stderr and injects nothing — the
//! fault harness must never itself be a crash vector.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A parsed `VLPP_FAULT` plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultSpec {
    /// Panic when the task with this sequence number runs.
    Panic {
        /// Target task sequence number.
        at: u64,
        /// Fire on every attempt (true) or only the first (false).
        persist: bool,
    },
    /// Sleep `ms` milliseconds inside the target task.
    Stall {
        /// Target task sequence number.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
        /// Fire on every attempt (true) or only the first (false).
        persist: bool,
    },
}

/// Parses the `VLPP_FAULT` grammar. Returns `Err` with a diagnostic for
/// anything malformed.
pub(crate) fn parse_fault(value: &str) -> Result<FaultSpec, String> {
    let value = value.trim();
    let (kind, rest) = value
        .split_once('@')
        .ok_or_else(|| format!("`{value}`: expected `panic@N` or `stall@N:MS`"))?;
    let mut parts = rest.split(':');
    let at = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("`{value}`: task number must be a non-negative integer"))?;
    match kind {
        "panic" => {
            let persist = match parts.next() {
                None => false,
                Some("persist") => true,
                Some(other) => return Err(format!("`{value}`: unknown modifier `{other}`")),
            };
            if parts.next().is_some() {
                return Err(format!("`{value}`: trailing fields"));
            }
            Ok(FaultSpec::Panic { at, persist })
        }
        "stall" => {
            let ms = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("`{value}`: stall needs a duration, `stall@N:MS`"))?;
            let persist = match parts.next() {
                None => false,
                Some("persist") => true,
                Some(other) => return Err(format!("`{value}`: unknown modifier `{other}`")),
            };
            if parts.next().is_some() {
                return Err(format!("`{value}`: trailing fields"));
            }
            Ok(FaultSpec::Stall { at, ms, persist })
        }
        other => Err(format!("`{value}`: unknown fault kind `{other}`")),
    }
}

/// Picks this hook's item out of a (possibly comma-separated)
/// `VLPP_FAULT` value: the first item whose kind does not start with
/// `net`. Network faults belong to the frame layer in `vlpp-trace`.
pub(crate) fn task_level_item(raw: &str) -> Option<String> {
    raw.split(',')
        .map(str::trim)
        .find(|item| !item.is_empty() && !item.starts_with("net"))
        .map(str::to_string)
}

fn armed_spec() -> Option<FaultSpec> {
    static SPEC: OnceLock<Option<FaultSpec>> = OnceLock::new();
    *SPEC.get_or_init(|| match std::env::var("VLPP_FAULT") {
        Err(_) => None,
        Ok(raw) => match task_level_item(&raw) {
            None => None,
            Some(item) => match parse_fault(&item) {
                Ok(spec) => Some(spec),
                Err(message) => {
                    eprintln!("warning: ignoring invalid VLPP_FAULT: {message}");
                    None
                }
            },
        },
    })
}

/// Draws the next global task sequence number. Called once per submitted
/// task, in input order, so numbering is deterministic at
/// `VLPP_THREADS=1`.
pub(crate) fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Fires the armed fault if `seq`/`attempt` match it. Called by the
/// executor immediately before running a task's work closure; a panic
/// raised here is indistinguishable from the task itself panicking,
/// which is exactly the point.
pub(crate) fn fire(seq: u64, attempt: u32) {
    let Some(spec) = armed_spec() else { return };
    match spec {
        FaultSpec::Panic { at, persist } if at == seq && (persist || attempt == 1) => {
            vlpp_metrics::counter("pool.faults_injected").incr();
            panic!("injected fault: panic in task {seq} (attempt {attempt})");
        }
        FaultSpec::Stall { at, ms, persist } if at == seq && (persist || attempt == 1) => {
            vlpp_metrics::counter("pool.faults_injected").incr();
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        assert_eq!(parse_fault("panic@3"), Ok(FaultSpec::Panic { at: 3, persist: false }));
        assert_eq!(parse_fault("panic@0:persist"), Ok(FaultSpec::Panic { at: 0, persist: true }));
        assert_eq!(
            parse_fault("stall@7:250"),
            Ok(FaultSpec::Stall { at: 7, ms: 250, persist: false })
        );
        assert_eq!(
            parse_fault(" stall@7:250:persist "),
            Ok(FaultSpec::Stall { at: 7, ms: 250, persist: true })
        );
    }

    #[test]
    fn rejects_malformed_plans_with_diagnostics() {
        for bad in [
            "",
            "panic",
            "panic@",
            "panic@x",
            "panic@3:often",
            "stall@3",
            "stall@3:x",
            "stall@3:10:often",
            "stall@3:10:persist:extra",
            "fuzz@1",
            "panic@1:persist:x",
        ] {
            let err = parse_fault(bad).unwrap_err();
            assert!(err.contains('`'), "diagnostic for `{bad}` should quote the input: {err}");
        }
    }

    #[test]
    fn network_fault_items_belong_to_the_frame_layer() {
        // Pure network plans leave this hook unarmed, silently.
        assert_eq!(task_level_item("netdrop@3"), None);
        assert_eq!(task_level_item("netstall@2:50,nettrunc@4:10"), None);
        // Mixed lists hand this hook its own first item.
        assert_eq!(task_level_item("netdrop@3,panic@2").as_deref(), Some("panic@2"));
        assert_eq!(task_level_item(" stall@1:5 ,netdrop@3").as_deref(), Some("stall@1:5"));
        // Garbage that is not a network kind still reaches the strict
        // parser and keeps its diagnostic.
        assert_eq!(task_level_item("fuzz@1").as_deref(), Some("fuzz@1"));
        assert!(parse_fault("fuzz@1").is_err());
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let a = next_seq();
        let b = next_seq();
        assert!(b > a);
    }
}
