//! Compute-once-per-key concurrent memoization.
//!
//! The experiment engine's caches (traces, profile reports, Table-2
//! fixed lengths) used to be check-then-insert maps: two workers that
//! missed on the same key both ran the computation and the loser's
//! result was thrown away. [`Memo`] closes that race — each key gets a
//! [`OnceLock`] cell, so exactly one caller computes while concurrent
//! callers for the *same* key block and share the winner's `Arc`, and
//! callers for *different* keys compute in parallel.

use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use vlpp_metrics::Counter;

use crate::lock;

/// Instruments for a [`Memo`] created with [`Memo::named`].
struct MemoMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evicted: Arc<Counter>,
}

/// A concurrent, compute-once-per-key memo table.
///
/// Values are returned as [`Arc`]s so large artifacts (multi-million
/// branch traces, profile reports) are shared rather than cloned.
///
/// The map lock is held only to look up the key's cell, never during
/// computation, so distinct keys never serialize each other. A
/// computation must not recursively request its own key (the same
/// constraint as [`OnceLock::get_or_init`]).
///
/// A computation that panics is **evicted, not cached**: the poisoned
/// cell is removed from the table before the panic is re-raised, so no
/// later caller can inherit a half-initialized entry, and the next
/// request for that key computes from scratch. Named memos count these
/// as `pool.memo.<name>.evicted`.
///
/// # Example
///
/// ```
/// use vlpp_pool::Memo;
///
/// let memo: Memo<u32, String> = Memo::new();
/// let a = memo.get_or_compute(7, || "seven".to_string());
/// let b = memo.get_or_compute(7, || unreachable!("computed once"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
pub struct Memo<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
    metrics: Option<MemoMetrics>,
}

impl<K, V> std::fmt::Debug for Memo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo").field("keys", &lock(&self.cells).len()).finish()
    }
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    /// Creates an empty memo table.
    pub fn new() -> Self {
        Memo { cells: Mutex::new(HashMap::new()), metrics: None }
    }

    /// Creates an empty memo table that reports its hit/miss counts as
    /// the process-wide metrics `pool.memo.<name>.hits` and
    /// `pool.memo.<name>.misses` (see `OBSERVABILITY.md`).
    ///
    /// A *hit* is a request whose value had already finished computing;
    /// a *miss* either computes the value or blocks on the concurrent
    /// computation that will.
    ///
    /// # Example
    ///
    /// ```
    /// use vlpp_pool::Memo;
    ///
    /// let memo: Memo<u32, u32> = Memo::named("doctest_squares");
    /// memo.get_or_compute(3, || 9); // miss
    /// memo.get_or_compute(3, || unreachable!()); // hit
    /// let hits = vlpp_metrics::counter("pool.memo.doctest_squares.hits");
    /// assert_eq!(hits.get(), 1);
    /// ```
    pub fn named(name: &str) -> Self {
        Memo {
            cells: Mutex::new(HashMap::new()),
            metrics: Some(MemoMetrics {
                hits: vlpp_metrics::counter(&format!("pool.memo.{name}.hits")),
                misses: vlpp_metrics::counter(&format!("pool.memo.{name}.misses")),
                evicted: vlpp_metrics::counter(&format!("pool.memo.{name}.evicted")),
            }),
        }
    }

    /// Returns the memoized value for `key`, computing it with `compute`
    /// on the first request. Concurrent requests for the same key block
    /// until the one computation finishes and then share its result.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut cells = lock(&self.cells);
            Arc::clone(cells.entry(key.clone()).or_default())
        };
        if let Some(metrics) = &self.metrics {
            if cell.get().is_some() {
                metrics.hits.incr();
            } else {
                metrics.misses.incr();
            }
        }
        match catch_unwind(AssertUnwindSafe(|| {
            Arc::clone(cell.get_or_init(|| Arc::new(compute())))
        })) {
            Ok(value) => value,
            Err(payload) => {
                // Evict the poisoned cell so no later caller inherits it.
                // Guard on pointer identity and emptiness: a concurrent
                // caller may have replaced the entry or finished its own
                // successful computation in the meantime.
                let mut cells = lock(&self.cells);
                let stale = cells
                    .get(&key)
                    .is_some_and(|current| Arc::ptr_eq(current, &cell) && cell.get().is_none());
                if stale {
                    cells.remove(&key);
                    if let Some(metrics) = &self.metrics {
                        metrics.evicted.incr();
                    }
                }
                resume_unwind(payload)
            }
        }
    }

    /// The memoized value for `key`, if it has finished computing.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let cell = Arc::clone(lock(&self.cells).get(key)?);
        cell.get().map(Arc::clone)
    }

    /// Number of keys with a finished value.
    pub fn len(&self) -> usize {
        lock(&self.cells).values().filter(|cell| cell.get().is_some()).count()
    }

    /// Whether no value has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Barrier;

    #[test]
    fn computes_each_key_exactly_once_under_contention() {
        let memo: Memo<u32, u32> = Memo::new();
        let computations = AtomicU32::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    for key in 0..16 {
                        let value = memo.get_or_compute(key, || {
                            computations.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            key * 10
                        });
                        assert_eq!(*value, key * 10);
                    }
                });
            }
        });
        assert_eq!(
            computations.load(Ordering::Relaxed),
            16,
            "every concurrent miss on a key must share one computation"
        );
        assert_eq!(memo.len(), 16);
    }

    #[test]
    fn same_key_returns_the_same_arc() {
        let memo: Memo<&'static str, Vec<u8>> = Memo::new();
        let first = memo.get_or_compute("k", || vec![1, 2, 3]);
        let second = memo.get_or_compute("k", || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn panicked_computation_leaves_the_key_retryable() {
        let memo: Memo<u8, u8> = Memo::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute(1, || panic!("first try dies"))
        }));
        assert!(attempt.is_err());
        assert_eq!(memo.get(&1), None);
        assert_eq!(*memo.get_or_compute(1, || 42), 42);
    }

    #[test]
    fn panicked_computation_is_evicted_and_counted() {
        let memo: Memo<u8, u8> = Memo::named("unit_test_evict");
        let evicted = vlpp_metrics::counter("pool.memo.unit_test_evict.evicted");
        let before = evicted.get();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute(9, || panic!("poisoned"))
        }));
        assert!(attempt.is_err());
        assert_eq!(evicted.get(), before + 1, "the poisoned cell is evicted");
        // The key recomputes from scratch and caches normally afterwards.
        assert_eq!(*memo.get_or_compute(9, || 81), 81);
        assert_eq!(*memo.get_or_compute(9, || unreachable!("cached")), 81);
        assert_eq!(evicted.get(), before + 1, "successful recompute evicts nothing");
    }

    #[test]
    fn named_memo_counts_hits_and_misses() {
        let memo: Memo<u8, u8> = Memo::named("unit_test_memo");
        let hits = vlpp_metrics::counter("pool.memo.unit_test_memo.hits");
        let misses = vlpp_metrics::counter("pool.memo.unit_test_memo.misses");
        memo.get_or_compute(1, || 10);
        memo.get_or_compute(2, || 20);
        memo.get_or_compute(1, || unreachable!("memoized"));
        assert_eq!(hits.get(), 1);
        assert_eq!(misses.get(), 2);
    }

    #[test]
    fn get_reports_only_finished_values() {
        let memo: Memo<u8, u8> = Memo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.get(&3), None);
        memo.get_or_compute(3, || 9);
        assert_eq!(memo.get(&3).as_deref(), Some(&9));
        assert!(!memo.is_empty());
    }
}
