//! Property tests for the log-bucketed [`Histogram`] and its bucket
//! boundary function.

use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
use vlpp_metrics::{bucket_bounds, bucket_index, Histogram, BUCKET_COUNT};

/// Bucket boundaries are monotone, adjacent, and cover all of `u64`:
/// bucket 0 is exactly `{0}`, each later bucket starts one past the
/// previous bucket's end, and the last bucket ends at `u64::MAX`.
#[test]
fn bucket_bounds_are_monotone_and_cover_u64() {
    let (low0, high0) = bucket_bounds(0);
    assert_eq!((low0, high0), (0, 0));
    let mut previous_high = high0;
    for index in 1..BUCKET_COUNT {
        let (low, high) = bucket_bounds(index);
        assert_eq!(low, previous_high + 1, "bucket {index} must start where {} ended", index - 1);
        assert!(low <= high, "bucket {index} bounds must be ordered");
        previous_high = high;
    }
    assert_eq!(previous_high, u64::MAX);
}

/// Every value lands in the bucket whose bounds contain it.
#[test]
fn values_land_inside_their_buckets() {
    check("values_land_inside_their_buckets", CheckConfig::default(), |g| {
        // Mix uniform draws with small values and powers of two, so the
        // boundary cases (0, 1, 2^i − 1, 2^i) are actually exercised.
        let value = match g.below(4) {
            0 => g.u64(),
            1 => g.below(16),
            2 => 1u64 << g.range_u32(0, 63),
            _ => (1u64 << g.range_u32(0, 63)).wrapping_sub(1),
        };
        let index = bucket_index(value);
        prop_assert!(index < BUCKET_COUNT, "index {} out of range", index);
        let (low, high) = bucket_bounds(index);
        prop_assert!(
            low <= value && value <= high,
            "value {} outside bucket {} bounds [{}, {}]",
            value,
            index,
            low,
            high
        );
        Ok(())
    });
}

/// After any sequence of inserts: `count` equals the number of inserts,
/// `sum` equals the wrapping sum of the values, per-bucket counts add up
/// to `count`, and every nonzero bucket's low bound is at most the
/// largest inserted value.
#[test]
fn histogram_count_and_sum_invariants() {
    check("histogram_count_and_sum_invariants", CheckConfig::default(), |g| {
        let values = g.vec(0, 200, |g| match g.below(3) {
            0 => g.u64(),
            1 => g.below(1_000_000),
            _ => g.below(2),
        });
        let histogram = Histogram::new();
        let mut expected_sum = 0u64;
        for &value in &values {
            histogram.record(value);
            expected_sum = expected_sum.wrapping_add(value);
        }
        prop_assert_eq!(histogram.count(), values.len() as u64);
        prop_assert_eq!(histogram.sum(), expected_sum);
        let bucket_total: u64 = (0..BUCKET_COUNT).map(|i| histogram.bucket_count(i)).sum();
        prop_assert_eq!(bucket_total, histogram.count(), "bucket counts must sum to count");
        if let Some(&max) = values.iter().max() {
            for (low, count) in histogram.nonzero_buckets() {
                prop_assert!(count > 0);
                prop_assert!(
                    low <= max,
                    "nonzero bucket starting at {} is above the largest insert {}",
                    low,
                    max
                );
            }
            prop_assert!(histogram.max_bucket_bound().expect("non-empty") >= max);
        } else {
            prop_assert_eq!(histogram.max_bucket_bound(), None);
        }
        Ok(())
    });
}
