//! # vlpp-metrics — in-tree observability for the vlpp workspace
//!
//! The paper argues its predictor is practical because its cost model
//! is visible (§4: O(1) incremental hash evaluation, one table, an
//! HFNT). This crate makes the *reproduction's* cost model visible the
//! same way: every layer of the stack reports into one process-wide
//! [`Registry`] of lock-free instruments, and `vlpp <cmd> --metrics`
//! snapshots it as a machine-readable record (see `OBSERVABILITY.md` at
//! the repository root for the full metric catalog).
//!
//! Four instrument types cover everything the stack needs:
//!
//! * [`Counter`] — monotone event count (tasks run, memo hits,
//!   profiled records);
//! * [`Gauge`] — sampled level with a high-water mark (work-queue
//!   depth);
//! * [`Histogram`] — log-bucketed distribution, by convention of
//!   nanosecond durations (names end `_ns`); buckets are powers of two
//!   ([`bucket_index`] / [`bucket_bounds`]);
//! * [`Span`] — RAII timer recording its elapsed nanoseconds into a
//!   histogram on drop.
//!
//! All instruments are a few relaxed atomics — safe to update from the
//! worker pool's hottest loops — and are shared `Arc`s handed out by
//! get-or-register accessors, so instrumented code never needs setup:
//!
//! ```
//! // Modules report with one line (process-wide registry):
//! vlpp_metrics::counter("demo.lib.events").incr();
//! let _span = vlpp_metrics::span("demo.lib.phase_ns"); // records on drop
//! ```
//!
//! Snapshots go through `vlpp_trace::json::JsonValue` (the workspace's
//! dependency-free JSON tree), with sorted keys:
//!
//! ```
//! use vlpp_metrics::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("requests").add(2);
//! assert_eq!(
//!     registry.snapshot().to_string(),
//!     r#"{"requests":2}"#
//! );
//! ```
//!
//! ## Determinism
//!
//! Metrics carry wall-clock timings and scheduling-dependent counts, so
//! they are *never* mixed into experiment output: the CLI emits them on
//! stderr (pretty table) and as a separate `METRICS {json}` stdout line
//! that the determinism diff strips. `vlpp all --json` remains
//! byte-identical at any `VLPP_THREADS` with or without `--metrics` —
//! an integration test asserts exactly that.
//!
//! Like every crate in the workspace, this one depends only on in-tree
//! crates (`vlpp-trace` for the JSON tree) and builds offline.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod instruments;
mod registry;

pub use instruments::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, Span, BUCKET_COUNT};
pub use registry::{counter, gauge, histogram, span, Registry};
