//! The process-wide instrument registry and its snapshot/render forms.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use vlpp_trace::json::JsonValue;

use crate::instruments::{Counter, Gauge, Histogram, Span};

/// One registered instrument.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of instruments that can be snapshotted as one
/// JSON object.
///
/// Instrument accessors are *get-or-register*: the first call for a
/// name creates the instrument, later calls return the same [`Arc`], so
/// any module can say `vlpp_metrics::counter("pool.tasks.helped")` and
/// land on the shared process-wide instance. Names are sorted
/// (`BTreeMap`), so snapshot field order is deterministic for a given
/// set of registered instruments.
///
/// Most code uses the process-wide [`Registry::global`] through the
/// module-level shorthands [`counter`], [`gauge`], [`histogram`], and
/// [`span`]; tests that need isolation create their own with
/// [`Registry::new`].
///
/// # Example
///
/// ```
/// use vlpp_metrics::Registry;
///
/// let registry = Registry::new();
/// registry.counter("demo.events").add(3);
/// registry.gauge("demo.depth").record(7);
/// {
///     let _span = registry.span("demo.phase_ns");
/// }
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.get("demo.events").and_then(|v| v.as_u64()), Some(3));
/// let depth = snapshot.get("demo.depth").unwrap();
/// assert_eq!(depth.get("high_water").and_then(|v| v.as_u64()), Some(7));
/// let phase = snapshot.get("demo.phase_ns").unwrap();
/// assert_eq!(phase.get("count").and_then(|v| v.as_u64()), Some(1));
/// ```
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("instruments", &self.lock().len()).finish()
    }
}

impl Registry {
    /// Creates an empty registry (for tests; production code shares
    /// [`Registry::global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry every instrumented crate reports into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        // Registration bodies are panic-free bookkeeping; ignore poison.
        self.instruments.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut instruments = self.lock();
        match instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(counter) => Arc::clone(counter),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut instruments = self.lock();
        match instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(gauge) => Arc::clone(gauge),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut instruments = self.lock();
        match instruments
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(histogram) => Arc::clone(histogram),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Starts an RAII timing span recording into the histogram `name`
    /// (created on first use) when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self.histogram(name))
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One JSON object with a field per instrument, keys in sorted
    /// order. Counters emit as integers; gauges as
    /// `{"value","high_water"}`; histograms as
    /// `{"count","sum_ns","mean_ns","buckets":[[bucket_low,count],…]}`.
    pub fn snapshot(&self) -> JsonValue {
        let instruments = self.lock();
        let fields = instruments
            .iter()
            .map(|(name, instrument)| {
                let value = match instrument {
                    Instrument::Counter(c) => JsonValue::UInt(c.get()),
                    Instrument::Gauge(g) => JsonValue::Object(vec![
                        ("value".to_string(), JsonValue::UInt(g.get())),
                        ("high_water".to_string(), JsonValue::UInt(g.high_water())),
                    ]),
                    Instrument::Histogram(h) => JsonValue::Object(vec![
                        ("count".to_string(), JsonValue::UInt(h.count())),
                        ("sum_ns".to_string(), JsonValue::UInt(h.sum())),
                        ("mean_ns".to_string(), JsonValue::Float(h.mean())),
                        (
                            "buckets".to_string(),
                            JsonValue::Array(
                                h.nonzero_buckets()
                                    .into_iter()
                                    .map(|(low, count)| {
                                        JsonValue::Array(vec![
                                            JsonValue::UInt(low),
                                            JsonValue::UInt(count),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (name.clone(), value)
            })
            .collect();
        JsonValue::Object(fields)
    }

    /// A human-readable table (one line per instrument, sorted by
    /// name) — what `vlpp <cmd> --metrics` prints to stderr.
    pub fn render_table(&self) -> String {
        let instruments = self.lock();
        let width = instruments.keys().map(|name| name.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        for (name, instrument) in instruments.iter() {
            let rendered = match instrument {
                Instrument::Counter(c) => format!("{}", c.get()),
                Instrument::Gauge(g) => {
                    format!("value={} high_water={}", g.get(), g.high_water())
                }
                Instrument::Histogram(h) => {
                    let max = h
                        .max_bucket_bound()
                        .map(|bound| format!(" max<={}", format_ns(bound)))
                        .unwrap_or_default();
                    format!(
                        "count={} sum={} mean={}{max}",
                        h.count(),
                        format_ns(h.sum()),
                        format_ns(h.mean() as u64),
                    )
                }
            };
            out.push_str(&format!("{name:<width$}  {rendered}\n"));
        }
        out
    }
}

/// Renders a nanosecond quantity with a readable unit (`ns`, `us`,
/// `ms`, `s`).
fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// The counter `name` in the process-wide registry ([`Registry::global`]).
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// The gauge `name` in the process-wide registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// The histogram `name` in the process-wide registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// An RAII span timing into the process-wide histogram `name`.
pub fn span(name: &str) -> Span {
    Registry::global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.incr();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn snapshot_keys_are_sorted_and_typed() {
        let registry = Registry::new();
        registry.counter("z.count").add(5);
        registry.gauge("a.depth").record(2);
        registry.histogram("m.time_ns").record(1500);
        let snapshot = registry.snapshot();
        let keys: Vec<&str> =
            snapshot.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a.depth", "m.time_ns", "z.count"]);
        assert_eq!(snapshot.get("z.count").unwrap().as_u64(), Some(5));
        let histogram = snapshot.get("m.time_ns").unwrap();
        assert_eq!(histogram.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(histogram.get("sum_ns").unwrap().as_u64(), Some(1500));
        let buckets = histogram.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1);
        // 1500 has bit length 11 → bucket low bound 1024.
        assert_eq!(buckets[0].at(0).unwrap().as_u64(), Some(1024));
        assert_eq!(buckets[0].at(1).unwrap().as_u64(), Some(1));
    }

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let registry = Registry::new();
        registry.counter("events").add(3);
        registry.histogram("t_ns").record(42);
        let text = registry.snapshot().to_string();
        let back = JsonValue::parse(&text).expect("snapshot must be valid JSON");
        assert_eq!(back, registry.snapshot());
    }

    #[test]
    fn span_shorthand_records_into_named_histogram() {
        let registry = Registry::new();
        {
            let _span = registry.span("phase_ns");
        }
        assert_eq!(registry.histogram("phase_ns").count(), 1);
    }

    #[test]
    fn table_lists_every_instrument() {
        let registry = Registry::new();
        registry.counter("pool.tasks").add(10);
        registry.gauge("pool.queue").record(4);
        registry.histogram("sim.run_ns").record(2_000_000);
        let table = registry.render_table();
        assert!(table.starts_with("metric"));
        assert!(table.contains("pool.tasks"));
        assert!(table.contains("value=4 high_water=4"));
        assert!(table.contains("count=1"));
        assert!(table.contains("2.0ms"), "{table}");
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_000_000), "2.0ms");
        assert_eq!(format_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn global_registry_is_shared() {
        counter("vlpp_metrics.test.global").add(2);
        assert_eq!(Registry::global().counter("vlpp_metrics.test.global").get(), 2);
        assert!(!Registry::global().is_empty());
    }
}
