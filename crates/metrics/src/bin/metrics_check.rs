//! `vlpp-metrics-check` — validates a `METRICS {json}` line on stdin.
//!
//! Reads stdin, finds the first line starting with `METRICS ` (a bare
//! JSON object is also accepted), parses the payload with the in-tree
//! JSON parser, and checks the snapshot shape: a non-empty object whose
//! `*_ns` histogram fields carry `count`/`sum_ns`/`buckets`. Exits 0
//! and prints a one-line summary on success; exits 1 with a diagnostic
//! otherwise. Used by `scripts/verify.sh` as the `--metrics` smoke
//! gate.

use std::io::Read;
use std::process::ExitCode;

use vlpp_trace::json::JsonValue;

fn fail(message: &str) -> ExitCode {
    eprintln!("vlpp-metrics-check: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut input = String::new();
    if let Err(error) = std::io::stdin().read_to_string(&mut input) {
        return fail(&format!("cannot read stdin: {error}"));
    }

    let Some(payload) = input
        .lines()
        .find_map(|line| line.strip_prefix("METRICS "))
        .or_else(|| input.lines().find(|line| line.trim_start().starts_with('{')))
    else {
        return fail("no `METRICS {json}` line (and no JSON object) found on stdin");
    };

    let snapshot = match JsonValue::parse(payload.trim()) {
        Ok(value) => value,
        Err(error) => return fail(&format!("METRICS payload is not valid JSON: {error}")),
    };
    let Some(fields) = snapshot.as_object() else {
        return fail("METRICS payload must be a JSON object");
    };
    if fields.is_empty() {
        return fail("METRICS payload is an empty object — nothing was registered");
    }

    let mut histograms = 0usize;
    for (name, value) in fields {
        if !name.ends_with("_ns") {
            continue;
        }
        histograms += 1;
        for key in ["count", "sum_ns", "mean_ns", "buckets"] {
            if value.get(key).is_none() {
                return fail(&format!("histogram `{name}` is missing field `{key}`"));
            }
        }
        let count = value.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
        let bucket_total: u64 = value
            .get("buckets")
            .and_then(JsonValue::as_array)
            .map(|buckets| {
                buckets.iter().filter_map(|b| b.at(1).and_then(JsonValue::as_u64)).sum()
            })
            .unwrap_or(0);
        if bucket_total != count {
            return fail(&format!(
                "histogram `{name}`: bucket counts sum to {bucket_total}, count says {count}"
            ));
        }
    }

    println!("ok: METRICS line parses ({} metrics, {histograms} histograms)", fields.len());
    ExitCode::SUCCESS
}
