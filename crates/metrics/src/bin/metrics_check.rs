//! `vlpp-metrics-check` — validates machine-readable observability
//! lines on stdin.
//!
//! Default mode: reads stdin, finds the first line starting with
//! `METRICS ` (a bare JSON object is also accepted), parses the payload
//! with the in-tree JSON parser, and checks the snapshot shape: a
//! non-empty object whose `*_ns` histogram fields carry
//! `count`/`sum_ns`/`buckets`. Repeatable `--require NAME[:MIN]` flags
//! additionally demand that counter `NAME` is present (and, with
//! `:MIN`, at least `MIN`) — the structural gate the chaos drill uses
//! to prove `cluster.respawns`/`serve.io_timeouts` really moved. Exits
//! 0 and prints a one-line summary on success; exits 1 with a
//! diagnostic otherwise. Used by `scripts/verify.sh` as the
//! `--metrics` smoke gate.
//!
//! `--bench` mode: reads `BENCH {json}` lines instead (the shape the
//! `vlpp-check` bench timer and `scripts/verify.sh`/`bench_record.sh`
//! emit: `{"bench":name,"iters":n,"median_ns":...,...}`), validates
//! them, and — with `--baseline FILE` — compares each bench's
//! `median_ns` against the committed baseline, failing if any regresses
//! by more than `--max-regress PCT` (default 30). Baseline entries may
//! also set absolute floors: `min_records_per_sec` (gates the BENCH
//! line's `records_per_sec`) and `min_speedup` (gates
//! `speedup_vs_boxed`); a floor whose bench or field is missing fails.
//! Benches absent from the baseline pass with a note, so adding a bench
//! does not require a lockstep baseline update. Used by the CI
//! bench-smoke job.
//!
//! `--tourney` mode: reads the `TOURNEY {json}` line `vlpp tournament`
//! emits, validates the league shape (every predictor × workload cell
//! present, rates in [0, 1]), and — with `--baseline FILE` (the
//! committed `TOURNEY_baseline.json`) — enforces the accuracy gate: a
//! cell named by the baseline that is *missing* from the run is a hard
//! fail (a predictor or benchmark silently dropped from the matrix),
//! as is a cell whose miss rate exceeds its `max_miss_rate` ceiling or
//! a matrix smaller than `min_cells`. Used by the CI tournament-smoke
//! job.

use std::io::Read;
use std::process::ExitCode;

use vlpp_trace::json::JsonValue;

fn fail(message: &str) -> ExitCode {
    eprintln!("vlpp-metrics-check: {message}");
    ExitCode::FAILURE
}

const USAGE: &str = "\
usage: vlpp-metrics-check [--require NAME[:MIN]]...
                          [--bench [--baseline FILE] [--max-regress PCT]]
                          [--tourney [--baseline FILE]]

Reads stdin. Default: validate the first `METRICS {json}` line.
--require NAME[:MIN] (repeatable): fail unless the snapshot carries
counter NAME with a value >= MIN (default 0, i.e. present at all).
--bench: validate every `BENCH {json}` line, and with --baseline also
compare each bench's median_ns against the baseline file (a JSON object
mapping bench name -> {\"median_ns\": N}), failing on > PCT regression.
Baseline entries may set absolute floors instead of (or besides) a
median: {\"min_records_per_sec\": N} and {\"min_speedup\": X} gate the
BENCH line's records_per_sec / speedup_vs_boxed fields; a floor fails
when its bench or field is missing or below the floor.
--tourney: validate the `TOURNEY {json}` league line, and with
--baseline (TOURNEY_baseline.json: {\"min_cells\": N, \"cells\":
{key: {\"max_miss_rate\": X}}}) fail if any baseline cell is missing
from the run, any cell's miss_rate exceeds its ceiling, or the matrix
shrank below min_cells.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_mode = false;
    let mut tourney_mode = false;
    let mut baseline_path: Option<String> = None;
    let mut max_regress_pct = 30.0f64;
    let mut required: Vec<(String, u64)> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bench" => bench_mode = true,
            "--tourney" => tourney_mode = true,
            "--require" => {
                let Some(spec) = iter.next() else {
                    return fail("--require needs NAME[:MIN]");
                };
                let (name, min) = match spec.rsplit_once(':') {
                    None => (spec.as_str(), 0u64),
                    Some((name, min)) => match min.parse::<u64>() {
                        Ok(min) => (name, min),
                        Err(_) => {
                            return fail(&format!(
                                "--require {spec}: MIN must be a non-negative integer"
                            ));
                        }
                    },
                };
                if name.is_empty() {
                    return fail(&format!("--require {spec}: counter name is empty"));
                }
                required.push((name.to_string(), min));
            }
            "--baseline" => {
                let Some(path) = iter.next() else {
                    return fail("--baseline needs a file path");
                };
                baseline_path = Some(path.clone());
            }
            "--max-regress" => {
                let Some(pct) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--max-regress needs a percentage");
                };
                max_regress_pct = pct;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    if bench_mode && tourney_mode {
        return fail("--bench and --tourney are mutually exclusive");
    }
    if baseline_path.is_some() && !bench_mode && !tourney_mode {
        return fail("--baseline only applies with --bench or --tourney");
    }
    if (bench_mode || tourney_mode) && !required.is_empty() {
        return fail("--require only applies to METRICS mode (drop --bench/--tourney)");
    }

    let mut input = String::new();
    if let Err(error) = std::io::stdin().read_to_string(&mut input) {
        return fail(&format!("cannot read stdin: {error}"));
    }

    if bench_mode {
        check_bench_lines(&input, baseline_path.as_deref(), max_regress_pct)
    } else if tourney_mode {
        check_tourney_line(&input, baseline_path.as_deref())
    } else {
        check_metrics_line(&input, &required)
    }
}

fn check_metrics_line(input: &str, required: &[(String, u64)]) -> ExitCode {
    let Some(payload) = input
        .lines()
        .find_map(|line| line.strip_prefix("METRICS "))
        .or_else(|| input.lines().find(|line| line.trim_start().starts_with('{')))
    else {
        return fail("no `METRICS {json}` line (and no JSON object) found on stdin");
    };

    let snapshot = match JsonValue::parse(payload.trim()) {
        Ok(value) => value,
        Err(error) => return fail(&format!("METRICS payload is not valid JSON: {error}")),
    };
    let Some(fields) = snapshot.as_object() else {
        return fail("METRICS payload must be a JSON object");
    };
    if fields.is_empty() {
        return fail("METRICS payload is an empty object — nothing was registered");
    }

    let mut histograms = 0usize;
    for (name, value) in fields {
        if !name.ends_with("_ns") {
            continue;
        }
        histograms += 1;
        for key in ["count", "sum_ns", "mean_ns", "buckets"] {
            if value.get(key).is_none() {
                return fail(&format!("histogram `{name}` is missing field `{key}`"));
            }
        }
        let count = value.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
        let bucket_total: u64 = value
            .get("buckets")
            .and_then(JsonValue::as_array)
            .map(|buckets| buckets.iter().filter_map(|b| b.at(1).and_then(JsonValue::as_u64)).sum())
            .unwrap_or(0);
        if bucket_total != count {
            return fail(&format!(
                "histogram `{name}`: bucket counts sum to {bucket_total}, count says {count}"
            ));
        }
    }

    for (name, min) in required {
        let Some(value) = snapshot.get(name).and_then(JsonValue::as_u64) else {
            return fail(&format!("required counter `{name}` is absent from the METRICS snapshot"));
        };
        if value < *min {
            return fail(&format!("required counter `{name}` is {value}, below the floor {min}"));
        }
        println!("ok: counter `{name}` = {value} (>= {min})");
    }

    println!(
        "ok: METRICS line parses ({} metrics, {histograms} histograms, {} required counter(s))",
        fields.len(),
        required.len()
    );
    ExitCode::SUCCESS
}

fn check_bench_lines(input: &str, baseline_path: Option<&str>, max_regress_pct: f64) -> ExitCode {
    let baseline = match baseline_path {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(error) => return fail(&format!("cannot read baseline {path}: {error}")),
            Ok(text) => match JsonValue::parse(text.trim()) {
                Err(error) => return fail(&format!("baseline {path} is not valid JSON: {error}")),
                Ok(value) if value.as_object().is_none() => {
                    return fail(&format!("baseline {path} must be a JSON object"));
                }
                Ok(value) => Some(value),
            },
        },
    };

    let mut checked = 0usize;
    let mut compared = 0usize;
    let mut gated = 0usize;
    let mut seen: Vec<String> = Vec::new();
    for payload in input.lines().filter_map(|line| line.strip_prefix("BENCH ")) {
        let report = match JsonValue::parse(payload.trim()) {
            Ok(value) => value,
            Err(error) => return fail(&format!("BENCH payload is not valid JSON: {error}")),
        };
        let Some(name) = report.get("bench").and_then(|v| v.as_str()) else {
            return fail("BENCH payload is missing its `bench` name");
        };
        for key in ["iters", "median_ns", "min_ns", "max_ns"] {
            if report.get(key).and_then(JsonValue::as_u64).is_none() {
                return fail(&format!("bench `{name}`: missing or non-integer field `{key}`"));
            }
        }
        let median = report.get("median_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        let min = report.get("min_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        let max = report.get("max_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        if !(min <= median && median <= max) {
            return fail(&format!(
                "bench `{name}`: min/median/max are not ordered ({min}/{median}/{max})"
            ));
        }
        checked += 1;
        seen.push(name.to_string());

        let Some(baseline) = &baseline else { continue };
        let Some(entry) = baseline.get(name) else {
            println!("note: bench `{name}` has no baseline entry; skipping comparison");
            continue;
        };

        // Relative gate: median against the recorded median, where the
        // baseline entry records one.
        if let Some(reference) = entry.get("median_ns").and_then(JsonValue::as_u64) {
            if reference == 0 {
                return fail(&format!("bench `{name}`: baseline median_ns is 0"));
            }
            compared += 1;
            let regress_pct = 100.0 * (median as f64 - reference as f64) / reference as f64;
            if regress_pct > max_regress_pct {
                return fail(&format!(
                    "bench `{name}` regressed {regress_pct:.1}% (median {median} ns vs baseline \
                     {reference} ns, limit {max_regress_pct:.0}%)"
                ));
            }
            println!(
                "ok: bench `{name}` median {median} ns vs baseline {reference} ns \
                 ({regress_pct:+.1}%)"
            );
        }

        // Absolute floors: throughput and speedup-over-boxed-dispatch,
        // where the baseline entry sets one. A floor with no matching
        // field on the BENCH line is a failure — a bench that stopped
        // reporting must not pass its gate by omission.
        if let Some(floor) = entry.get("min_records_per_sec").and_then(JsonValue::as_u64) {
            gated += 1;
            match report.get("records_per_sec").and_then(JsonValue::as_u64) {
                None => {
                    return fail(&format!(
                        "bench `{name}`: baseline sets min_records_per_sec but the BENCH line \
                         carries no records_per_sec field"
                    ));
                }
                Some(value) if value < floor => {
                    return fail(&format!(
                        "bench `{name}`: records_per_sec {value} is below the baseline floor \
                         {floor}"
                    ));
                }
                Some(value) => {
                    println!("ok: bench `{name}` records_per_sec {value} >= floor {floor}");
                }
            }
        }
        if let Some(floor) = entry.get("min_speedup").and_then(JsonValue::as_f64) {
            gated += 1;
            match report.get("speedup_vs_boxed").and_then(JsonValue::as_f64) {
                None => {
                    return fail(&format!(
                        "bench `{name}`: baseline sets min_speedup but the BENCH line carries \
                         no speedup_vs_boxed field"
                    ));
                }
                Some(value) if value < floor => {
                    return fail(&format!(
                        "bench `{name}`: speedup_vs_boxed {value:.2} is below the baseline \
                         floor {floor:.2}"
                    ));
                }
                Some(value) => {
                    println!(
                        "ok: bench `{name}` speedup_vs_boxed {value:.2}x >= floor {floor:.2}x"
                    );
                }
            }
        }
    }
    if checked == 0 {
        return fail("no `BENCH {json}` line found on stdin");
    }

    // A baseline entry that sets a floor *requires* its bench to run:
    // a gate that silently stops running is indistinguishable from one
    // that passes.
    if let Some(entries) = baseline.as_ref().and_then(JsonValue::as_object) {
        for (name, entry) in entries {
            let has_floor =
                entry.get("min_records_per_sec").is_some() || entry.get("min_speedup").is_some();
            if has_floor && !seen.iter().any(|s| s == name) {
                return fail(&format!(
                    "baseline sets a floor for bench `{name}` but no such BENCH line was on stdin"
                ));
            }
        }
    }

    println!(
        "ok: {checked} BENCH line(s) parse, {compared} compared against the baseline, \
         {gated} floor(s) enforced"
    );
    ExitCode::SUCCESS
}

fn check_tourney_line(input: &str, baseline_path: Option<&str>) -> ExitCode {
    let Some(payload) = input.lines().find_map(|line| line.strip_prefix("TOURNEY ")) else {
        return fail("no `TOURNEY {json}` line found on stdin");
    };
    let league = match JsonValue::parse(payload.trim()) {
        Ok(value) => value,
        Err(error) => return fail(&format!("TOURNEY payload is not valid JSON: {error}")),
    };
    let Some(cells) = league.get("cells").and_then(JsonValue::as_object) else {
        return fail("TOURNEY payload has no `cells` object");
    };
    if cells.is_empty() {
        return fail("TOURNEY `cells` is empty — the tournament raced nothing");
    }

    // Structural gate: every cell is well-formed, and the matrix is the
    // full cross product of the advertised axes — a predictor that ran
    // on some workloads but silently skipped others must not pass.
    for (key, cell) in cells {
        for field in ["predictions", "mispredictions"] {
            if cell.get(field).and_then(JsonValue::as_u64).is_none() {
                return fail(&format!("cell `{key}`: missing or non-integer field `{field}`"));
            }
        }
        let Some(rate) = cell.get("miss_rate").and_then(JsonValue::as_f64) else {
            return fail(&format!("cell `{key}`: missing field `miss_rate`"));
        };
        if !(0.0..=1.0).contains(&rate) {
            return fail(&format!("cell `{key}`: miss_rate {rate} is outside [0, 1]"));
        }
        match cell.get("mpki").and_then(JsonValue::as_f64) {
            Some(mpki) if mpki >= 0.0 => {}
            _ => return fail(&format!("cell `{key}`: missing or negative field `mpki`")),
        }
    }
    let workloads: Vec<&str> = league
        .get("workloads")
        .and_then(JsonValue::as_array)
        .map(|list| list.iter().filter_map(JsonValue::as_str).collect())
        .unwrap_or_default();
    let mut expected = 0usize;
    for (tag, kind) in [("cond", "conditional"), ("ind", "indirect")] {
        let predictors: Vec<&str> = league
            .get("predictors")
            .and_then(|p| p.get(kind))
            .and_then(JsonValue::as_array)
            .map(|list| list.iter().filter_map(JsonValue::as_str).collect())
            .unwrap_or_default();
        for predictor in predictors {
            for workload in &workloads {
                expected += 1;
                let key = format!("{tag}:{predictor}:{workload}");
                if !cells.iter().any(|(k, _)| *k == key) {
                    return fail(&format!("matrix hole: cell `{key}` was not raced"));
                }
            }
        }
    }
    if expected != cells.len() {
        return fail(&format!(
            "matrix mismatch: axes promise {expected} cells, {} were raced",
            cells.len()
        ));
    }

    let mut gated = 0usize;
    if let Some(path) = baseline_path {
        let baseline = match std::fs::read_to_string(path) {
            Err(error) => return fail(&format!("cannot read baseline {path}: {error}")),
            Ok(text) => match JsonValue::parse(text.trim()) {
                Err(error) => return fail(&format!("baseline {path} is not valid JSON: {error}")),
                Ok(value) => value,
            },
        };
        if let Some(min_cells) = baseline.get("min_cells").and_then(JsonValue::as_u64) {
            if (cells.len() as u64) < min_cells {
                return fail(&format!(
                    "matrix shrank: {} cells raced, baseline requires at least {min_cells}",
                    cells.len()
                ));
            }
        }
        let Some(floors) = baseline.get("cells").and_then(JsonValue::as_object) else {
            return fail(&format!("baseline {path} has no `cells` object"));
        };
        for (key, floor) in floors {
            // A baseline cell with no counterpart in the run is a hard
            // fail: a dropped predictor or benchmark must not pass by
            // omission.
            let Some(cell) = cells.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
                return fail(&format!(
                    "baseline gates cell `{key}` but the tournament did not race it"
                ));
            };
            let Some(ceiling) = floor.get("max_miss_rate").and_then(JsonValue::as_f64) else {
                return fail(&format!("baseline cell `{key}` has no `max_miss_rate`"));
            };
            let rate = cell.get("miss_rate").and_then(JsonValue::as_f64).unwrap_or(1.0);
            if rate > ceiling {
                return fail(&format!(
                    "cell `{key}` regressed: miss_rate {rate:.4} exceeds the baseline ceiling \
                     {ceiling:.4}"
                ));
            }
            gated += 1;
        }
    }

    println!(
        "ok: TOURNEY line parses ({} cells, full matrix, {gated} baseline ceiling(s) enforced)",
        cells.len()
    );
    ExitCode::SUCCESS
}
