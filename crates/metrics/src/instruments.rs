//! The four instrument types: [`Counter`], [`Gauge`], [`Histogram`],
//! and the RAII [`Span`] timer.
//!
//! Every instrument is a handful of atomics — no locks, no allocation
//! after construction — so instrumented hot paths (the worker pool's
//! task loop, the step-1 profiling kernel) pay one or two relaxed
//! atomic RMW operations per event. Instruments are shared as [`Arc`]s
//! handed out by the [`Registry`](crate::Registry); updating them never
//! touches the registry again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
///
/// # Example
///
/// ```
/// use vlpp_metrics::Counter;
///
/// let hits = Counter::new();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on `u64` overflow, like `fetch_add`).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A sampled level (queue depth, cache size) that also tracks its
/// high-water mark.
///
/// # Example
///
/// ```
/// use vlpp_metrics::Gauge;
///
/// let depth = Gauge::new();
/// depth.record(7);
/// depth.record(3);
/// assert_eq!(depth.get(), 3);
/// assert_eq!(depth.high_water(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Records the current level, updating the high-water mark.
    #[inline]
    pub fn record(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// The most recently recorded level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest level ever recorded.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit length of a `u64` value,
/// plus bucket 0 for the value zero.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value lands in: 0 for 0, otherwise `floor(log2(v)) + 1`
/// (the value's bit length). Bucket boundaries are powers of two, so
/// they are monotone by construction — see [`bucket_bounds`].
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `(low, high)` value range of a bucket: `(0, 0)` for
/// bucket 0, `(2^(i-1), 2^i - 1)` for bucket `i ≥ 1` (bucket 64 tops
/// out at `u64::MAX`).
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else {
        let low = 1u64 << (index - 1);
        let high = if index == 64 { u64::MAX } else { (1u64 << index) - 1 };
        (low, high)
    }
}

/// A log-bucketed distribution of `u64` samples — by convention
/// durations in nanoseconds (histogram names end in `_ns`).
///
/// Buckets are powers of two ([`bucket_index`] / [`bucket_bounds`]), so
/// recording is branch-free and lock-free: one `leading_zeros` plus
/// three relaxed atomic adds. The total `sum` wraps on `u64` overflow
/// (never relevant for nanosecond timings).
///
/// # Example
///
/// ```
/// use vlpp_metrics::{bucket_index, Histogram};
///
/// let h = Histogram::new();
/// h.record(0);
/// h.record(100);
/// h.record(100);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 200);
/// assert_eq!(h.bucket_count(bucket_index(100)), 2);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 if nothing was recorded.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Samples recorded into bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKET_COUNT`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(bucket_low_bound, count)` pairs, in
    /// increasing bound order — the compact form the registry snapshot
    /// emits.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKET_COUNT)
            .filter_map(|i| {
                let count = self.bucket_count(i);
                (count > 0).then(|| (bucket_bounds(i).0, count))
            })
            .collect()
    }

    /// The inclusive upper bound of the highest non-empty bucket — a
    /// cheap "max sample was at most this" indicator. `None` if empty.
    pub fn max_bucket_bound(&self) -> Option<u64> {
        (0..BUCKET_COUNT).rev().find(|&i| self.bucket_count(i) > 0).map(|i| bucket_bounds(i).1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An RAII timer: measures from construction to drop and records the
/// elapsed nanoseconds into a [`Histogram`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use vlpp_metrics::{Histogram, Span};
///
/// let phase = Arc::new(Histogram::new());
/// {
///     let _span = Span::enter(Arc::clone(&phase));
///     // ... timed work ...
/// }
/// assert_eq!(phase.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing; the elapsed nanoseconds are recorded into
    /// `histogram` when the span drops.
    pub fn enter(histogram: Arc<Histogram>) -> Self {
        Span { histogram, start: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        self.histogram.record(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        assert_eq!((g.get(), g.high_water()), (0, 0));
        g.record(9);
        g.record(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_adjacent() {
        let mut previous_high = None;
        for i in 0..BUCKET_COUNT {
            let (low, high) = bucket_bounds(i);
            assert!(low <= high, "bucket {i}");
            if let Some(previous) = previous_high {
                assert_eq!(low, previous + 1, "bucket {i} must start after bucket {}", i - 1);
            }
            previous_high = Some(high);
        }
        assert_eq!(previous_high, Some(u64::MAX), "buckets must cover the whole u64 range");
    }

    #[test]
    fn histogram_counts_sums_and_buckets() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_bucket_bound(), None);
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert!((h.mean() - 202.2).abs() < 1e-9);
        assert_eq!(h.bucket_count(bucket_index(5)), 2);
        let total: u64 = (0..BUCKET_COUNT).map(|i| h.bucket_count(i)).sum();
        assert_eq!(total, 5);
        // 1000 has bit length 10 → bucket 10, upper bound 1023.
        assert_eq!(h.max_bucket_bound(), Some(1023));
        assert_eq!(h.nonzero_buckets().len(), 4, "0, 1, 5·2, 1000 → four buckets");
    }

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = Span::enter(Arc::clone(&h));
            std::hint::black_box(());
        }
        assert_eq!(h.count(), 1);
    }
}
