//! Plain-text rendering of experiment results: aligned tables like the
//! paper's, plus CSV for plotting.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use vlpp_sim::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "rate".into()]);
/// t.row(vec!["gcc".into(), "4.3%".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("gcc"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the width.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns (first column left-
    /// aligned, the rest right-aligned, numbers-style).
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        self.render_row(&mut out, &self.header, &widths);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            self.render_row(&mut out, row, &widths);
        }
        out
    }

    fn render_row(&self, out: &mut String, row: &[String], widths: &[usize]) {
        for (i, width) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<width$}");
            } else {
                let _ = write!(out, "{cell:>width$}");
            }
        }
        out.push('\n');
    }

    /// Renders the table as CSV (header + rows, comma-separated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

impl vlpp_trace::json::ToJson for TextTable {
    /// `{"header": [...], "rows": [[...], ...]}` — the structural form
    /// of the table, for tools that consume the text reports.
    fn to_json(&self) -> vlpp_trace::json::JsonValue {
        vlpp_trace::json::JsonValue::Object(vec![
            ("header".to_string(), vlpp_trace::json::ToJson::to_json(&self.header)),
            ("rows".to_string(), vlpp_trace::json::ToJson::to_json(&self.rows)),
        ])
    }
}

/// Formats a rate in `[0, 1]` as a percentage with two decimals, like
/// the paper's tables.
pub fn percent(rate: f64) -> String {
    format!("{:.2}%", 100.0 * rate)
}

/// A terminal line chart for size-sweep series (Figures 9–10): one
/// column per x value, one letter per series, misprediction rate on the
/// y axis.
///
/// # Example
///
/// ```
/// use vlpp_sim::report::AsciiChart;
///
/// let mut chart = AsciiChart::new(vec!["1KB".into(), "4KB".into()]);
/// chart.series('g', "gshare", vec![0.20, 0.15]);
/// chart.series('v', "variable", vec![0.09, 0.07]);
/// let drawn = chart.render(12);
/// assert!(drawn.contains("g = gshare"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    x_labels: Vec<String>,
    series: Vec<(char, String, Vec<f64>)>,
}

impl AsciiChart {
    /// Creates a chart over the given x-axis labels.
    pub fn new(x_labels: Vec<String>) -> Self {
        AsciiChart { x_labels, series: Vec::new() }
    }

    /// Adds a series drawn with `glyph`. Values beyond the x-axis length
    /// are ignored; missing values leave gaps.
    pub fn series(&mut self, glyph: char, name: impl Into<String>, values: Vec<f64>) {
        self.series.push((glyph, name.into(), values));
    }

    /// Renders the chart `height` rows tall (plus axes and legend).
    pub fn render(&self, height: usize) -> String {
        let height = height.max(2);
        let max = self
            .series
            .iter()
            .flat_map(|(_, _, values)| values.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let columns = self.x_labels.len();
        let column_width = 6usize;
        let mut grid = vec![vec![' '; columns * column_width]; height];
        for (glyph, _, values) in &self.series {
            for (x, &value) in values.iter().take(columns).enumerate() {
                let row = ((1.0 - value / max) * (height - 1) as f64).round() as usize;
                let column = x * column_width + column_width / 2;
                // Later series win collisions; the legend disambiguates.
                grid[row.min(height - 1)][column] = *glyph;
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let y_value = max * (1.0 - i as f64 / (height - 1) as f64);
            let _ = writeln!(
                out,
                "{:>6} |{}",
                format!("{:.1}%", 100.0 * y_value),
                row.iter().collect::<String>()
            );
        }
        let _ = writeln!(out, "{:>6} +{}", "", "-".repeat(columns * column_width));
        let mut labels = String::new();
        for label in &self.x_labels {
            let _ = write!(labels, "{label:^column_width$}");
        }
        let _ = writeln!(out, "{:>6}  {}", "", labels);
        for (glyph, name, _) in &self.series {
            let _ = writeln!(out, "        {glyph} = {name}");
        }
        out
    }
}

/// Formats a count with `K`/`M` suffixes, like the paper's Table 1.
pub fn human_count(count: u64) -> String {
    if count >= 10_000_000 {
        format!("{:.1} M", count as f64 / 1_000_000.0)
    } else if count >= 1_000_000 {
        format!("{:.2} M", count as f64 / 1_000_000.0)
    } else if count >= 1_000 {
        format!("{:.1} K", count as f64 / 1_000.0)
    } else {
        count.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide (alignment).
        assert!(lines[0].len() <= lines[1].len());
        assert!(r.contains("long-name"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn empty_len() {
        let t = TextTable::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.0432), "4.32%");
        assert_eq!(percent(0.0), "0.00%");
    }

    #[test]
    fn chart_renders_axes_legend_and_points() {
        let mut chart = AsciiChart::new(vec!["1KB".into(), "4KB".into(), "16KB".into()]);
        chart.series('g', "gshare", vec![0.2, 0.15, 0.12]);
        chart.series('v', "variable", vec![0.09, 0.08, 0.07]);
        let drawn = chart.render(10);
        assert!(drawn.contains('g'));
        assert!(drawn.contains('v'));
        assert!(drawn.contains("g = gshare"));
        assert!(drawn.contains("v = variable"));
        assert!(drawn.contains("1KB"));
        assert!(drawn.contains("20.0%"), "y-axis top should be the max value: {drawn}");
        // Higher rates must be drawn on higher rows.
        let lines: Vec<&str> = drawn.lines().collect();
        let g_row = lines.iter().position(|l| l.contains('|') && l.contains('g')).unwrap();
        let v_row = lines.iter().position(|l| l.contains('|') && l.contains('v')).unwrap();
        assert!(g_row < v_row, "gshare (worse) should sit above variable");
    }

    #[test]
    fn chart_handles_empty_series() {
        let chart = AsciiChart::new(vec!["a".into()]);
        let drawn = chart.render(5);
        assert!(drawn.contains('+'));
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(42), "42");
        assert_eq!(human_count(17_600), "17.6 K");
        assert_eq!(human_count(1_010_000), "1.01 M");
        assert_eq!(human_count(92_600_000), "92.6 M");
    }
}
