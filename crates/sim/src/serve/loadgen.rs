//! `vlpp loadgen` — a deterministic load generator and correctness
//! oracle for `vlpp serve` and `vlpp cluster`.
//!
//! The client trains a model on the server, replays a synthetic test
//! trace through it over N concurrent connections, and asserts that
//! every served prediction is byte-identical to the offline reference
//! ([`Model::apply_sequential`] over the same records, in trace order).
//!
//! # Why the comparison is exact
//!
//! Records are partitioned by *shard*: connection `c` carries exactly
//! the records of shards `s` with `s % connections == c`, each in trace
//! order. Every shard is therefore driven by one connection, so the
//! server sees each shard's sub-stream in trace order no matter how the
//! connections' batches interleave — which is precisely the determinism
//! contract of [`super::model`]. Batch sizes are randomized (seeded,
//! reproducible) to exercise batching boundaries, and every
//! `--update-every`-th batch goes through the `update` verb to check
//! that its state transition matches `predict`'s.
//!
//! # Cluster mode
//!
//! With `--routing FILE` (the table `vlpp cluster` emits) the same
//! oracle drives a cluster: per shard, `predict` goes to the primary
//! node and the identical batch goes to the replica via `update`, so
//! both kernels see the shard's sub-stream exactly once and stay
//! byte-identical. When a node dies mid-run (`--kill NODE` SIGKILLs
//! one after `--kill-after` batches), the survivor takes over —
//! because it holds the same state the primary had at the last batch
//! boundary, the oracle must still hold bit-for-bit, and the final
//! per-shard counters must match the offline reference shard by shard.
//!
//! # Resilience
//!
//! Every socket carries `--io-timeout-ms` read/write deadlines, so a
//! wedged server surfaces as a typed timeout instead of a hang.
//! Connect failures retry with backoff under a `--retries` budget
//! (single-server mode). In cluster mode, `--wait-respawn MS` switches
//! the failure policy from fail-over to self-heal: a worker that hits
//! a dead node pauses its shard, polls the routing file until the
//! supervisor publishes a strictly newer version with the node's pid
//! replaced, and resumes against the warm-started replacement — which
//! is what lets the oracle stay byte-exact across a kill + respawn +
//! snapshot-resync cycle. Tables whose version does not advance are
//! rejected as stale, never adopted.

use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

use vlpp_check::rng::mix;
use vlpp_check::XorShift64;
use vlpp_trace::frame::{read_frame, write_frame};
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::{BranchRecord, VlppError};

use super::model::{Model, ModelKind, ModelSpec};
use super::protocol::record_to_json;
use super::routing::RoutingTable;
use super::ListenSpec;
use crate::experiment::{Scale, Workloads};

/// Parsed `vlpp loadgen` options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The server to drive (from `--addr` or `--uds`; ignored in
    /// cluster mode, where `--routing` carries the addresses).
    pub target: Option<ListenSpec>,
    /// Concurrent connections (worker threads in cluster mode).
    pub connections: usize,
    /// Benchmark whose test trace is replayed.
    pub benchmark: String,
    /// Population to predict.
    pub kind: ModelKind,
    /// Prediction-table index width.
    pub index_bits: u32,
    /// Model shard count. `None` means: adopt the server's (with
    /// `--no-train`) or the routing table's (cluster mode) or default
    /// to `connections` (fresh train) — never silently guess against a
    /// model that already exists.
    pub shards: Option<usize>,
    /// Records taken from the head of the test trace (including the
    /// skipped prefix).
    pub records: usize,
    /// Records at the head *not* sent to the server (the offline
    /// reference still replays them — the warm-restart oracle).
    pub skip: usize,
    /// Maximum records per batch (actual sizes are seeded-random in
    /// `1..=batch`).
    pub batch: usize,
    /// Seed for the batch-size stream.
    pub seed: u64,
    /// Send every Nth batch via `update` instead of `predict`
    /// (0 = always predict; ignored in cluster mode).
    pub update_every: usize,
    /// Workload scale (must match the server's).
    pub scale: Scale,
    /// Drive a pre-trained model instead of training one.
    pub no_train: bool,
    /// After the replay, ask the server to snapshot to this path.
    pub save: Option<String>,
    /// Cluster mode: the routing-table file `vlpp cluster` wrote.
    pub routing: Option<PathBuf>,
    /// Cluster mode: SIGKILL this node id mid-run.
    pub kill: Option<String>,
    /// Cluster mode: batches to complete before the kill fires.
    pub kill_after: u64,
    /// Send `shutdown` after the run.
    pub shutdown: bool,
    /// Socket read/write deadline on every connection, in milliseconds
    /// (0 = unbounded). A call that outlives the deadline surfaces as a
    /// typed timeout error instead of hanging the run.
    pub io_timeout_ms: u64,
    /// Connect retry budget: refused or timed-out connect attempts are
    /// retried with backoff this many times (single-server mode only —
    /// in cluster mode a refused connect *is* the death signal the
    /// failover logic feeds on, so it is never retried in place).
    pub retries: u32,
    /// Base backoff between connect retries, in milliseconds; doubles
    /// per attempt.
    pub retry_backoff_ms: u64,
    /// Cluster mode: when a node dies, wait up to this long for the
    /// supervisor to respawn it (observed as a routing-table version
    /// bump with a new pid) and retry on the replacement, instead of
    /// failing over to the partner (0 = fail over immediately).
    pub wait_respawn_ms: u64,
}

const LOADGEN_USAGE: &str = "\
usage: vlpp loadgen (--addr HOST:PORT | --uds PATH | --routing FILE)
                    [--connections N] [--benchmark NAME] [--kind cond|ind]
                    [--index-bits N] [--shards N] [--records N] [--skip N]
                    [--batch N] [--seed N] [--update-every K] [--scale N]
                    [--no-train] [--save FILE]
                    [--kill NODE --kill-after BATCHES] [--shutdown]
                    [--io-timeout-ms MS] [--retries N] [--retry-backoff-ms MS]
                    [--wait-respawn MS]

Trains a model on the server (or adopts a pre-trained one with
--no-train), replays a synthetic trace over N connections, and fails
unless every served prediction is byte-identical to the offline
reference. With --routing the same oracle drives a `vlpp cluster`:
predict goes to each shard's primary, the identical batch to its
replica, and --kill proves the oracle holds across a failover. Prints
one `LOADGEN {json}` summary line.
";

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

/// Parses `vlpp loadgen` arguments. Counts that must be positive are
/// *rejected* at zero with a typed error — never silently clamped to 1,
/// which would run something other than what was asked for.
///
/// # Errors
///
/// [`VlppError::Cli`] on unknown flags, malformed or out-of-range
/// values, or a missing target address.
pub fn parse_loadgen_args(args: &[String]) -> Result<LoadgenOptions, VlppError> {
    let mut options = LoadgenOptions {
        target: None,
        connections: 4,
        benchmark: "compress".to_string(),
        kind: ModelKind::Conditional,
        index_bits: 10,
        shards: None,
        records: 20_000,
        skip: 0,
        batch: 256,
        seed: 0x5eed_1e77,
        update_every: 0,
        scale: Scale::from_env(),
        no_train: false,
        save: None,
        routing: None,
        kill: None,
        kill_after: 4,
        shutdown: false,
        io_timeout_ms: 10_000,
        retries: 3,
        retry_backoff_ms: 100,
        wait_respawn_ms: 0,
    };

    fn parse_num<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> Result<T, VlppError> {
        value
            .and_then(|v| v.parse::<T>().ok())
            .ok_or_else(|| cli_error(format!("{flag} needs a number")))
    }

    fn parse_positive(value: Option<&String>, flag: &str) -> Result<usize, VlppError> {
        let n = parse_num::<usize>(value, flag)?;
        if n == 0 {
            return Err(cli_error(format!(
                "{flag} must be at least 1 (got 0; refusing to guess what zero means)"
            )));
        }
        Ok(n)
    }

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let addr = iter.next().ok_or_else(|| cli_error("--addr needs HOST:PORT"))?;
                options.target = Some(ListenSpec::Tcp(addr.clone()));
            }
            "--uds" => {
                let path = iter.next().ok_or_else(|| cli_error("--uds needs a socket path"))?;
                options.target = Some(ListenSpec::Unix(PathBuf::from(path)));
            }
            "--routing" => {
                let path = iter.next().ok_or_else(|| cli_error("--routing needs a file path"))?;
                options.routing = Some(PathBuf::from(path));
            }
            "--connections" => {
                options.connections = parse_positive(iter.next(), "--connections")?;
            }
            "--benchmark" => {
                options.benchmark =
                    iter.next().ok_or_else(|| cli_error("--benchmark needs a name"))?.clone();
            }
            "--kind" => {
                let name = iter.next().ok_or_else(|| cli_error("--kind needs cond|ind"))?;
                options.kind = ModelKind::from_name(name)
                    .ok_or_else(|| cli_error(format!("unknown kind `{name}` (cond|ind)")))?;
            }
            "--index-bits" => options.index_bits = parse_num::<u32>(iter.next(), "--index-bits")?,
            "--shards" => options.shards = Some(parse_positive(iter.next(), "--shards")?),
            "--records" => options.records = parse_num::<usize>(iter.next(), "--records")?,
            "--skip" => options.skip = parse_num::<usize>(iter.next(), "--skip")?,
            "--batch" => options.batch = parse_positive(iter.next(), "--batch")?,
            "--seed" => options.seed = parse_num::<u64>(iter.next(), "--seed")?,
            "--update-every" => {
                options.update_every = parse_num::<usize>(iter.next(), "--update-every")?
            }
            "--scale" => {
                let divisor = parse_num::<u64>(iter.next(), "--scale")?;
                if divisor == 0 {
                    return Err(cli_error(
                        "--scale must be at least 1 (got 0; refusing to guess what zero means)",
                    ));
                }
                options.scale = Scale::new(divisor);
            }
            "--no-train" => options.no_train = true,
            "--save" => {
                let path = iter.next().ok_or_else(|| cli_error("--save needs a file path"))?;
                options.save = Some(path.clone());
            }
            "--kill" => {
                let node = iter.next().ok_or_else(|| cli_error("--kill needs a node id"))?;
                options.kill = Some(node.clone());
            }
            "--kill-after" => options.kill_after = parse_num::<u64>(iter.next(), "--kill-after")?,
            "--shutdown" => options.shutdown = true,
            "--io-timeout-ms" => {
                options.io_timeout_ms = parse_num::<u64>(iter.next(), "--io-timeout-ms")?
            }
            "--retries" => options.retries = parse_num::<u32>(iter.next(), "--retries")?,
            "--retry-backoff-ms" => {
                options.retry_backoff_ms = parse_num::<u64>(iter.next(), "--retry-backoff-ms")?
            }
            "--wait-respawn" => {
                options.wait_respawn_ms = parse_num::<u64>(iter.next(), "--wait-respawn")?
            }
            "--help" | "-h" => return Err(cli_error(LOADGEN_USAGE)),
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{LOADGEN_USAGE}")))
            }
        }
    }
    if options.routing.is_none() {
        if options.target.is_none() {
            return Err(cli_error(format!("missing --addr/--uds/--routing\n{LOADGEN_USAGE}")));
        }
        if options.kill.is_some() {
            return Err(cli_error("--kill needs cluster mode (--routing FILE)"));
        }
        if options.wait_respawn_ms > 0 {
            return Err(cli_error("--wait-respawn needs cluster mode (--routing FILE)"));
        }
    }
    if options.skip >= options.records && options.records > 0 {
        return Err(cli_error(format!(
            "--skip {} leaves nothing of the {} records to send",
            options.skip, options.records
        )));
    }
    Ok(options)
}

/// One framed-protocol client connection. Shared with `vlpp cluster`,
/// whose supervisor speaks the same wire protocol for `ping` probes and
/// `sync` snapshot pulls.
pub(crate) struct Client {
    conn: super::Conn,
    next_id: u64,
}

impl Client {
    /// Connects once, arming `io_timeout_ms` read/write deadlines on
    /// the socket (0 = unbounded).
    pub(crate) fn connect(target: &ListenSpec, io_timeout_ms: u64) -> Result<Client, VlppError> {
        let conn = match target {
            ListenSpec::Tcp(addr) => TcpStream::connect(addr)
                .map(super::Conn::Tcp)
                .map_err(|source| VlppError::io(addr, "connect", source))?,
            #[cfg(unix)]
            ListenSpec::Unix(path) => UnixStream::connect(path)
                .map(super::Conn::Unix)
                .map_err(|source| VlppError::io(path.clone(), "connect", source))?,
            #[cfg(not(unix))]
            ListenSpec::Unix(path) => {
                return Err(cli_error(format!(
                    "unix socket {} unsupported on this target",
                    path.display()
                )));
            }
        };
        conn.set_timeouts(io_timeout_ms);
        Ok(Client { conn, next_id: 1 })
    }

    /// Connects with a retry budget: a transport-level connect failure
    /// (refused, reset, timed out) backs off and retries up to
    /// `retries` times, doubling `backoff_ms` per attempt and counting
    /// each retry in `loadgen.retries`. Only *connects* retry — a verb
    /// call is never replayed, because `predict`/`update` mutate model
    /// state and a blind replay would double-apply a batch.
    pub(crate) fn connect_retry(
        target: &ListenSpec,
        io_timeout_ms: u64,
        retries: u32,
        backoff_ms: u64,
    ) -> Result<Client, VlppError> {
        let mut attempt = 0u32;
        loop {
            match Client::connect(target, io_timeout_ms) {
                Ok(client) => return Ok(client),
                Err(error @ VlppError::Io { .. }) if attempt < retries => {
                    attempt += 1;
                    vlpp_metrics::counter("loadgen.retries").incr();
                    let wait = backoff_ms.saturating_mul(1u64 << (attempt - 1).min(6));
                    eprintln!(
                        "loadgen: connect failed ({error}); retry {attempt}/{retries} in {wait}ms"
                    );
                    thread::sleep(std::time::Duration::from_millis(wait));
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Calls the `sync` verb and reassembles the streamed snapshot:
    /// reads the response header, then the `chunks` binary frames that
    /// follow it, and checks the reassembled length against the
    /// header's declared `bytes`. Returns the raw VLPS envelope bytes
    /// and the header.
    pub(crate) fn fetch_sync(
        &mut self,
        model: Option<&str>,
    ) -> Result<(Vec<u8>, JsonValue), VlppError> {
        let mut fields = Vec::new();
        if let Some(model) = model {
            fields.push(("model".to_string(), JsonValue::Str(model.to_string())));
        }
        let sync_error = |message: String| VlppError::protocol(Some("sync".to_string()), message);
        let response = self.call("sync", fields)?;
        let declared = response
            .get("bytes")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| sync_error("sync response has no byte count".to_string()))?;
        let chunks = response
            .get("chunks")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| sync_error("sync response has no chunk count".to_string()))?;
        // A chunk is never empty, so more chunks than bytes (or a
        // multi-gigabyte claim) is a damaged or hostile header — bound
        // the read before allocating anything.
        if declared > 1 << 31 || chunks > declared || (declared > 0 && chunks == 0) {
            return Err(sync_error(format!(
                "implausible sync header: {declared} bytes in {chunks} chunks"
            )));
        }
        let mut bytes = Vec::with_capacity(declared as usize);
        for index in 0..chunks {
            let frame = read_frame(&mut self.conn)?.ok_or_else(|| {
                sync_error(format!("sync stream ended at chunk {index} of {chunks}"))
            })?;
            bytes.extend_from_slice(&frame);
        }
        if bytes.len() as u64 != declared {
            return Err(sync_error(format!(
                "sync stream reassembled {} bytes, header declared {declared}",
                bytes.len()
            )));
        }
        Ok((bytes, response))
    }

    /// Sends one request object and reads its response, checking the
    /// echoed id and the `ok` flag.
    pub(crate) fn call(
        &mut self,
        verb: &str,
        mut fields: Vec<(String, JsonValue)>,
    ) -> Result<JsonValue, VlppError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut request = vec![
            ("verb".to_string(), JsonValue::Str(verb.to_string())),
            ("id".to_string(), JsonValue::UInt(id)),
        ];
        request.append(&mut fields);
        write_frame(&mut self.conn, JsonValue::Object(request).to_string().as_bytes())?;
        let payload = read_frame(&mut self.conn)?.ok_or_else(|| {
            VlppError::protocol(
                Some(verb.to_string()),
                "server closed the connection before responding",
            )
        })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| VlppError::protocol(Some(verb.to_string()), "response is not UTF-8"))?;
        let response = JsonValue::parse(text)
            .map_err(|source| VlppError::Json { what: "response frame".to_string(), source })?;
        if response.get("ok").and_then(|v| v.as_bool()) != Some(true) {
            let detail = response
                .get("error")
                .map(|error| error.to_json_string())
                .unwrap_or_else(|| response.to_json_string());
            return Err(VlppError::protocol(
                Some(verb.to_string()),
                format!("server error: {detail}"),
            ));
        }
        if response.get("id").and_then(|v| v.as_u64()) != Some(id) {
            return Err(VlppError::protocol(
                Some(verb.to_string()),
                "response id does not match the request (reordered responses?)",
            ));
        }
        Ok(response)
    }
}

/// What one connection thread did.
struct ConnReport {
    /// `(trace_index, served prediction rendered compactly)` for every
    /// record that went through `predict`.
    served: Vec<(usize, String)>,
    batches: u64,
    predicted: u64,
    updated: u64,
    failovers: u64,
}

fn records_json(batch: &[(usize, BranchRecord)]) -> JsonValue {
    JsonValue::Array(batch.iter().map(|(_, record)| record_to_json(record)).collect())
}

fn batch_body(model: &str, batch: &[(usize, BranchRecord)]) -> Vec<(String, JsonValue)> {
    vec![
        ("model".to_string(), JsonValue::Str(model.to_string())),
        ("records".to_string(), records_json(batch)),
    ]
}

/// Extracts and oracle-checks the predictions array of one `predict`
/// response.
fn collect_predictions(
    response: &JsonValue,
    batch: &[(usize, BranchRecord)],
    report: &mut ConnReport,
) -> Result<(), VlppError> {
    let predictions = response.get("predictions").and_then(|p| p.as_array()).ok_or_else(|| {
        VlppError::protocol(
            Some("predict".to_string()),
            "response is missing its predictions array",
        )
    })?;
    if predictions.len() != batch.len() {
        return Err(VlppError::protocol(
            Some("predict".to_string()),
            format!("sent {} records, got {} predictions", batch.len(), predictions.len()),
        ));
    }
    for ((index, _), prediction) in batch.iter().zip(predictions) {
        report.served.push((*index, prediction.to_json_string()));
    }
    report.predicted += batch.len() as u64;
    Ok(())
}

fn drive_connection(
    target: &ListenSpec,
    model: &str,
    work: &[(usize, BranchRecord)],
    options: &LoadgenOptions,
    mut rng: XorShift64,
) -> Result<ConnReport, VlppError> {
    let batch_max = options.batch;
    let update_every = options.update_every;
    let mut client = Client::connect_retry(
        target,
        options.io_timeout_ms,
        options.retries,
        options.retry_backoff_ms,
    )?;
    let mut report = ConnReport {
        served: Vec::with_capacity(work.len()),
        batches: 0,
        predicted: 0,
        updated: 0,
        failovers: 0,
    };
    let mut cursor = 0usize;
    while cursor < work.len() {
        let size = (1 + rng.next_u64() % batch_max as u64) as usize;
        let batch = &work[cursor..(cursor + size).min(work.len())];
        cursor += batch.len();
        report.batches += 1;
        let is_update = update_every > 0 && report.batches.is_multiple_of(update_every as u64);
        if is_update {
            client.call("update", batch_body(model, batch))?;
            report.updated += batch.len() as u64;
            continue;
        }
        let response = client.call("predict", batch_body(model, batch))?;
        collect_predictions(&response, batch, &mut report)?;
    }
    Ok(report)
}

/// `vlpp loadgen` entry point.
///
/// # Errors
///
/// [`VlppError::Cli`] for bad arguments or a failed run (prediction
/// mismatches, stats divergence); transport and protocol errors pass
/// through typed.
pub fn loadgen_main(args: &[String]) -> Result<(), VlppError> {
    let options = parse_loadgen_args(args)?;
    let summary = run_loadgen(&options)?;
    println!("LOADGEN {summary}");
    Ok(())
}

/// The offline reference and the record stream the run replays.
struct Reference {
    spec: ModelSpec,
    model: Model,
    records: Vec<BranchRecord>,
    expected: Vec<String>,
}

impl Reference {
    fn build(options: &LoadgenOptions, spec: ModelSpec) -> Result<Reference, VlppError> {
        // The offline reference: the same model code, driven
        // sequentially in trace order. Profiling is deterministic, so
        // this instance is state-identical to the one the server
        // trained (or snapshotted).
        let workloads = Workloads::new(options.scale);
        let model = Model::train(spec.clone(), &workloads)?;
        let benchmark = vlpp_synth::suite::benchmark(&spec.benchmark)
            .ok_or_else(|| cli_error(format!("unknown benchmark `{}`", spec.benchmark)))?;
        let records: Vec<BranchRecord> =
            workloads.test_trace(&benchmark).iter().take(options.records).copied().collect();
        if records.len() <= options.skip {
            return Err(cli_error(format!(
                "no records to replay ({} records, {} skipped)",
                records.len(),
                options.skip
            )));
        }
        let expected: Vec<String> = model
            .apply_sequential(&records)
            .iter()
            .map(|slot| slot.to_json())
            .map(|json| json.to_string())
            .collect();
        Ok(Reference { spec, model, records, expected })
    }

    /// Partitions the *unskipped* tail by shard, then folds the shard
    /// streams onto `buckets` workers: bucket `c` owns shards
    /// `s % buckets == c`, each shard's records in trace order.
    fn partitions(&self, skip: usize, buckets: usize) -> Vec<Vec<(usize, BranchRecord)>> {
        let mut partitions: Vec<Vec<(usize, BranchRecord)>> = vec![Vec::new(); buckets];
        for (index, record) in self.records.iter().enumerate().skip(skip) {
            let shard = self.model.owner(record.pc());
            partitions[shard % buckets].push((index, *record));
        }
        partitions
    }
}

/// Resolves the model spec the run drives, satisfying the shard
/// contract *before* any record is sent:
///
/// - Fresh train: `--shards` (default `connections`) is authoritative;
///   the server's train response must echo it back.
/// - `--no-train`: the server's existing model is authoritative; its
///   spec is fetched over the `stats` verb at connect time, and a
///   conflicting explicit flag is a fail-fast error — silently driving
///   a model whose shard count differs from the router's would send
///   records to the wrong shard and (rightly) fail the oracle later,
///   but with a far worse diagnostic.
fn resolve_spec(
    options: &LoadgenOptions,
    control: &mut Client,
    name: &str,
) -> Result<ModelSpec, VlppError> {
    if !options.no_train {
        let shards = options.shards.unwrap_or(options.connections);
        let spec = ModelSpec {
            name: name.to_string(),
            benchmark: options.benchmark.clone(),
            trace: None,
            kind: options.kind,
            index_bits: options.index_bits,
            shards,
        };
        let response = train_on(control, &spec)?;
        let echoed = response.get("shards").and_then(|v| v.as_u64());
        if echoed != Some(shards as u64) {
            return Err(cli_error(format!(
                "shard mismatch: asked the server to train {shards} shards, it trained {echoed:?}"
            )));
        }
        return Ok(spec);
    }
    let response =
        control.call("stats", vec![("model".to_string(), JsonValue::Str(name.to_string()))])?;
    let stats = response.get("stats").cloned().ok_or_else(|| {
        VlppError::protocol(Some("stats".to_string()), "stats response has no stats object")
    })?;
    let server_shards = stats.get("shards").and_then(|v| v.as_u64()).ok_or_else(|| {
        VlppError::protocol(Some("stats".to_string()), "stats response has no shard count")
    })? as usize;
    if let Some(asked) = options.shards {
        if asked != server_shards {
            return Err(cli_error(format!(
                "shard mismatch: server model `{name}` has {server_shards} shards, \
                 --shards says {asked}; records would be routed to the wrong shard \
                 (drop --shards to adopt the server's count)"
            )));
        }
    }
    let server_benchmark =
        stats.get("benchmark").and_then(|v| v.as_str()).unwrap_or_default().to_string();
    let server_kind = stats.get("kind").and_then(|v| v.as_str()).unwrap_or_default().to_string();
    let server_bits = stats.get("index_bits").and_then(|v| v.as_u64()).unwrap_or_default() as u32;
    if server_benchmark != options.benchmark {
        return Err(cli_error(format!(
            "benchmark mismatch: server model `{name}` was trained on `{server_benchmark}`, \
             loadgen is replaying `{}`",
            options.benchmark
        )));
    }
    let kind = ModelKind::from_name(&server_kind)
        .ok_or_else(|| cli_error(format!("server reports unknown kind `{server_kind}`")))?;
    if kind != options.kind {
        return Err(cli_error(format!(
            "kind mismatch: server model `{name}` is `{server_kind}`, --kind says `{}`",
            options.kind.name()
        )));
    }
    if server_bits != options.index_bits {
        return Err(cli_error(format!(
            "index-bits mismatch: server model `{name}` has {server_bits}, \
             --index-bits says {}",
            options.index_bits
        )));
    }
    Ok(ModelSpec {
        name: name.to_string(),
        benchmark: options.benchmark.clone(),
        trace: None,
        kind,
        index_bits: server_bits,
        shards: server_shards,
    })
}

fn train_on(client: &mut Client, spec: &ModelSpec) -> Result<JsonValue, VlppError> {
    client.call(
        "train",
        vec![
            ("model".to_string(), JsonValue::Str(spec.name.clone())),
            ("benchmark".to_string(), JsonValue::Str(spec.benchmark.clone())),
            ("kind".to_string(), JsonValue::Str(spec.kind.name().to_string())),
            ("index_bits".to_string(), JsonValue::UInt(spec.index_bits as u64)),
            ("shards".to_string(), JsonValue::UInt(spec.shards as u64)),
        ],
    )
}

/// Runs the full loadgen cycle, returning the summary document.
///
/// # Errors
///
/// See [`loadgen_main`].
pub fn run_loadgen(options: &LoadgenOptions) -> Result<JsonValue, VlppError> {
    if options.routing.is_some() {
        return run_cluster_loadgen(options);
    }
    let target = options
        .target
        .clone()
        .ok_or_else(|| cli_error("missing --addr/--uds (single-server mode)"))?;
    vlpp_metrics::counter("loadgen.retries");
    let mut control = Client::connect_retry(
        &target,
        options.io_timeout_ms,
        options.retries,
        options.retry_backoff_ms,
    )?;
    let spec = resolve_spec(options, &mut control, "loadgen")?;
    let reference = Reference::build(options, spec)?;
    let partitions = reference.partitions(options.skip, options.connections);

    let reports: Vec<Result<ConnReport, VlppError>> = thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .enumerate()
            .map(|(c, work)| {
                let rng = XorShift64::new(options.seed ^ mix(c as u64 + 1));
                let target = &target;
                let spec = &reference.spec;
                scope.spawn(move || drive_connection(target, &spec.name, work, options, rng))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| {
                    Err(VlppError::protocol(None, "a loadgen connection thread panicked"))
                })
            })
            .collect()
    });

    let mut tally = Tally::default();
    for report in reports {
        tally.absorb(report?, &reference.expected);
    }

    // Cross-check the aggregate counters: the server saw every record
    // exactly once (the skipped prefix through the snapshot it warmed
    // from), so its stats must equal the offline reference's.
    let stats = control
        .call("stats", vec![("model".to_string(), JsonValue::Str(reference.spec.name.clone()))])?;
    let served_stats = stats.get("stats").cloned().unwrap_or(JsonValue::Null);
    let stats_match = served_stats.to_string() == reference.model.stats_json().to_string();

    let mut extra = Vec::new();
    if let Some(path) = &options.save {
        let response = control.call(
            "save",
            vec![
                ("path".to_string(), JsonValue::Str(path.clone())),
                ("model".to_string(), JsonValue::Str(reference.spec.name.clone())),
            ],
        )?;
        extra.push(("saved".to_string(), JsonValue::Str(path.clone())));
        extra.push((
            "snapshot_bytes".to_string(),
            response.get("bytes").cloned().unwrap_or(JsonValue::Null),
        ));
    }
    if options.shutdown {
        control.call("shutdown", vec![])?;
    }
    finish_summary(options, &reference, tally, stats_match, extra)
}

/// Mismatch accounting shared by both modes.
#[derive(Default)]
struct Tally {
    batches: u64,
    predicted: u64,
    updated: u64,
    failovers: u64,
    mismatches: u64,
    first_mismatch: Option<(usize, String)>,
}

impl Tally {
    fn absorb(&mut self, report: ConnReport, expected: &[String]) {
        self.batches += report.batches;
        self.predicted += report.predicted;
        self.updated += report.updated;
        self.failovers += report.failovers;
        for (index, served) in report.served {
            if served != expected[index] {
                self.mismatches += 1;
                if self.first_mismatch.is_none() {
                    self.first_mismatch = Some((index, served.clone()));
                }
            }
        }
    }
}

fn finish_summary(
    options: &LoadgenOptions,
    reference: &Reference,
    tally: Tally,
    stats_match: bool,
    extra: Vec<(String, JsonValue)>,
) -> Result<JsonValue, VlppError> {
    let mut summary = vec![
        ("connections".to_string(), JsonValue::UInt(options.connections as u64)),
        ("shards".to_string(), JsonValue::UInt(reference.spec.shards as u64)),
        ("records".to_string(), JsonValue::UInt(reference.records.len() as u64)),
        ("skipped".to_string(), JsonValue::UInt(options.skip as u64)),
        ("batches".to_string(), JsonValue::UInt(tally.batches)),
        ("predicted".to_string(), JsonValue::UInt(tally.predicted)),
        ("updated".to_string(), JsonValue::UInt(tally.updated)),
        ("failovers".to_string(), JsonValue::UInt(tally.failovers)),
        ("mismatches".to_string(), JsonValue::UInt(tally.mismatches)),
        ("stats_match".to_string(), JsonValue::Bool(stats_match)),
    ];
    summary.extend(extra);
    if let Some((index, served)) = tally.first_mismatch {
        let record = &reference.records[index];
        summary.push((
            "first_mismatch".to_string(),
            JsonValue::Object(vec![
                ("index".to_string(), JsonValue::UInt(index as u64)),
                ("shard".to_string(), JsonValue::UInt(reference.model.owner(record.pc()) as u64)),
                ("served".to_string(), JsonValue::Str(served)),
                ("expected".to_string(), JsonValue::Str(reference.expected[index].clone())),
            ]),
        ));
    }
    let summary = JsonValue::Object(summary);
    if tally.mismatches > 0 || !stats_match {
        return Err(cli_error(format!(
            "served predictions diverged from the offline reference: LOADGEN {summary}"
        )));
    }
    Ok(summary)
}

// ---------------------------------------------------------------------
// Cluster mode
// ---------------------------------------------------------------------

/// Whether an error means "the node died" (failover) rather than "the
/// run is wrong" (fail). Transport errors and mid-frame closes are
/// deaths; a clean protocol-level error from a live server is not.
fn is_connection_death(error: &VlppError) -> bool {
    match error {
        VlppError::Io { .. } | VlppError::Frame { .. } => true,
        VlppError::Protocol { message, .. } => message.contains("closed the connection"),
        _ => false,
    }
}

/// Typed degraded-mode error: both owners of a shard are down and no
/// replacement has been promoted, so the shard's sub-stream cannot make
/// progress. The `shard_unavailable:` prefix is the stable grammar
/// tests and operators match on.
fn shard_unavailable(verb: &str, shard: usize, primary: &str, replica: &str) -> VlppError {
    VlppError::protocol(
        Some(verb.to_string()),
        format!(
            "shard_unavailable: shard {shard} has no live owner \
             (primary `{primary}` and replica `{replica}` are both down)"
        ),
    )
}

/// Cluster-wide shared state: the current routing table (re-read from
/// disk as the supervisor rewrites it), who is known dead, and the
/// global batch counter the killer thread watches.
struct ClusterCtx {
    /// The routing file `vlpp cluster` owns — the supervisor rewrites
    /// it (with a bumped version) on every membership change.
    routing_path: PathBuf,
    table: Mutex<RoutingTable>,
    dead: Mutex<HashSet<String>>,
    batches_done: AtomicU64,
    io_timeout_ms: u64,
    wait_respawn_ms: u64,
}

impl ClusterCtx {
    /// Reads and validates a routing-table file.
    fn load_table(path: &std::path::Path) -> Result<RoutingTable, VlppError> {
        let text = std::fs::read_to_string(path)
            .map_err(|source| VlppError::io(path.to_path_buf(), "read", source))?;
        let value = JsonValue::parse(text.trim())
            .map_err(|source| VlppError::Json { what: "routing table".to_string(), source })?;
        RoutingTable::from_json(&value).map_err(|message| {
            cli_error(format!("bad routing table {}: {message}", path.display()))
        })
    }

    fn version(&self) -> u64 {
        lock(&self.table).version()
    }

    /// The shard's owner ids, `(primary, replica)`. These are stable
    /// across respawns — the supervisor replaces a node's addr/pid
    /// under the same id precisely so assignments never move.
    fn owners(&self, shard: usize) -> (String, String) {
        let table = lock(&self.table);
        (table.primary(shard).id.clone(), table.replica(shard).id.clone())
    }

    fn addr_of(&self, id: &str) -> Option<String> {
        lock(&self.table).nodes().iter().find(|n| n.id == id).map(|n| n.addr.clone())
    }

    fn is_dead(&self, id: &str) -> bool {
        lock(&self.dead).contains(id)
    }

    fn mark_dead(&self, id: &str) {
        vlpp_metrics::counter("cluster.failovers").incr();
        if lock(&self.dead).insert(id.to_string()) {
            eprintln!("loadgen: node `{id}` stopped answering; failing over");
        }
    }

    /// Re-reads the routing file and adopts it only if its version is
    /// *strictly newer* — a stale or unreadable file never regresses
    /// the in-memory view. A node whose pid changed in the new table is
    /// a promoted replacement, so its dead mark is cleared and traffic
    /// may route to it again. Returns whether a newer table was
    /// adopted.
    fn try_reload(&self) -> bool {
        let Ok(incoming) = Self::load_table(&self.routing_path) else { return false };
        let mut table = lock(&self.table);
        if incoming.version() <= table.version() {
            return false;
        }
        let mut dead = lock(&self.dead);
        for node in incoming.nodes() {
            let respawned =
                table.nodes().iter().any(|old| old.id == node.id && old.pid != node.pid);
            if respawned && dead.remove(&node.id) {
                eprintln!(
                    "loadgen: adopted routing v{}; `{}` respawned at {}",
                    incoming.version(),
                    node.id,
                    node.addr
                );
            }
        }
        *table = incoming;
        true
    }

    /// Blocks until the supervisor promotes a replacement for `id`
    /// (its dead mark clears via [`try_reload`](Self::try_reload)) or
    /// the `--wait-respawn` budget runs out, which is a typed error —
    /// a worker must never wait forever on a cluster that has stopped
    /// healing.
    fn await_respawn(&self, id: &str, shard: usize) -> Result<(), VlppError> {
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_millis(self.wait_respawn_ms);
        loop {
            self.try_reload();
            if !self.is_dead(id) {
                return Ok(());
            }
            if std::time::Instant::now() >= deadline {
                return Err(VlppError::protocol(
                    None,
                    format!(
                        "waited {}ms for node `{id}` (shard {shard}) to respawn; \
                         the routing table never advanced past version {}",
                        self.wait_respawn_ms,
                        self.version()
                    ),
                ));
            }
            thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A worker's lazily-connected clients, one per node.
struct NodePool<'a> {
    ctx: &'a ClusterCtx,
    clients: HashMap<String, Client>,
}

impl<'a> NodePool<'a> {
    fn new(ctx: &'a ClusterCtx) -> Self {
        NodePool { ctx, clients: HashMap::new() }
    }

    /// Calls `verb` on the node named `id`, translating node death into
    /// `Err(None)` (so the caller fails over) and real errors into
    /// `Err(Some(error))`.
    fn call(
        &mut self,
        id: &str,
        verb: &str,
        fields: Vec<(String, JsonValue)>,
    ) -> Result<JsonValue, Option<VlppError>> {
        if self.ctx.is_dead(id) {
            return Err(None);
        }
        let client = match self.clients.entry(id.to_string()) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                // Resolve the address at connect time: after a respawn
                // the id survives but the addr does not. No retry
                // budget here — in cluster mode a refused connect *is*
                // the death signal failover feeds on.
                let addr = self
                    .ctx
                    .addr_of(id)
                    .ok_or_else(|| Some(cli_error(format!("unknown node `{id}`"))))?;
                match Client::connect(&ListenSpec::Tcp(addr), self.ctx.io_timeout_ms) {
                    Ok(client) => slot.insert(client),
                    Err(error) if is_connection_death(&error) => {
                        self.ctx.mark_dead(id);
                        return Err(None);
                    }
                    Err(error) => return Err(Some(error)),
                }
            }
        };
        match client.call(verb, fields) {
            Ok(response) => Ok(response),
            Err(error) if is_connection_death(&error) => {
                self.clients.remove(id);
                self.ctx.mark_dead(id);
                Err(None)
            }
            Err(error) => Err(Some(error)),
        }
    }
}

/// Reads the node's applied-record count for `shard`: the per-shard
/// `predictions` counter, which every applied record bumps exactly once
/// (`predict` and `update` drive the same state transition).
fn shard_records(
    pool: &mut NodePool,
    model: &str,
    id: &str,
    shard: usize,
) -> Result<u64, Option<VlppError>> {
    let body = vec![("model".to_string(), JsonValue::Str(model.to_string()))];
    let response = pool.call(id, "stats", body)?;
    response
        .get("stats")
        .and_then(|s| s.get("per_shard"))
        .and_then(|v| v.as_array())
        .and_then(|a| a.get(shard))
        .and_then(|e| e.get("predictions"))
        .and_then(|v| v.as_u64())
        .ok_or_else(|| {
            Some(VlppError::protocol(
                Some("stats".to_string()),
                format!("node `{id}` stats lack per_shard[{shard}].predictions"),
            ))
        })
}

/// Drives one worker's shards through the cluster: per batch, predict
/// on the shard's primary and the identical records on its replica via
/// `update`. A dying node fails over to its partner — or, with
/// `--wait-respawn`, the worker pauses the shard until the supervisor
/// promotes a replacement and then retries on it. Both owners being
/// down is the typed `shard_unavailable` error.
fn drive_cluster_worker(
    ctx: &ClusterCtx,
    model: &str,
    shards: &[usize],
    work: &HashMap<usize, Vec<(usize, BranchRecord)>>,
    batch_max: usize,
    mut rng: XorShift64,
) -> Result<ConnReport, VlppError> {
    let mut pool = NodePool::new(ctx);
    let mut report =
        ConnReport { served: Vec::new(), batches: 0, predicted: 0, updated: 0, failovers: 0 };
    for &shard in shards {
        let Some(stream) = work.get(&shard) else { continue };
        let (primary, replica) = ctx.owners(shard);
        let mut cursor = 0usize;
        while cursor < stream.len() {
            let size = (1 + rng.next_u64() % batch_max as u64) as usize;
            let batch = &stream[cursor..(cursor + size).min(stream.len())];
            cursor += batch.len();
            report.batches += 1;
            // Predict on the primary; on death, the replica holds the
            // identical state as of the last batch boundary (it has
            // applied every prior batch via `update`), so the same
            // predict must yield byte-identical output there. A failed
            // predict was applied nowhere — the replica only sees a
            // batch *after* its predict succeeds — so retrying it on a
            // replacement warm-started from the replica is exact.
            let mut write_targets = [Some(&primary), Some(&replica)];
            let response = loop {
                match pool.call(&primary, "predict", batch_body(model, batch)) {
                    Ok(response) => {
                        write_targets[0] = None; // primary already trained
                        break response;
                    }
                    Err(Some(error)) => return Err(error),
                    Err(None) if ctx.wait_respawn_ms > 0 => {
                        report.failovers += 1;
                        eprintln!(
                            "loadgen: shard {shard} predict at record {} pausing for \
                             respawn of `{primary}`",
                            batch[0].0
                        );
                        ctx.await_respawn(&primary, shard)?;
                    }
                    Err(None) => {
                        report.failovers += 1;
                        write_targets = [None, None];
                        match pool.call(&replica, "predict", batch_body(model, batch)) {
                            Ok(response) => break response,
                            Err(Some(error)) => return Err(error),
                            Err(None) => {
                                return Err(shard_unavailable(
                                    "predict", shard, &primary, &replica,
                                ));
                            }
                        }
                    }
                }
            };
            collect_predictions(&response, batch, &mut report)?;
            // Fan the identical batch to the replica (unless it just
            // served the predict itself). `update` applies the same
            // state transition as `predict`, so the two kernels stay
            // byte-identical. A replica dying here ends the fan-out —
            // the primary remains the shard's single owner — unless
            // `--wait-respawn` is set, in which case the worker waits
            // for the replacement and then reconciles: the supervisor's
            // resync pull races this batch's predict, so the
            // replacement warm-started from the primary holds either
            // the pre-batch or the post-batch boundary (the stability
            // double-pull pins it to a boundary, never mid-batch).
            // Comparing applied-record counters tells which side; the
            // batch is resent iff the pull missed it. A blind resend
            // would double-apply, a blind skip drops the batch from the
            // replica lineage — a divergence invisible until ANOTHER
            // failover promotes that lineage.
            if let Some(target) = write_targets[1] {
                loop {
                    match pool.call(target, "update", batch_body(model, batch)) {
                        Ok(_) => {
                            report.updated += batch.len() as u64;
                            break;
                        }
                        Err(Some(error)) => return Err(error),
                        Err(None) if ctx.wait_respawn_ms > 0 => {
                            report.failovers += 1;
                            eprintln!(
                                "loadgen: shard {shard} update at record {} pausing for \
                                 respawn of `{target}`",
                                batch[0].0
                            );
                            ctx.await_respawn(target, shard)?;
                            let counts =
                                shard_records(&mut pool, model, target, shard).and_then(|have| {
                                    shard_records(&mut pool, model, &primary, shard)
                                        .map(|want| (have, want))
                                });
                            match counts {
                                Ok((have, want)) if have == want => break,
                                // The gap is the in-flight batch. It can
                                // be SMALLER than batch.len(): static
                                // branches bypass the predictor table and
                                // do not move the counter.
                                Ok((have, want))
                                    if have < want && want - have <= batch.len() as u64 =>
                                {
                                    eprintln!(
                                        "loadgen: shard {shard} resending {} records at \
                                         record {} to respawned `{target}` (resync \
                                         captured {have} of {want})",
                                        batch.len(),
                                        batch[0].0
                                    );
                                }
                                Ok((have, want)) => {
                                    return Err(cli_error(format!(
                                        "shard {shard}: respawned `{target}` holds {have} \
                                         records but primary `{primary}` holds {want} — \
                                         further apart than this worker's in-flight batch \
                                         of {}; replica lineage is unrecoverable",
                                        batch.len()
                                    )));
                                }
                                Err(Some(error)) => return Err(error),
                                Err(None) => {
                                    return Err(shard_unavailable(
                                        "stats", shard, &primary, &replica,
                                    ));
                                }
                            }
                        }
                        Err(None) => {
                            report.failovers += 1;
                            break;
                        }
                    }
                }
            }
            ctx.batches_done.fetch_add(1, Ordering::SeqCst);
        }
    }
    Ok(report)
}

/// SIGKILLs `pid` (unix only — cluster kill drills need kill(1)).
fn kill_process(pid: u64) -> Result<(), VlppError> {
    if cfg!(not(unix)) {
        return Err(cli_error("--kill is only available on unix targets"));
    }
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .map_err(|source| VlppError::io("kill", "spawn", source))?;
    if !status.success() {
        return Err(cli_error(format!("kill -9 {pid} failed with {status}")));
    }
    Ok(())
}

/// The cluster slammer: trains every node, drives per-shard streams
/// through primary + replica, optionally SIGKILLs a node mid-run, and
/// holds the oracle — byte-identical predictions and shard-exact
/// counters on the survivors.
fn run_cluster_loadgen(options: &LoadgenOptions) -> Result<JsonValue, VlppError> {
    vlpp_metrics::counter("loadgen.retries");
    let path = options.routing.as_ref().ok_or_else(|| cli_error("cluster mode needs --routing"))?;
    let table = ClusterCtx::load_table(path)?;

    // The routing table's shard count is authoritative: the table IS
    // the shard→process map, so a conflicting --shards would route
    // records to processes that do not own them. Fail fast, by name.
    if let Some(asked) = options.shards {
        if asked != table.shards() {
            return Err(cli_error(format!(
                "shard mismatch: routing table {} routes {} shards, --shards says {asked} \
                 (drop --shards to adopt the table's count)",
                path.display(),
                table.shards()
            )));
        }
    }
    if let Some(kill) = &options.kill {
        if !table.nodes().iter().any(|n| n.id == *kill) {
            return Err(cli_error(format!(
                "--kill {kill}: no such node in the routing table (nodes: {})",
                table.nodes().iter().map(|n| n.id.as_str()).collect::<Vec<_>>().join(", ")
            )));
        }
    }
    let spec = ModelSpec {
        name: "loadgen".to_string(),
        benchmark: options.benchmark.clone(),
        trace: None,
        kind: options.kind,
        index_bits: options.index_bits,
        shards: table.shards(),
    };
    // Every node trains the same deterministic model, so the primary
    // and replica kernels for a shard start byte-identical.
    if !options.no_train {
        for node in table.nodes() {
            let mut client =
                Client::connect(&ListenSpec::Tcp(node.addr.clone()), options.io_timeout_ms)?;
            train_on(&mut client, &spec)?;
        }
    }
    let reference = Reference::build(options, spec)?;

    // Partition the stream per shard (trace order within a shard), and
    // deal shards round-robin onto the worker threads.
    let mut work: HashMap<usize, Vec<(usize, BranchRecord)>> = HashMap::new();
    for (index, record) in reference.records.iter().enumerate().skip(options.skip) {
        let shard = reference.model.owner(record.pc());
        work.entry(shard).or_default().push((index, *record));
    }
    let workers = options.connections.min(table.shards());
    let shard_sets: Vec<Vec<usize>> =
        (0..workers).map(|c| (0..table.shards()).filter(|s| s % workers == c).collect()).collect();

    let kill_pid = options
        .kill
        .as_ref()
        .map(|kill| table.nodes().iter().find(|n| n.id == *kill).map(|n| n.pid))
        .map(|pid| pid.expect("kill target validated above"));
    let ctx = ClusterCtx {
        routing_path: path.clone(),
        table: Mutex::new(table),
        dead: Mutex::new(HashSet::new()),
        batches_done: AtomicU64::new(0),
        io_timeout_ms: options.io_timeout_ms,
        wait_respawn_ms: options.wait_respawn_ms,
    };
    let done = AtomicBool::new(false);
    let killed = AtomicBool::new(false);

    let reports: Vec<Result<ConnReport, VlppError>> = thread::scope(|scope| {
        let killer = options.kill.as_ref().map(|kill| {
            let pid = kill_pid.expect("kill target resolved above");
            let ctx = &ctx;
            let done = &done;
            let killed = &killed;
            let kill_after = options.kill_after;
            let kill = kill.clone();
            scope.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    if ctx.batches_done.load(Ordering::SeqCst) >= kill_after {
                        if kill_process(pid).is_ok() {
                            killed.store(true, Ordering::SeqCst);
                            vlpp_metrics::counter("cluster.kills").incr();
                            eprintln!("loadgen: killed node `{kill}` (pid {pid})");
                        }
                        return;
                    }
                    thread::sleep(std::time::Duration::from_millis(2));
                }
            })
        });
        let handles: Vec<_> = shard_sets
            .iter()
            .enumerate()
            .map(|(c, shards)| {
                let rng = XorShift64::new(options.seed ^ mix(c as u64 + 1));
                let ctx = &ctx;
                let work = &work;
                let model = &reference.spec.name;
                scope.spawn(move || {
                    drive_cluster_worker(ctx, model, shards, work, options.batch, rng)
                })
            })
            .collect();
        let reports = handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| {
                    Err(VlppError::protocol(None, "a loadgen worker thread panicked"))
                })
            })
            .collect();
        done.store(true, Ordering::SeqCst);
        if let Some(killer) = killer {
            let _ = killer.join();
        }
        reports
    });

    let mut tally = Tally::default();
    for report in reports {
        tally.absorb(report?, &reference.expected);
    }

    // Per-shard stats oracle: each shard's surviving owner has seen
    // the shard's full sub-stream exactly once, so its per-shard
    // counters must equal the offline reference's, shard by shard.
    // Adopt the latest routing table first: a node respawned since the
    // run started lives at a new address, and its resynced state must
    // satisfy the same oracle.
    ctx.try_reload();
    let ref_stats = reference.model.stats_json();
    let ref_shards =
        ref_stats.get("per_shard").and_then(|v| v.as_array()).map(|a| a.to_vec()).ok_or_else(
            || VlppError::protocol(Some("stats".to_string()), "reference stats lack per_shard"),
        )?;
    let mut pool = NodePool::new(&ctx);
    let mut stats_match = true;
    for (shard, reference_entry) in ref_shards.iter().enumerate() {
        let (primary, replica) = ctx.owners(shard);
        let body = vec![("model".to_string(), JsonValue::Str(reference.spec.name.clone()))];
        let response = match pool.call(&primary, "stats", body.clone()) {
            Ok(response) => response,
            Err(Some(error)) => return Err(error),
            Err(None) => match pool.call(&replica, "stats", body) {
                Ok(response) => response,
                Err(Some(error)) => return Err(error),
                Err(None) => {
                    return Err(shard_unavailable("stats", shard, &primary, &replica));
                }
            },
        };
        let served = response
            .get("stats")
            .and_then(|s| s.get("per_shard"))
            .and_then(|v| v.as_array())
            .and_then(|a| a.get(shard))
            .cloned()
            .unwrap_or(JsonValue::Null);
        if served.to_string() != reference_entry.to_string() {
            stats_match = false;
        }
    }

    if options.shutdown {
        // Re-read the table once more so a node respawned during the
        // stats pass drains too instead of lingering as an orphan.
        ctx.try_reload();
        let ids: Vec<String> = lock(&ctx.table).nodes().iter().map(|n| n.id.clone()).collect();
        for id in ids {
            // Dead nodes cannot drain; survivors must. The fan-out is
            // best-effort beyond that: the supervisor propagates drain
            // cluster-wide the moment the first node exits cleanly, so
            // a later call here can catch a node mid-drain (its read
            // half already closed, answered with a typed frame error).
            // Every failure mode means the node is going down, which
            // is exactly what this pass is for.
            match pool.call(&id, "shutdown", vec![]) {
                Ok(_) | Err(None) => {}
                Err(Some(error)) => {
                    eprintln!("loadgen: shutdown of `{id}` raced its drain: {error}");
                }
            }
        }
    }

    let dead: Vec<JsonValue> = {
        let mut names: Vec<String> = lock(&ctx.dead).iter().cloned().collect();
        names.sort();
        names.into_iter().map(JsonValue::Str).collect()
    };
    let node_count = lock(&ctx.table).nodes().len();
    let extra = vec![
        ("nodes".to_string(), JsonValue::UInt(node_count as u64)),
        ("routing_version".to_string(), JsonValue::UInt(ctx.version())),
        ("killed".to_string(), JsonValue::Bool(killed.load(Ordering::SeqCst))),
        ("dead_nodes".to_string(), JsonValue::Array(dead)),
    ];
    finish_summary(options, &reference, tally, stats_match, extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<LoadgenOptions, VlppError> {
        parse_loadgen_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_the_new_flags() {
        let options = parse(&[
            "--addr",
            "127.0.0.1:9",
            "--no-train",
            "--skip",
            "100",
            "--records",
            "200",
            "--save",
            "/tmp/m.vlps",
        ])
        .unwrap();
        assert!(options.no_train);
        assert_eq!(options.skip, 100);
        assert_eq!(options.save.as_deref(), Some("/tmp/m.vlps"));
        assert_eq!(options.shards, None, "--shards must stay unresolved until the server answers");

        let options =
            parse(&["--routing", "/tmp/r.json", "--kill", "node1", "--kill-after", "7"]).unwrap();
        assert_eq!(options.routing.as_deref(), Some(std::path::Path::new("/tmp/r.json")));
        assert_eq!(options.kill.as_deref(), Some("node1"));
        assert_eq!(options.kill_after, 7);
    }

    #[test]
    fn parses_the_resilience_flags() {
        let options = parse(&["--addr", "a:1"]).unwrap();
        assert_eq!(options.io_timeout_ms, 10_000, "deadlines must be on by default");
        assert_eq!(options.retries, 3);
        assert_eq!(options.wait_respawn_ms, 0, "self-heal waiting is opt-in");

        let options = parse(&[
            "--routing",
            "/tmp/r.json",
            "--io-timeout-ms",
            "0",
            "--retries",
            "9",
            "--retry-backoff-ms",
            "5",
            "--wait-respawn",
            "2500",
        ])
        .unwrap();
        assert_eq!(options.io_timeout_ms, 0, "0 must mean unbounded, not an error");
        assert_eq!(options.retries, 9);
        assert_eq!(options.retry_backoff_ms, 5);
        assert_eq!(options.wait_respawn_ms, 2500);

        // Waiting for a respawn only makes sense against a supervisor
        // that rewrites the routing file.
        let error = parse(&["--addr", "a:1", "--wait-respawn", "100"]).unwrap_err();
        assert!(error.to_string().contains("--wait-respawn"), "{error}");
    }

    #[test]
    fn shard_unavailable_grammar_is_stable() {
        let error = shard_unavailable("predict", 3, "node0", "node2");
        let text = error.to_string();
        assert!(text.contains("shard_unavailable: shard 3 has no live owner"), "{text}");
        assert!(text.contains("`node0`") && text.contains("`node2`"), "{text}");
    }

    /// The regression tests for the silent `.max(1)` clamps: zero is a
    /// typed CLI error naming the flag, not a silent run at 1.
    #[test]
    fn zero_counts_are_typed_errors_not_clamps() {
        for (args, flag) in [
            (&["--addr", "a:1", "--connections", "0"][..], "--connections"),
            (&["--addr", "a:1", "--shards", "0"], "--shards"),
            (&["--addr", "a:1", "--batch", "0"], "--batch"),
            (&["--addr", "a:1", "--scale", "0"], "--scale"),
        ] {
            let error = parse(args).unwrap_err();
            assert_eq!(error.phase(), "cli", "{flag}");
            assert!(error.to_string().contains(flag), "{flag}: {error}");
        }
    }

    #[test]
    fn kill_requires_cluster_mode_and_skip_must_leave_records() {
        assert_eq!(parse(&["--addr", "a:1", "--kill", "node0"]).unwrap_err().phase(), "cli");
        let error = parse(&["--addr", "a:1", "--skip", "10", "--records", "10"]).unwrap_err();
        assert!(error.to_string().contains("--skip"), "{error}");
        assert!(parse(&["--addr", "a:1", "--skip", "9", "--records", "10"]).is_ok());
    }

    #[test]
    fn missing_target_still_fails_fast() {
        assert_eq!(parse(&[]).unwrap_err().phase(), "cli");
    }

    #[test]
    fn connection_death_classification() {
        assert!(is_connection_death(&VlppError::io(
            "x",
            "connect",
            std::io::Error::from(std::io::ErrorKind::ConnectionRefused)
        )));
        assert!(is_connection_death(&VlppError::Frame {
            message: "cut off mid-frame".into(),
            declared_len: Some(10)
        }));
        assert!(is_connection_death(&VlppError::protocol(
            Some("predict".to_string()),
            "server closed the connection before responding"
        )));
        assert!(!is_connection_death(&VlppError::protocol(
            Some("predict".to_string()),
            "unknown model `m`"
        )));
        assert!(!is_connection_death(&cli_error("nope")));
    }
}
