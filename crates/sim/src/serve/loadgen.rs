//! `vlpp loadgen` — a deterministic load generator and correctness
//! oracle for `vlpp serve`.
//!
//! The client trains a model on the server, replays a synthetic test
//! trace through it over N concurrent connections, and asserts that
//! every served prediction is byte-identical to the offline reference
//! ([`Model::apply_sequential`] over the same records, in trace order).
//!
//! # Why the comparison is exact
//!
//! Records are partitioned by *shard*: connection `c` carries exactly
//! the records of shards `s` with `s % connections == c`, each in trace
//! order. Every shard is therefore driven by one connection, so the
//! server sees each shard's sub-stream in trace order no matter how the
//! connections' batches interleave — which is precisely the determinism
//! contract of [`super::model`]. Batch sizes are randomized (seeded,
//! reproducible) to exercise batching boundaries, and every
//! `--update-every`-th batch goes through the `update` verb to check
//! that its state transition matches `predict`'s.

use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread;

use vlpp_check::rng::mix;
use vlpp_check::XorShift64;
use vlpp_trace::frame::{read_frame, write_frame};
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::{BranchRecord, VlppError};

use super::model::{Model, ModelKind, ModelSpec};
use super::protocol::record_to_json;
use super::ListenSpec;
use crate::experiment::{Scale, Workloads};

/// Parsed `vlpp loadgen` options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The server to drive (from `--addr` or `--uds`).
    pub target: ListenSpec,
    /// Concurrent connections.
    pub connections: usize,
    /// Benchmark whose test trace is replayed.
    pub benchmark: String,
    /// Population to predict.
    pub kind: ModelKind,
    /// Prediction-table index width.
    pub index_bits: u32,
    /// Model shard count (defaults to `connections`).
    pub shards: usize,
    /// Records replayed from the head of the test trace.
    pub records: usize,
    /// Maximum records per batch (actual sizes are seeded-random in
    /// `1..=batch`).
    pub batch: usize,
    /// Seed for the batch-size stream.
    pub seed: u64,
    /// Send every Nth batch via `update` instead of `predict`
    /// (0 = always predict).
    pub update_every: usize,
    /// Workload scale (must match the server's).
    pub scale: Scale,
    /// Send `shutdown` after the run.
    pub shutdown: bool,
}

const LOADGEN_USAGE: &str = "\
usage: vlpp loadgen (--addr HOST:PORT | --uds PATH) [--connections N]
                    [--benchmark NAME] [--kind cond|ind] [--index-bits N]
                    [--shards N] [--records N] [--batch N] [--seed N]
                    [--update-every K] [--scale N] [--shutdown]

Trains a model on the server, replays a synthetic trace over N
connections, and fails unless every served prediction is byte-identical
to the offline reference. Prints one `LOADGEN {json}` summary line.
";

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

/// Parses `vlpp loadgen` arguments.
///
/// # Errors
///
/// [`VlppError::Cli`] on unknown flags, malformed values, or a missing
/// target address.
pub fn parse_loadgen_args(args: &[String]) -> Result<LoadgenOptions, VlppError> {
    let mut target = None;
    let mut connections = 4usize;
    let mut benchmark = "compress".to_string();
    let mut kind = ModelKind::Conditional;
    let mut index_bits = 10u32;
    let mut shards = None;
    let mut records = 20_000usize;
    let mut batch = 256usize;
    let mut seed = 0x5eed_1e77u64;
    let mut update_every = 0usize;
    let mut scale = Scale::from_env();
    let mut shutdown = false;

    fn parse_num<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> Result<T, VlppError> {
        value
            .and_then(|v| v.parse::<T>().ok())
            .ok_or_else(|| cli_error(format!("{flag} needs a number")))
    }

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let addr = iter.next().ok_or_else(|| cli_error("--addr needs HOST:PORT"))?;
                target = Some(ListenSpec::Tcp(addr.clone()));
            }
            "--uds" => {
                let path = iter.next().ok_or_else(|| cli_error("--uds needs a socket path"))?;
                target = Some(ListenSpec::Unix(PathBuf::from(path)));
            }
            "--connections" => {
                connections = parse_num::<usize>(iter.next(), "--connections")?.max(1)
            }
            "--benchmark" => {
                benchmark =
                    iter.next().ok_or_else(|| cli_error("--benchmark needs a name"))?.clone();
            }
            "--kind" => {
                let name = iter.next().ok_or_else(|| cli_error("--kind needs cond|ind"))?;
                kind = ModelKind::from_name(name)
                    .ok_or_else(|| cli_error(format!("unknown kind `{name}` (cond|ind)")))?;
            }
            "--index-bits" => index_bits = parse_num::<u32>(iter.next(), "--index-bits")?,
            "--shards" => shards = Some(parse_num::<usize>(iter.next(), "--shards")?.max(1)),
            "--records" => records = parse_num::<usize>(iter.next(), "--records")?,
            "--batch" => batch = parse_num::<usize>(iter.next(), "--batch")?.max(1),
            "--seed" => seed = parse_num::<u64>(iter.next(), "--seed")?,
            "--update-every" => update_every = parse_num::<usize>(iter.next(), "--update-every")?,
            "--scale" => scale = Scale::new(parse_num::<u64>(iter.next(), "--scale")?.max(1)),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err(cli_error(LOADGEN_USAGE)),
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{LOADGEN_USAGE}")))
            }
        }
    }
    let target =
        target.ok_or_else(|| cli_error(format!("missing --addr/--uds\n{LOADGEN_USAGE}")))?;
    Ok(LoadgenOptions {
        target,
        connections,
        benchmark,
        kind,
        index_bits,
        shards: shards.unwrap_or(connections),
        records,
        batch,
        seed,
        update_every,
        scale,
        shutdown,
    })
}

/// One framed-protocol client connection.
struct Client {
    conn: super::Conn,
    next_id: u64,
}

impl Client {
    fn connect(target: &ListenSpec) -> Result<Client, VlppError> {
        let conn = match target {
            ListenSpec::Tcp(addr) => TcpStream::connect(addr)
                .map(super::Conn::Tcp)
                .map_err(|source| VlppError::io(addr, "connect", source))?,
            #[cfg(unix)]
            ListenSpec::Unix(path) => UnixStream::connect(path)
                .map(super::Conn::Unix)
                .map_err(|source| VlppError::io(path.clone(), "connect", source))?,
            #[cfg(not(unix))]
            ListenSpec::Unix(path) => {
                return Err(cli_error(format!(
                    "unix socket {} unsupported on this target",
                    path.display()
                )));
            }
        };
        Ok(Client { conn, next_id: 1 })
    }

    /// Sends one request object and reads its response, checking the
    /// echoed id and the `ok` flag.
    fn call(
        &mut self,
        verb: &str,
        mut fields: Vec<(String, JsonValue)>,
    ) -> Result<JsonValue, VlppError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut request = vec![
            ("verb".to_string(), JsonValue::Str(verb.to_string())),
            ("id".to_string(), JsonValue::UInt(id)),
        ];
        request.append(&mut fields);
        write_frame(&mut self.conn, JsonValue::Object(request).to_string().as_bytes())?;
        let payload = read_frame(&mut self.conn)?.ok_or_else(|| {
            VlppError::protocol(
                Some(verb.to_string()),
                "server closed the connection before responding",
            )
        })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| VlppError::protocol(Some(verb.to_string()), "response is not UTF-8"))?;
        let response = JsonValue::parse(text)
            .map_err(|source| VlppError::Json { what: "response frame".to_string(), source })?;
        if response.get("ok").and_then(|v| v.as_bool()) != Some(true) {
            let detail = response
                .get("error")
                .map(|error| error.to_json_string())
                .unwrap_or_else(|| response.to_json_string());
            return Err(VlppError::protocol(
                Some(verb.to_string()),
                format!("server error: {detail}"),
            ));
        }
        if response.get("id").and_then(|v| v.as_u64()) != Some(id) {
            return Err(VlppError::protocol(
                Some(verb.to_string()),
                "response id does not match the request (reordered responses?)",
            ));
        }
        Ok(response)
    }
}

/// What one connection thread did.
struct ConnReport {
    /// `(trace_index, served prediction rendered compactly)` for every
    /// record that went through `predict`.
    served: Vec<(usize, String)>,
    batches: u64,
    predicted: u64,
    updated: u64,
}

fn records_json(batch: &[(usize, BranchRecord)]) -> JsonValue {
    JsonValue::Array(batch.iter().map(|(_, record)| record_to_json(record)).collect())
}

fn drive_connection(
    target: &ListenSpec,
    model: &str,
    work: &[(usize, BranchRecord)],
    batch_max: usize,
    update_every: usize,
    mut rng: XorShift64,
) -> Result<ConnReport, VlppError> {
    let mut client = Client::connect(target)?;
    let mut report =
        ConnReport { served: Vec::with_capacity(work.len()), batches: 0, predicted: 0, updated: 0 };
    let mut cursor = 0usize;
    while cursor < work.len() {
        let size = (1 + rng.next_u64() % batch_max as u64) as usize;
        let batch = &work[cursor..(cursor + size).min(work.len())];
        cursor += batch.len();
        report.batches += 1;
        let is_update = update_every > 0 && report.batches.is_multiple_of(update_every as u64);
        let body = vec![
            ("model".to_string(), JsonValue::Str(model.to_string())),
            ("records".to_string(), records_json(batch)),
        ];
        if is_update {
            client.call("update", body)?;
            report.updated += batch.len() as u64;
            continue;
        }
        let response = client.call("predict", body)?;
        let predictions =
            response.get("predictions").and_then(|p| p.as_array()).ok_or_else(|| {
                VlppError::protocol(
                    Some("predict".to_string()),
                    "response is missing its predictions array",
                )
            })?;
        if predictions.len() != batch.len() {
            return Err(VlppError::protocol(
                Some("predict".to_string()),
                format!("sent {} records, got {} predictions", batch.len(), predictions.len()),
            ));
        }
        for ((index, _), prediction) in batch.iter().zip(predictions) {
            report.served.push((*index, prediction.to_json_string()));
        }
        report.predicted += batch.len() as u64;
    }
    Ok(report)
}

/// `vlpp loadgen` entry point.
///
/// # Errors
///
/// [`VlppError::Cli`] for bad arguments or a failed run (prediction
/// mismatches, stats divergence); transport and protocol errors pass
/// through typed.
pub fn loadgen_main(args: &[String]) -> Result<(), VlppError> {
    let options = parse_loadgen_args(args)?;
    let summary = run_loadgen(&options)?;
    println!("LOADGEN {summary}");
    Ok(())
}

/// Runs the full loadgen cycle, returning the summary document.
///
/// # Errors
///
/// See [`loadgen_main`].
pub fn run_loadgen(options: &LoadgenOptions) -> Result<JsonValue, VlppError> {
    let spec = ModelSpec {
        name: "loadgen".to_string(),
        benchmark: options.benchmark.clone(),
        kind: options.kind,
        index_bits: options.index_bits,
        shards: options.shards,
    };

    // The offline reference: the same model code, driven sequentially
    // in trace order. Profiling is deterministic, so this instance is
    // state-identical to the one the server trains.
    let workloads = Workloads::new(options.scale);
    let reference = Model::train(spec.clone(), &workloads)?;
    let benchmark = vlpp_synth::suite::benchmark(&options.benchmark)
        .ok_or_else(|| cli_error(format!("unknown benchmark `{}`", options.benchmark)))?;
    let records: Vec<BranchRecord> =
        workloads.test_trace(&benchmark).iter().take(options.records).copied().collect();
    if records.is_empty() {
        return Err(cli_error("no records to replay (is --records 0?)"));
    }
    let expected: Vec<String> = reference
        .apply_sequential(&records)
        .iter()
        .map(|slot| slot.to_json())
        .map(|json| json.to_string())
        .collect();

    // Train on the server over a control connection.
    let mut control = Client::connect(&options.target)?;
    control.call(
        "train",
        vec![
            ("model".to_string(), JsonValue::Str(spec.name.clone())),
            ("benchmark".to_string(), JsonValue::Str(spec.benchmark.clone())),
            ("kind".to_string(), JsonValue::Str(spec.kind.name().to_string())),
            ("index_bits".to_string(), JsonValue::UInt(spec.index_bits as u64)),
            ("shards".to_string(), JsonValue::UInt(spec.shards as u64)),
        ],
    )?;

    // Partition by shard: connection `c` owns shards `s % connections
    // == c`, each shard's records in trace order. One shard, one
    // connection — the determinism contract.
    let mut partitions: Vec<Vec<(usize, BranchRecord)>> = vec![Vec::new(); options.connections];
    for (index, record) in records.iter().enumerate() {
        let shard = reference.owner(record.pc());
        partitions[shard % options.connections].push((index, *record));
    }

    let reports: Vec<Result<ConnReport, VlppError>> = thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .enumerate()
            .map(|(c, work)| {
                let rng = XorShift64::new(options.seed ^ mix(c as u64 + 1));
                let target = &options.target;
                let spec = &spec;
                scope.spawn(move || {
                    drive_connection(
                        target,
                        &spec.name,
                        work,
                        options.batch,
                        options.update_every,
                        rng,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| {
                    Err(VlppError::protocol(None, "a loadgen connection thread panicked"))
                })
            })
            .collect()
    });

    let mut batches = 0u64;
    let mut predicted = 0u64;
    let mut updated = 0u64;
    let mut mismatches = 0u64;
    let mut first_mismatch: Option<JsonValue> = None;
    for report in reports {
        let report = report?;
        batches += report.batches;
        predicted += report.predicted;
        updated += report.updated;
        for (index, served) in report.served {
            if served != expected[index] {
                mismatches += 1;
                if first_mismatch.is_none() {
                    first_mismatch = Some(JsonValue::Object(vec![
                        ("index".to_string(), JsonValue::UInt(index as u64)),
                        ("served".to_string(), JsonValue::Str(served.clone())),
                        ("expected".to_string(), JsonValue::Str(expected[index].clone())),
                    ]));
                }
            }
        }
    }

    // Cross-check the aggregate counters: the server saw every record
    // exactly once, so its stats must equal the offline reference's.
    let stats =
        control.call("stats", vec![("model".to_string(), JsonValue::Str(spec.name.clone()))])?;
    let served_stats = stats.get("stats").cloned().unwrap_or(JsonValue::Null);
    let stats_match = served_stats.to_string() == reference.stats_json().to_string();

    if options.shutdown {
        control.call("shutdown", vec![])?;
    }

    let mut summary = vec![
        ("connections".to_string(), JsonValue::UInt(options.connections as u64)),
        ("shards".to_string(), JsonValue::UInt(options.shards as u64)),
        ("records".to_string(), JsonValue::UInt(records.len() as u64)),
        ("batches".to_string(), JsonValue::UInt(batches)),
        ("predicted".to_string(), JsonValue::UInt(predicted)),
        ("updated".to_string(), JsonValue::UInt(updated)),
        ("mismatches".to_string(), JsonValue::UInt(mismatches)),
        ("stats_match".to_string(), JsonValue::Bool(stats_match)),
    ];
    if let Some(mismatch) = first_mismatch {
        summary.push(("first_mismatch".to_string(), mismatch));
    }
    let summary = JsonValue::Object(summary);
    if mismatches > 0 || !stats_match {
        return Err(cli_error(format!(
            "served predictions diverged from the offline reference: LOADGEN {summary}"
        )));
    }
    Ok(summary)
}
