//! `vlpp cluster` — N `vlpp serve` processes behind one explicit
//! routing table.
//!
//! The supervisor spawns `--nodes` child servers (each `vlpp serve
//! --listen 127.0.0.1:0`, so the OS picks ports), parses each child's
//! `SERVE` announce line, builds the rendezvous
//! [`RoutingTable`] mapping every shard
//! to a primary and a replica node, and prints one `CLUSTER {json}`
//! line carrying the table. Clients (`vlpp loadgen --routing`) route
//! records per shard: writes fan to primary + replica, reads fail over
//! to the replica when the primary dies.
//!
//! The supervisor then waits for the children. A child killed by a
//! signal is an expected failover-drill outcome, not a supervisor
//! failure: each exit is reported on stderr, and the supervisor's own
//! exit is clean once every child has terminated.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;

use vlpp_trace::json::JsonValue;
use vlpp_trace::VlppError;

use super::routing::{Node, RoutingTable};
use crate::experiment::Scale;

/// Parsed `vlpp cluster` options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of serve processes (≥ 2: every shard needs a replica on
    /// a different process).
    pub nodes: usize,
    /// Shards routed by the table (must match the model's shard count;
    /// `vlpp loadgen --routing` takes it from here).
    pub shards: usize,
    /// Per-connection frame-queue bound passed to each child.
    pub queue_depth: usize,
    /// Workload scale passed to each child.
    pub scale: Scale,
    /// Also write the routing table JSON to this file (atomically).
    pub routing_out: Option<PathBuf>,
}

const CLUSTER_USAGE: &str = "\
usage: vlpp cluster [--nodes N] [--shards N] [--queue-depth N]
                    [--scale N] [--routing-out FILE]

Spawns N `vlpp serve` children, builds the shard->process routing
table (primary + replica per shard, rendezvous-hashed), prints one
`CLUSTER {json}` line carrying it, then supervises the children until
they exit. Drive it with `vlpp loadgen --routing FILE`. See SERVING.md.
";

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

/// Parses `vlpp cluster` arguments. Zero counts are rejected, not
/// clamped.
///
/// # Errors
///
/// [`VlppError::Cli`] on unknown flags or out-of-range values.
pub fn parse_cluster_args(args: &[String]) -> Result<ClusterOptions, VlppError> {
    let mut options = ClusterOptions {
        nodes: 2,
        shards: 4,
        queue_depth: super::DEFAULT_QUEUE_DEPTH,
        scale: Scale::from_env(),
        routing_out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| (2..=64).contains(&n))
                    .ok_or_else(|| cli_error("--nodes needs an integer in 2..=64"))?;
            }
            "--shards" => {
                options.shards = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| (1..=1024).contains(&n))
                    .ok_or_else(|| cli_error("--shards needs an integer in 1..=1024"))?;
            }
            "--queue-depth" => {
                options.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--queue-depth needs a positive integer"))?;
            }
            "--scale" => {
                let divisor = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--scale needs a positive integer"))?;
                options.scale = Scale::new(divisor);
            }
            "--routing-out" => {
                let path = iter.next().ok_or_else(|| cli_error("--routing-out needs a path"))?;
                options.routing_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(cli_error(CLUSTER_USAGE)),
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{CLUSTER_USAGE}")))
            }
        }
    }
    Ok(options)
}

/// One spawned child and the line reader still attached to its stdout.
struct ChildNode {
    id: String,
    child: Child,
    stdout: Option<BufReader<std::process::ChildStdout>>,
}

fn spawn_node(id: &str, options: &ClusterOptions) -> Result<ChildNode, VlppError> {
    let exe = std::env::current_exe()
        .map_err(|source| VlppError::io("current-exe", "resolve", source))?;
    let child = Command::new(&exe)
        .arg("serve")
        .args(["--listen", "127.0.0.1:0"])
        .args(["--queue-depth", &options.queue_depth.to_string()])
        .args(["--scale", &options.scale.divisor().to_string()])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|source| VlppError::io(exe, "spawn", source))?;
    let mut child = child;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| VlppError::protocol(None, format!("node `{id}` has no stdout pipe")))?;
    Ok(ChildNode { id: id.to_string(), child, stdout: Some(BufReader::new(stdout)) })
}

/// Reads the child's `SERVE {json}` announce line and extracts its
/// address and pid.
fn read_announce(node: &mut ChildNode) -> Result<Node, VlppError> {
    let stdout = node.stdout.as_mut().expect("announce is read before the drain takes stdout");
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdout
            .read_line(&mut line)
            .map_err(|source| VlppError::io(format!("node-{}", node.id), "read", source))?;
        if n == 0 {
            return Err(VlppError::protocol(
                None,
                format!("node `{}` exited before announcing", node.id),
            ));
        }
        let Some(json) = line.strip_prefix("SERVE ") else { continue };
        let value = JsonValue::parse(json.trim())
            .map_err(|source| VlppError::Json { what: "SERVE announce".to_string(), source })?;
        let addr = value.get("addr").and_then(|v| v.as_str()).ok_or_else(|| {
            VlppError::protocol(None, format!("node `{}` announce has no addr", node.id))
        })?;
        let pid = value.get("pid").and_then(|v| v.as_u64()).ok_or_else(|| {
            VlppError::protocol(None, format!("node `{}` announce has no pid", node.id))
        })?;
        return Ok(Node { id: node.id.clone(), addr: addr.to_string(), pid });
    }
}

/// `vlpp cluster` entry point: spawn, route, announce, supervise.
///
/// # Errors
///
/// [`VlppError::Cli`] for bad arguments, [`VlppError::Io`] /
/// [`VlppError::Protocol`] if a child cannot be spawned or never
/// announces.
pub fn cluster_main(args: &[String]) -> Result<(), VlppError> {
    let options = parse_cluster_args(args)?;
    run_cluster(&options)
}

/// Runs the cluster supervisor (see [`cluster_main`]).
///
/// # Errors
///
/// See [`cluster_main`].
pub fn run_cluster(options: &ClusterOptions) -> Result<(), VlppError> {
    let mut children = Vec::with_capacity(options.nodes);
    for i in 0..options.nodes {
        children.push(spawn_node(&format!("node{i}"), options)?);
    }
    let nodes = children.iter_mut().map(read_announce).collect::<Result<Vec<Node>, _>>()?;
    let table = RoutingTable::build(options.shards, nodes)
        .map_err(|message| cli_error(format!("cannot build routing table: {message}")))?;
    vlpp_metrics::counter("cluster.nodes").add(options.nodes as u64);

    let wire = table.to_json();
    if let Some(path) = &options.routing_out {
        // Atomic like the snapshots: whole file or no file.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{wire}\n"))
            .map_err(|source| VlppError::io(tmp.clone(), "write", source))?;
        std::fs::rename(&tmp, path)
            .map_err(|source| VlppError::io(path.clone(), "rename", source))?;
    }
    println!("CLUSTER {wire}");
    let _ = std::io::stdout().flush();

    // Forward remaining child output to stderr (prefixed) so a child's
    // diagnostics aren't lost in a blocked pipe, then wait them out.
    let drains: Vec<_> = children
        .iter_mut()
        .filter_map(|node| {
            let mut stdout = node.stdout.take()?;
            let id = node.id.clone();
            Some(thread::spawn(move || {
                let mut line = String::new();
                while matches!(stdout.read_line(&mut line), Ok(n) if n > 0) {
                    eprint!("{id}| {line}");
                    line.clear();
                }
            }))
        })
        .collect();

    let mut exited_clean = 0usize;
    let mut died = 0usize;
    for node in &mut children {
        match node.child.wait() {
            Ok(status) if status.success() => exited_clean += 1,
            Ok(_) => {
                // Killed or failed — the failover drill's expected
                // casualty. Survivors keep the shards serviceable.
                died += 1;
                vlpp_metrics::counter("cluster.nodes_died").incr();
                eprintln!("cluster: node `{}` terminated abnormally", node.id);
            }
            Err(error) => {
                died += 1;
                eprintln!("cluster: cannot wait for node `{}`: {error}", node.id);
            }
        }
    }
    for drain in drains {
        let _ = drain.join();
    }
    let summary = JsonValue::Object(vec![
        ("nodes".to_string(), JsonValue::UInt(options.nodes as u64)),
        ("exited_clean".to_string(), JsonValue::UInt(exited_clean as u64)),
        ("died".to_string(), JsonValue::UInt(died as u64)),
    ]);
    println!("CLUSTER_EXIT {summary}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ClusterOptions, VlppError> {
        parse_cluster_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_defaults_and_flags() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.nodes, 2);
        assert_eq!(options.shards, 4);
        let options = parse(&[
            "--nodes",
            "3",
            "--shards",
            "8",
            "--queue-depth",
            "16",
            "--scale",
            "1000000",
            "--routing-out",
            "/tmp/r.json",
        ])
        .unwrap();
        assert_eq!(options.nodes, 3);
        assert_eq!(options.shards, 8);
        assert_eq!(options.queue_depth, 16);
        assert_eq!(options.scale.divisor(), 1_000_000);
        assert_eq!(options.routing_out.as_deref(), Some(std::path::Path::new("/tmp/r.json")));
    }

    /// Zero (and one-node) counts are typed CLI errors, never clamps:
    /// a single node cannot host a replica, and zero shards routes
    /// nothing.
    #[test]
    fn zero_and_single_counts_are_rejected_not_clamped() {
        for bad in [
            &["--nodes", "0"][..],
            &["--nodes", "1"],
            &["--shards", "0"],
            &["--queue-depth", "0"],
            &["--scale", "0"],
        ] {
            let error = parse(bad).unwrap_err();
            assert_eq!(error.phase(), "cli", "{bad:?}");
        }
    }
}
