//! `vlpp cluster` — N `vlpp serve` processes behind one explicit
//! routing table, with a self-healing supervisor.
//!
//! The supervisor spawns `--nodes` child servers (each `vlpp serve
//! --listen 127.0.0.1:0`, so the OS picks ports), parses each child's
//! `SERVE` announce line, builds the rendezvous
//! [`RoutingTable`] mapping every shard
//! to a primary and a replica node, and prints one `CLUSTER {json}`
//! line carrying the table. Clients (`vlpp loadgen --routing`) route
//! records per shard: writes fan to primary + replica, reads fail over
//! to the replica when the primary dies.
//!
//! # Liveness and recovery
//!
//! The supervisor then runs a heartbeat loop. Every
//! `--probe-interval-ms` it opens a fresh connection to each child and
//! calls the `ping` verb; a node that misses a probe is *suspect*, and
//! after `--miss-budget` consecutive misses it is declared dead and
//! SIGKILLed so its fate is unambiguous. A dead child (killed,
//! crashed, or probe-condemned — all reach the same `try_wait` path)
//! is replaced while its shards keep serving from the surviving
//! owners:
//!
//! 1. For every shard the dead node owned, its surviving owner is
//!    identified; a shard with no live owner aborts the respawn
//!    (`CLUSTER_RESYNC_ERROR`) — the supervisor never fabricates
//!    state.
//! 2. The survivors' models are pulled twice over the `sync` verb and
//!    the dead node's owned-shard sections are compared byte-for-byte
//!    between the passes; a mismatch means a writer is still moving
//!    that shard, so the pull retries with backoff until the state is
//!    provably at rest.
//! 3. A replacement snapshot is composed (lowest-id live node as the
//!    base, the dead node's owned shards overlaid from their surviving
//!    owners), validated by a full decode — a replacement never serves
//!    partial state — and a new child is spawned from it under the
//!    same node id, so every rendezvous assignment is preserved.
//! 4. Only after the replacement answers `ping` is it promoted: the
//!    routing table gets its new addr/pid, the version bumps, the
//!    `--routing-out` file is rewritten atomically, and a
//!    `CLUSTER_UPDATE` + `CLUSTER_RESPAWN` line is printed. Clients
//!    reject any table whose version does not advance.
//!
//! # Shutdown
//!
//! SIGTERM/SIGINT (or any child draining cleanly after a client's
//! `shutdown` verb) puts the supervisor itself into drain mode: it
//! fans `shutdown` to every remaining child, stops respawning, and
//! exits 0 once all children are reaped, printing a `CLUSTER_EXIT`
//! summary with the respawn/resync totals.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use vlpp_trace::compact::{read_snapshot, write_snapshot, SnapshotSection};
use vlpp_trace::json::JsonValue;
use vlpp_trace::VlppError;

use super::loadgen::Client;
use super::routing::{Node, RoutingTable};
use super::{sig, ListenSpec};
use crate::experiment::Scale;

/// Deadline for a supervisor-initiated probe, drain, or announce read:
/// long enough for a loaded child to answer, short enough that a dead
/// one cannot stall the heartbeat loop.
const PROBE_TIMEOUT_MS: u64 = 1_000;

/// Stability-pull attempts before a resync is abandoned. Writers pause
/// within one batch of the death, so the window this must cover is
/// small; each retry backs off a further `RESYNC_BACKOFF_MS`.
const RESYNC_ATTEMPTS: u32 = 5;
const RESYNC_BACKOFF_MS: u64 = 200;

/// Parsed `vlpp cluster` options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of serve processes (≥ 2: every shard needs a replica on
    /// a different process).
    pub nodes: usize,
    /// Shards routed by the table (must match the model's shard count;
    /// `vlpp loadgen --routing` takes it from here).
    pub shards: usize,
    /// Per-connection frame-queue bound passed to each child.
    pub queue_depth: usize,
    /// Workload scale passed to each child.
    pub scale: Scale,
    /// Also write the routing table JSON to this file (atomically,
    /// rewritten with a bumped version on every membership change).
    pub routing_out: Option<PathBuf>,
    /// Heartbeat probe interval, in milliseconds.
    pub probe_interval_ms: u64,
    /// Consecutive missed probes before a node is declared dead.
    pub miss_budget: u32,
    /// Total respawns the supervisor may perform (0 disables
    /// self-healing: a dead node stays dead, exactly the pre-respawn
    /// failover behavior).
    pub max_respawns: u32,
    /// Socket deadline passed to every child (`serve --io-timeout-ms`)
    /// and used for the supervisor's own `sync` pulls.
    pub io_timeout_ms: u64,
    /// Print the metrics table on exit and pass `--metrics` to every
    /// child.
    pub metrics: bool,
}

const CLUSTER_USAGE: &str = "\
usage: vlpp cluster [--nodes N] [--shards N] [--queue-depth N]
                    [--scale N] [--routing-out FILE] [--metrics]
                    [--probe-interval-ms MS] [--miss-budget N]
                    [--max-respawns N] [--io-timeout-ms MS]

Spawns N `vlpp serve` children, builds the shard->process routing
table (primary + replica per shard, rendezvous-hashed), prints one
`CLUSTER {json}` line carrying it, then supervises the children:
heartbeat pings every --probe-interval-ms declare a node dead after
--miss-budget misses, and a dead node is respawned from a snapshot
resynced off the surviving shard owners, the routing file rewritten
with a bumped version. Drive it with `vlpp loadgen --routing FILE`.
See SERVING.md and ROBUSTNESS.md.
";

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

/// Parses `vlpp cluster` arguments. Zero counts are rejected, not
/// clamped (except where zero is a documented "off" switch).
///
/// # Errors
///
/// [`VlppError::Cli`] on unknown flags or out-of-range values.
pub fn parse_cluster_args(args: &[String]) -> Result<ClusterOptions, VlppError> {
    let mut options = ClusterOptions {
        nodes: 2,
        shards: 4,
        queue_depth: super::DEFAULT_QUEUE_DEPTH,
        scale: Scale::from_env(),
        routing_out: None,
        probe_interval_ms: 500,
        miss_budget: 3,
        max_respawns: 16,
        io_timeout_ms: super::DEFAULT_IO_TIMEOUT_MS,
        metrics: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| (2..=64).contains(&n))
                    .ok_or_else(|| cli_error("--nodes needs an integer in 2..=64"))?;
            }
            "--shards" => {
                options.shards = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| (1..=1024).contains(&n))
                    .ok_or_else(|| cli_error("--shards needs an integer in 1..=1024"))?;
            }
            "--queue-depth" => {
                options.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--queue-depth needs a positive integer"))?;
            }
            "--scale" => {
                let divisor = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--scale needs a positive integer"))?;
                options.scale = Scale::new(divisor);
            }
            "--routing-out" => {
                let path = iter.next().ok_or_else(|| cli_error("--routing-out needs a path"))?;
                options.routing_out = Some(PathBuf::from(path));
            }
            "--probe-interval-ms" => {
                options.probe_interval_ms = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--probe-interval-ms needs a positive integer"))?;
            }
            "--miss-budget" => {
                options.miss_budget = iter
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--miss-budget needs a positive integer"))?;
            }
            "--max-respawns" => {
                options.max_respawns = iter
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or_else(|| cli_error("--max-respawns needs an integer (0 disables)"))?;
            }
            "--io-timeout-ms" => {
                options.io_timeout_ms = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| cli_error("--io-timeout-ms needs an integer (0 = unbounded)"))?;
            }
            "--metrics" => options.metrics = true,
            "--help" | "-h" => return Err(cli_error(CLUSTER_USAGE)),
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{CLUSTER_USAGE}")))
            }
        }
    }
    Ok(options)
}

/// Probe-loop liveness of one child, as last observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Liveness {
    /// Answered its most recent probe (or was just spawned).
    Alive,
    /// Missed this many consecutive probes; condemned at the miss
    /// budget.
    Suspect(u32),
}

/// One spawned child and the line reader still attached to its stdout.
struct ChildNode {
    id: String,
    child: Child,
    stdout: Option<BufReader<std::process::ChildStdout>>,
}

/// A supervised slot: the child process currently carrying a node id,
/// its announced identity, and its probe state.
struct Slot {
    node: Node,
    child: ChildNode,
    liveness: Liveness,
    /// Reaped: the slot no longer holds a process (clean exit, or dead
    /// with self-healing off/abandoned).
    gone: bool,
}

fn spawn_node(
    id: &str,
    options: &ClusterOptions,
    snapshot: Option<&Path>,
) -> Result<ChildNode, VlppError> {
    let exe = std::env::current_exe()
        .map_err(|source| VlppError::io("current-exe", "resolve", source))?;
    let mut command = Command::new(&exe);
    command
        .arg("serve")
        .args(["--listen", "127.0.0.1:0"])
        .args(["--queue-depth", &options.queue_depth.to_string()])
        .args(["--scale", &options.scale.divisor().to_string()])
        .args(["--io-timeout-ms", &options.io_timeout_ms.to_string()]);
    if options.metrics {
        command.arg("--metrics");
    }
    if let Some(path) = snapshot {
        command.arg("--snapshot").arg(path);
    }
    let mut child = command
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|source| VlppError::io(exe, "spawn", source))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| VlppError::protocol(None, format!("node `{id}` has no stdout pipe")))?;
    Ok(ChildNode { id: id.to_string(), child, stdout: Some(BufReader::new(stdout)) })
}

/// Reads the child's `SERVE {json}` announce line and extracts its
/// address and pid.
fn read_announce(node: &mut ChildNode) -> Result<Node, VlppError> {
    let stdout = node.stdout.as_mut().expect("announce is read before the drain takes stdout");
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdout
            .read_line(&mut line)
            .map_err(|source| VlppError::io(format!("node-{}", node.id), "read", source))?;
        if n == 0 {
            return Err(VlppError::protocol(
                None,
                format!("node `{}` exited before announcing", node.id),
            ));
        }
        let Some(json) = line.strip_prefix("SERVE ") else { continue };
        let value = JsonValue::parse(json.trim())
            .map_err(|source| VlppError::Json { what: "SERVE announce".to_string(), source })?;
        let addr = value.get("addr").and_then(|v| v.as_str()).ok_or_else(|| {
            VlppError::protocol(None, format!("node `{}` announce has no addr", node.id))
        })?;
        let pid = value.get("pid").and_then(|v| v.as_u64()).ok_or_else(|| {
            VlppError::protocol(None, format!("node `{}` announce has no pid", node.id))
        })?;
        return Ok(Node { id: node.id.clone(), addr: addr.to_string(), pid });
    }
}

/// Forwards a child's remaining stdout to stderr, `id| `-prefixed, so
/// its diagnostics are neither lost nor able to block the pipe.
fn spawn_drain(node: &mut ChildNode) -> Option<thread::JoinHandle<()>> {
    let mut stdout = node.stdout.take()?;
    let id = node.id.clone();
    Some(thread::spawn(move || {
        let mut line = String::new();
        while matches!(stdout.read_line(&mut line), Ok(n) if n > 0) {
            eprint!("{id}| {line}");
            line.clear();
        }
    }))
}

/// Calls one verb on `addr` over a fresh short-deadline connection.
fn call_node(addr: &str, timeout_ms: u64, verb: &str) -> Result<JsonValue, VlppError> {
    let mut client = Client::connect(&ListenSpec::Tcp(addr.to_string()), timeout_ms)?;
    client.call(verb, Vec::new())
}

/// Atomically (tmp + rename) writes the routing table file.
fn write_routing(path: &Path, wire: &JsonValue) -> Result<(), VlppError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{wire}\n"))
        .map_err(|source| VlppError::io(tmp.clone(), "write", source))?;
    std::fs::rename(&tmp, path).map_err(|source| VlppError::io(path, "rename", source))
}

/// Pulls one full `sync` snapshot from `addr` and indexes its sections
/// by name, counting the transferred bytes into `cluster.resync_bytes`.
fn pull_sections(addr: &str, timeout_ms: u64) -> Result<Vec<SnapshotSection>, VlppError> {
    let mut client = Client::connect(&ListenSpec::Tcp(addr.to_string()), timeout_ms)?;
    let (bytes, _header) = client.fetch_sync(None)?;
    vlpp_metrics::counter("cluster.resync_bytes").add(bytes.len() as u64);
    read_snapshot(&bytes[..]).map_err(|source| {
        VlppError::protocol(
            None,
            format!("sync stream from {addr} is not a valid snapshot: {source}"),
        )
    })
}

fn section_bytes<'a>(sections: &'a [SnapshotSection], name: &str) -> Option<&'a [u8]> {
    sections.iter().find(|s| s.name == name).map(|s| s.payload.as_slice())
}

/// Composes the replacement snapshot for `dead_id`: `base` (from the
/// lowest-id live node) with the dead node's owned shards overlaid
/// from their surviving owners. Only models sharded like the routing
/// table participate in the overlay — a model with a different shard
/// count is not routed by this table, so the base copy stands.
fn compose_replacement(
    base: Vec<SnapshotSection>,
    owners: &[(usize, String)],
    pulls: &std::collections::HashMap<String, Vec<SnapshotSection>>,
    table_shards: usize,
    scale: Scale,
) -> Result<Vec<SnapshotSection>, VlppError> {
    let routed: Vec<String> = super::snapshot::decode_sections(&base, scale)
        .map_err(|message| VlppError::protocol(None, format!("base snapshot rejected: {message}")))?
        .iter()
        .filter(|model| model.spec.shards == table_shards)
        .map(|model| model.spec.name.clone())
        .collect();
    let mut composed = base;
    for (shard, owner) in owners {
        let sections = pulls.get(owner).expect("every owner was pulled");
        for model in &routed {
            let name = format!("m:{model}:shard:{shard}");
            let payload = section_bytes(sections, &name).ok_or_else(|| {
                VlppError::protocol(
                    None,
                    format!("owner `{owner}` sync stream lacks section `{name}`"),
                )
            })?;
            match composed.iter_mut().find(|s| s.name == name) {
                Some(slot) => slot.payload = payload.to_vec(),
                None => {
                    composed.push(SnapshotSection { name: name.clone(), payload: payload.to_vec() })
                }
            }
        }
    }
    // The replacement must be able to serve this byte stream whole, or
    // not at all.
    super::snapshot::decode_sections(&composed, scale).map_err(|message| {
        VlppError::protocol(None, format!("composed replacement snapshot rejected: {message}"))
    })?;
    Ok(composed)
}

/// The resync payload for one respawn: validated replacement sections
/// plus the shard/owner map that produced them.
struct Resync {
    sections: Vec<SnapshotSection>,
    owned_shards: Vec<usize>,
}

/// Pulls a writer-at-rest snapshot for the shards `dead_id` owned.
///
/// Exactness argument: each shard is driven by exactly one loadgen
/// worker, and a worker that loses a node pauses that shard (either
/// permanently failing over, or in `--wait-respawn` mode blocking
/// until promotion). So the surviving owner's state for an owned shard
/// is *at rest* shortly after the death — which this function proves,
/// rather than assumes, by pulling every needed snapshot twice and
/// requiring the owned-shard sections to be byte-identical between
/// passes before composing them into the replacement.
fn resync_snapshot(
    table: &RoutingTable,
    dead_id: &str,
    live: &[String],
    timeout_ms: u64,
    scale: Scale,
) -> Result<Resync, VlppError> {
    let owned: Vec<(usize, String)> = (0..table.shards())
        .filter_map(|shard| {
            let primary = table.primary(shard);
            let replica = table.replica(shard);
            if primary.id == dead_id {
                Some((shard, replica.id.clone()))
            } else if replica.id == dead_id {
                Some((shard, primary.id.clone()))
            } else {
                None
            }
        })
        .collect();
    for (shard, owner) in &owned {
        if !live.iter().any(|id| id == owner) {
            return Err(VlppError::protocol(
                None,
                format!(
                    "shard {shard} has no live owner: `{dead_id}` is dead and `{owner}` is gone"
                ),
            ));
        }
    }
    let base_id = live
        .iter()
        .min()
        .ok_or_else(|| VlppError::protocol(None, "no live node to base a resync on".to_string()))?
        .clone();
    let mut pull_ids: Vec<String> = owned.iter().map(|(_, owner)| owner.clone()).collect();
    pull_ids.push(base_id.clone());
    pull_ids.sort();
    pull_ids.dedup();
    let addr_of = |id: &String| -> String {
        table
            .nodes()
            .iter()
            .find(|n| n.id == *id)
            .expect("pull ids come from the table")
            .addr
            .clone()
    };

    let mut last_error = String::new();
    for attempt in 1..=RESYNC_ATTEMPTS {
        let pull = |_pass: &str| -> Result<
            std::collections::HashMap<String, Vec<SnapshotSection>>,
            VlppError,
        > {
            pull_ids
                .iter()
                .map(|id| Ok((id.clone(), pull_sections(&addr_of(id), timeout_ms)?)))
                .collect()
        };
        let result = pull("a").and_then(|pass_a| Ok((pass_a, pull("b")?)));
        match result {
            Ok((pass_a, pass_b)) => {
                // Every owned-shard section must be identical between
                // the passes, on every pulled node that carries it —
                // the at-rest proof.
                let unstable = owned.iter().find(|(shard, owner)| {
                    let names: Vec<String> = pass_b
                        .get(owner)
                        .map(|sections| {
                            sections
                                .iter()
                                .filter(|s| s.name.ends_with(&format!(":shard:{shard}")))
                                .map(|s| s.name.clone())
                                .collect()
                        })
                        .unwrap_or_default();
                    names.iter().any(|name| {
                        pass_a.get(owner).and_then(|s| section_bytes(s, name))
                            != pass_b.get(owner).and_then(|s| section_bytes(s, name))
                    })
                });
                if let Some((shard, owner)) = unstable {
                    last_error = format!(
                        "shard {shard} on `{owner}` is still being written (attempt {attempt})"
                    );
                } else {
                    let base = pass_b.get(&base_id).expect("base was pulled").clone();
                    let sections =
                        compose_replacement(base, &owned, &pass_b, table.shards(), scale)?;
                    return Ok(Resync {
                        sections,
                        owned_shards: owned.iter().map(|(shard, _)| *shard).collect(),
                    });
                }
            }
            Err(error) => last_error = error.to_string(),
        }
        thread::sleep(Duration::from_millis(RESYNC_BACKOFF_MS * attempt as u64));
    }
    Err(VlppError::protocol(
        None,
        format!("resync for `{dead_id}` never stabilized after {RESYNC_ATTEMPTS} attempts: {last_error}"),
    ))
}

/// `vlpp cluster` entry point: spawn, route, announce, supervise.
///
/// # Errors
///
/// [`VlppError::Cli`] for bad arguments, [`VlppError::Io`] /
/// [`VlppError::Protocol`] if a child cannot be spawned or never
/// announces.
pub fn cluster_main(args: &[String]) -> Result<(), VlppError> {
    let options = parse_cluster_args(args)?;
    run_cluster(&options)
}

/// Publishes `table` — the `--routing-out` file first (atomically),
/// then the `CLUSTER_UPDATE` stdout line — so a client that sees the
/// announcement can immediately read a file at least that new.
fn publish_update(table: &RoutingTable, routing_out: Option<&Path>) -> Result<(), VlppError> {
    let wire = table.to_json();
    if let Some(path) = routing_out {
        write_routing(path, &wire)?;
    }
    println!("CLUSTER_UPDATE {wire}");
    let _ = std::io::stdout().flush();
    Ok(())
}

/// Runs the cluster supervisor (see [`cluster_main`]).
///
/// # Errors
///
/// See [`cluster_main`].
pub fn run_cluster(options: &ClusterOptions) -> Result<(), VlppError> {
    for name in [
        "cluster.respawns",
        "cluster.resyncs",
        "cluster.resync_bytes",
        "cluster.heartbeats",
        "cluster.suspect",
    ] {
        vlpp_metrics::counter(name);
    }
    sig::install();
    let mut children = Vec::with_capacity(options.nodes);
    for i in 0..options.nodes {
        children.push(spawn_node(&format!("node{i}"), options, None)?);
    }
    let nodes = children.iter_mut().map(read_announce).collect::<Result<Vec<Node>, _>>()?;
    let mut table = RoutingTable::build(options.shards, nodes.clone())
        .map_err(|message| cli_error(format!("cannot build routing table: {message}")))?;
    vlpp_metrics::counter("cluster.nodes").add(options.nodes as u64);

    let wire = table.to_json();
    if let Some(path) = &options.routing_out {
        write_routing(path, &wire)?;
    }
    println!("CLUSTER {wire}");
    let _ = std::io::stdout().flush();

    let mut drains: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut slots: Vec<Slot> = children
        .into_iter()
        .zip(nodes)
        .map(|(mut child, node)| {
            if let Some(handle) = spawn_drain(&mut child) {
                drains.push(handle);
            }
            Slot { node, child, liveness: Liveness::Alive, gone: false }
        })
        .collect();

    let mut exited_clean = 0usize;
    let mut died = 0usize;
    let mut respawns = 0u64;
    let mut resyncs = 0u64;
    let mut respawns_left = options.max_respawns;
    let mut draining = false;
    let mut next_probe = Instant::now() + Duration::from_millis(options.probe_interval_ms);

    // One pass of "ask everyone still running to drain". Idempotent;
    // errors are ignored because a dead child has already drained the
    // hard way.
    let drain_all = |slots: &[Slot]| {
        for slot in slots.iter().filter(|s| !s.gone) {
            let _ = call_node(&slot.node.addr, PROBE_TIMEOUT_MS, "shutdown");
        }
    };

    while slots.iter().any(|slot| !slot.gone) {
        if sig::terminated() && !draining {
            draining = true;
            eprintln!(
                "cluster: termination signal, draining {} children",
                slots.iter().filter(|s| !s.gone).count()
            );
            drain_all(&slots);
        }

        for index in 0..slots.len() {
            if slots[index].gone {
                continue;
            }
            let status = match slots[index].child.child.try_wait() {
                Ok(None) => continue,
                Ok(Some(status)) => status,
                Err(error) => {
                    eprintln!("cluster: cannot wait for node `{}`: {error}", slots[index].node.id);
                    slots[index].gone = true;
                    died += 1;
                    continue;
                }
            };
            slots[index].gone = true;
            if status.success() {
                exited_clean += 1;
                if !draining {
                    // One clean exit means a client asked the cluster
                    // to shut down; propagate so respawned nodes (which
                    // that client may predate) drain too.
                    draining = true;
                    drain_all(&slots);
                }
                continue;
            }
            died += 1;
            vlpp_metrics::counter("cluster.nodes_died").incr();
            let dead_id = slots[index].node.id.clone();
            eprintln!("cluster: node `{dead_id}` terminated abnormally");
            if draining || respawns_left == 0 {
                continue;
            }
            let live: Vec<String> =
                slots.iter().filter(|s| !s.gone).map(|s| s.node.id.clone()).collect();
            match respawn_node(&dead_id, &live, &mut table, options, respawns) {
                Ok((slot, synced_shards)) => {
                    respawns += 1;
                    resyncs += 1;
                    respawns_left -= 1;
                    vlpp_metrics::counter("cluster.respawns").incr();
                    vlpp_metrics::counter("cluster.resyncs").incr();
                    publish_update(&table, options.routing_out.as_deref())?;
                    let announce = JsonValue::Object(vec![
                        ("id".to_string(), JsonValue::Str(slot.node.id.clone())),
                        ("addr".to_string(), JsonValue::Str(slot.node.addr.clone())),
                        ("pid".to_string(), JsonValue::UInt(slot.node.pid)),
                        ("synced_shards".to_string(), JsonValue::UInt(synced_shards)),
                        ("version".to_string(), JsonValue::UInt(table.version())),
                    ]);
                    println!("CLUSTER_RESPAWN {announce}");
                    let _ = std::io::stdout().flush();
                    let mut slot = slot;
                    if let Some(handle) = spawn_drain(&mut slot.child) {
                        drains.push(handle);
                    }
                    slots[index] = slot;
                }
                Err(error) => {
                    let detail = JsonValue::Object(vec![
                        ("id".to_string(), JsonValue::Str(dead_id.clone())),
                        ("error".to_string(), JsonValue::Str(error.to_string())),
                    ]);
                    println!("CLUSTER_RESYNC_ERROR {detail}");
                    let _ = std::io::stdout().flush();
                    eprintln!("cluster: giving up on `{dead_id}`: {error}");
                }
            }
        }

        if !draining && Instant::now() >= next_probe {
            next_probe = Instant::now() + Duration::from_millis(options.probe_interval_ms);
            for slot in slots.iter_mut().filter(|s| !s.gone) {
                vlpp_metrics::counter("cluster.heartbeats").incr();
                match call_node(&slot.node.addr, PROBE_TIMEOUT_MS, "ping") {
                    Ok(_) => slot.liveness = Liveness::Alive,
                    Err(_) => {
                        let misses = match slot.liveness {
                            Liveness::Alive => 1,
                            Liveness::Suspect(misses) => misses + 1,
                        };
                        slot.liveness = Liveness::Suspect(misses);
                        vlpp_metrics::counter("cluster.suspect").incr();
                        eprintln!(
                            "cluster: node `{}` missed probe {misses}/{}",
                            slot.node.id, options.miss_budget
                        );
                        if misses >= options.miss_budget {
                            // Condemn it: SIGKILL makes the failure
                            // unambiguous, and the reap path above
                            // handles the respawn.
                            eprintln!(
                                "cluster: node `{}` declared dead after {misses} missed probes",
                                slot.node.id
                            );
                            let _ = slot.child.child.kill();
                        }
                    }
                }
            }
        }

        thread::sleep(Duration::from_millis(25));
    }

    for drain in drains {
        let _ = drain.join();
    }
    let summary = JsonValue::Object(vec![
        ("nodes".to_string(), JsonValue::UInt(options.nodes as u64)),
        ("exited_clean".to_string(), JsonValue::UInt(exited_clean as u64)),
        ("died".to_string(), JsonValue::UInt(died as u64)),
        ("respawns".to_string(), JsonValue::UInt(respawns)),
        ("resyncs".to_string(), JsonValue::UInt(resyncs)),
        ("routing_version".to_string(), JsonValue::UInt(table.version())),
    ]);
    println!("CLUSTER_EXIT {summary}");
    if options.metrics {
        let registry = vlpp_metrics::Registry::global();
        eprint!("{}", registry.render_table());
        println!("METRICS {}", registry.snapshot());
    }
    Ok(())
}

/// Replaces the dead node: resync a snapshot from the survivors, spawn
/// the replacement under the same id, verify it answers `ping`, and
/// update (but do not yet publish) the routing table. Returns the new
/// slot and how many shards were overlaid.
fn respawn_node(
    dead_id: &str,
    live: &[String],
    table: &mut RoutingTable,
    options: &ClusterOptions,
    sequence: u64,
) -> Result<(Slot, u64), VlppError> {
    let resync = resync_snapshot(table, dead_id, live, options.io_timeout_ms, options.scale)?;
    let path = std::env::temp_dir()
        .join(format!("vlpp-resync-{}-{dead_id}-{sequence}.vlps", std::process::id()));
    let mut file = std::fs::File::create(&path)
        .map_err(|source| VlppError::io(path.clone(), "create", source))?;
    write_snapshot(&resync.sections, &mut file).map_err(|source| {
        VlppError::protocol(None, format!("cannot write {}: {source}", path.display()))
    })?;
    drop(file);

    let result = (|| {
        let mut child = spawn_node(dead_id, options, Some(&path))?;
        let node = read_announce(&mut child)?;
        // Promotion gate: it must answer the same probe the heartbeat
        // loop uses before any client is pointed at it.
        call_node(&node.addr, PROBE_TIMEOUT_MS, "ping")?;
        table
            .set_node(dead_id, node.addr.clone(), node.pid)
            .map_err(|message| VlppError::protocol(None, message))?;
        eprintln!(
            "cluster: respawned `{dead_id}` as pid {} at {} ({} shards resynced)",
            node.pid,
            node.addr,
            resync.owned_shards.len()
        );
        Ok((
            Slot { node, child, liveness: Liveness::Alive, gone: false },
            resync.owned_shards.len() as u64,
        ))
    })();
    // The child has loaded (or failed to load) the snapshot by the time
    // it announces; either way the temp file is done.
    let _ = std::fs::remove_file(&path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ClusterOptions, VlppError> {
        parse_cluster_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_defaults_and_flags() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.nodes, 2);
        assert_eq!(options.shards, 4);
        assert_eq!(options.probe_interval_ms, 500);
        assert_eq!(options.miss_budget, 3);
        assert_eq!(options.max_respawns, 16, "self-healing must be on by default");
        assert_eq!(options.io_timeout_ms, super::super::DEFAULT_IO_TIMEOUT_MS);
        assert!(!options.metrics);
        let options = parse(&[
            "--nodes",
            "3",
            "--shards",
            "8",
            "--queue-depth",
            "16",
            "--scale",
            "1000000",
            "--routing-out",
            "/tmp/r.json",
            "--probe-interval-ms",
            "50",
            "--miss-budget",
            "2",
            "--max-respawns",
            "0",
            "--io-timeout-ms",
            "750",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(options.nodes, 3);
        assert_eq!(options.shards, 8);
        assert_eq!(options.queue_depth, 16);
        assert_eq!(options.scale.divisor(), 1_000_000);
        assert_eq!(options.routing_out.as_deref(), Some(std::path::Path::new("/tmp/r.json")));
        assert_eq!(options.probe_interval_ms, 50);
        assert_eq!(options.miss_budget, 2);
        assert_eq!(options.max_respawns, 0, "0 must disable self-healing, not error");
        assert_eq!(options.io_timeout_ms, 750);
        assert!(options.metrics);
    }

    /// Zero (and one-node) counts are typed CLI errors, never clamps:
    /// a single node cannot host a replica, and zero shards routes
    /// nothing. `--max-respawns 0` and `--io-timeout-ms 0` are the
    /// documented "off" switches and stay legal.
    #[test]
    fn zero_and_single_counts_are_rejected_not_clamped() {
        for bad in [
            &["--nodes", "0"][..],
            &["--nodes", "1"],
            &["--shards", "0"],
            &["--queue-depth", "0"],
            &["--scale", "0"],
            &["--probe-interval-ms", "0"],
            &["--miss-budget", "0"],
        ] {
            let error = parse(bad).unwrap_err();
            assert_eq!(error.phase(), "cli", "{bad:?}");
        }
        assert!(parse(&["--max-respawns", "0"]).is_ok());
        assert!(parse(&["--io-timeout-ms", "0"]).is_ok());
    }

    /// The resync composer refuses to fabricate state: a missing
    /// owner section is a typed error, and the composed stream must
    /// decode whole.
    #[test]
    fn compose_replacement_rejects_missing_owner_sections() {
        // A manifest-only base decodes to zero models, so an empty
        // owner map composes trivially...
        let manifest = SnapshotSection {
            name: "manifest".to_string(),
            payload: br#"{"format":1,"scale":1000,"models":[]}"#.to_vec(),
        };
        let scale = Scale::new(1000);
        let composed = compose_replacement(
            vec![manifest.clone()],
            &[],
            &std::collections::HashMap::new(),
            4,
            scale,
        )
        .unwrap();
        assert_eq!(composed.len(), 1);
        // ...and a base that does not even decode is rejected.
        let error =
            compose_replacement(Vec::new(), &[], &std::collections::HashMap::new(), 4, scale)
                .unwrap_err();
        assert!(error.to_string().contains("base snapshot rejected"), "{error}");
    }
}
