//! Served predictor instances: per-shard variable length path predictor
//! state plus the trace-order determinism contract.
//!
//! # Sharding and determinism
//!
//! A served model is split into `shards` independent predictor
//! instances; the branch at `pc` always belongs to shard
//! `pc.word() % shards`. Because every *static* branch maps to exactly
//! one shard, a shard sees a deterministic sub-stream of the trace, and
//! its predictions depend only on that sub-stream's order — not on
//! worker-thread count, batch boundaries, or which connection carried
//! the records. [`Model::apply_batch`] exploits this through
//! `Pool::map_sharded`: same-shard records run sequentially in batch
//! order, distinct shards run in parallel, and the result is
//! byte-identical to [`Model::apply_sequential`] at any `VLPP_THREADS`.
//!
//! The contract callers must keep: each shard's records must arrive in
//! trace order. One connection per shard group (what `vlpp loadgen`
//! does) satisfies this; two connections racing records of the *same*
//! shard would interleave nondeterministically at the server, exactly
//! as two cores racing uncoordinated updates to one predictor would.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use vlpp_core::{CondKernel, HashAssignment, IndKernel, KernelState, PathConfig, ProfileReport};
use vlpp_pool::Pool;
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::{Addr, BranchRecord, TraceSource, VlppError};

use super::routing;
use crate::experiment::Workloads;

/// Which branch population a served model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Conditional branches (taken / not-taken).
    Conditional,
    /// Indirect jumps and calls (target addresses; returns excluded).
    Indirect,
}

impl ModelKind {
    /// Wire name, matching `BranchKind`'s short names.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Conditional => "cond",
            ModelKind::Indirect => "ind",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "cond" => Some(ModelKind::Conditional),
            "ind" => Some(ModelKind::Indirect),
            _ => None,
        }
    }
}

/// Everything the `train` verb needs to build a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The model's name (the key later `predict`/`update` verbs use).
    pub name: String,
    /// Synthetic benchmark whose profile trace trains the assignment.
    /// Empty when the model trains from an ingested trace file instead.
    pub benchmark: String,
    /// Path to an ingested trace file to train from (any format
    /// `vlpp ingest` reads; see TRACES.md). Mutually exclusive with
    /// `benchmark` — the protocol layer enforces exactly one.
    pub trace: Option<String>,
    /// Branch population to predict.
    pub kind: ModelKind,
    /// Prediction-table index width in bits.
    pub index_bits: u32,
    /// Number of independent predictor shards.
    pub shards: usize,
}

/// One served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// A conditional direction prediction.
    Taken {
        /// The predicted direction.
        taken: bool,
        /// Whether it matched the record's actual outcome.
        correct: bool,
    },
    /// An indirect target prediction.
    Target {
        /// The predicted target (`Addr::NULL` when the predictor had no
        /// candidate — always scored as a miss).
        target: Addr,
        /// Whether it matched the record's actual target.
        correct: bool,
    },
}

impl ToJson for Prediction {
    fn to_json(&self) -> JsonValue {
        match *self {
            Prediction::Taken { taken, correct } => JsonValue::Object(vec![
                ("taken".to_string(), JsonValue::Bool(taken)),
                ("correct".to_string(), JsonValue::Bool(correct)),
            ]),
            Prediction::Target { target, correct } => JsonValue::Object(vec![
                ("target".to_string(), JsonValue::UInt(target.raw())),
                ("correct".to_string(), JsonValue::Bool(correct)),
            ]),
        }
    }
}

/// The kernel variant one shard owns. Shards run the structure-of-
/// arrays kernels from `vlpp-core` — the fused per-record step whose
/// bit-identity to the boxed reference the differential suite pins
/// (and the loadgen oracle re-proves end-to-end).
enum ShardPredictor {
    Conditional(CondKernel),
    Indirect(IndKernel),
}

/// One shard: its predictor kernel (which carries its own accuracy
/// counters).
pub struct ShardState {
    predictor: ShardPredictor,
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (predictions, mispredictions) = self.totals();
        f.debug_struct("ShardState")
            .field("predictions", &predictions)
            .field("mispredictions", &mispredictions)
            .finish_non_exhaustive()
    }
}

impl ShardState {
    /// Runs one record through the standard simulation protocol
    /// (predict → score → train on population members, observe on every
    /// record), returning the prediction for population members and
    /// `None` otherwise. This is the same state evolution as
    /// `runner::run_conditional` / `run_indirect` over the boxed
    /// reference, record at a time — the kernel is bit-identical.
    pub fn apply(&mut self, record: &BranchRecord) -> Option<Prediction> {
        match &mut self.predictor {
            ShardPredictor::Conditional(kernel) => {
                kernel.apply(record).map(|(taken, correct)| Prediction::Taken { taken, correct })
            }
            ShardPredictor::Indirect(kernel) => {
                kernel.apply(record).map(|(target, correct)| Prediction::Target { target, correct })
            }
        }
    }

    /// This shard's `(predictions, mispredictions)` totals.
    fn totals(&self) -> (u64, u64) {
        match &self.predictor {
            ShardPredictor::Conditional(kernel) => (kernel.predictions(), kernel.mispredictions()),
            ShardPredictor::Indirect(kernel) => (kernel.predictions(), kernel.mispredictions()),
        }
    }

    /// Number of distinct static branches this shard predicted.
    fn static_branches(&self) -> usize {
        match &self.predictor {
            ShardPredictor::Conditional(kernel) => kernel.static_branches(),
            ShardPredictor::Indirect(kernel) => kernel.static_branches(),
        }
    }
}

/// One shard's complete serializable dynamic state, as the snapshot
/// codec carries it: the shared kernel core plus the kind-specific
/// prediction plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSnapshot {
    /// A conditional shard: core state + the 2-bit counter plane words.
    Conditional {
        /// Kernel core state (hashers, history stack, statistics rows).
        state: KernelState,
        /// The counter plane's packed words.
        words: Vec<u64>,
    },
    /// An indirect shard: core state + the target plane's two arrays.
    Indirect {
        /// Kernel core state (hashers, history stack, statistics rows).
        state: KernelState,
        /// The target plane's full-width target slots.
        targets: Vec<u64>,
        /// The target plane's valid bitmap words.
        valid: Vec<u64>,
    },
}

/// A trained, shard-partitioned predictor instance.
pub struct Model {
    /// The spec the model was trained from.
    pub spec: ModelSpec,
    /// Profiled static branches (from the training report, for the
    /// `train` response).
    pub profiled_branches: usize,
    /// The assignment's default hash number.
    pub default_hash: u8,
    /// The profiled hash assignment the shards were built from — kept
    /// so a snapshot can rebuild the model without re-profiling.
    assignment: HashAssignment,
    shards: Vec<Mutex<ShardState>>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("spec", &self.spec)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// A poisoned shard mutex means a previous `apply` panicked mid-update;
/// the predictor state is still structurally valid (only partially
/// trained), so serving continues with whatever state is there rather
/// than wedging every later request on the poison.
fn lock_shard(shard: &Mutex<ShardState>) -> MutexGuard<'_, ShardState> {
    shard.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Reads a training trace from disk, streaming through the ingestion
/// adapters (format chosen by extension, as `vlpp ingest` does).
/// Profiling needs the whole trace, so this materializes it.
fn load_training_trace(path: &std::path::Path) -> Result<vlpp_trace::Trace, VlppError> {
    let format = vlpp_trace::ingest::TraceFormat::from_path(path).ok_or_else(|| {
        VlppError::protocol(
            Some("train".to_string()),
            format!(
                "cannot guess the trace format of `{}` from its extension \
                 (want .vlpc, .champsim/.bin, .csv, or .jsonl)",
                path.display()
            ),
        )
    })?;
    let file = std::fs::File::open(path).map_err(|e| VlppError::io(path, "open", e))?;
    let mut source = vlpp_trace::ingest::open_source(format, std::io::BufReader::new(file))
        .map_err(|e| VlppError::trace_file(path, e))?;
    source.read_to_trace().map_err(|e| VlppError::trace_file(path, e))
}

impl Model {
    /// Profiles the training workload — `spec.benchmark` (memoized in
    /// `workloads`) or, when `spec.trace` is set, an ingested trace
    /// file — and builds `spec.shards` independent predictor instances
    /// from the resulting hash assignment.
    ///
    /// # Errors
    ///
    /// [`VlppError::Protocol`] for an unknown benchmark name, an
    /// unrecognizable trace extension, or a zero shard count;
    /// [`VlppError::Io`] / [`VlppError::Trace`] when the trace file
    /// cannot be opened or parsed.
    pub fn train(spec: ModelSpec, workloads: &Workloads) -> Result<Model, VlppError> {
        if spec.shards == 0 {
            return Err(VlppError::protocol(
                Some("train".to_string()),
                "shard count must be at least 1",
            ));
        }
        let report: Arc<ProfileReport> = if let Some(path) = &spec.trace {
            let trace = load_training_trace(std::path::Path::new(path))?;
            let builder = vlpp_core::ProfileBuilder::new(vlpp_core::ProfileConfig::new(
                PathConfig::new(spec.index_bits),
            ));
            Arc::new(match spec.kind {
                ModelKind::Conditional => builder.profile_conditional(&trace),
                ModelKind::Indirect => builder.profile_indirect(&trace),
            })
        } else {
            let benchmark = vlpp_synth::suite::benchmark(&spec.benchmark).ok_or_else(|| {
                VlppError::protocol(
                    Some("train".to_string()),
                    format!("unknown benchmark `{}`", spec.benchmark),
                )
            })?;
            match spec.kind {
                ModelKind::Conditional => {
                    workloads.profile_conditional(&benchmark, spec.index_bits)
                }
                ModelKind::Indirect => workloads.profile_indirect(&benchmark, spec.index_bits),
            }
        };
        let shards = (0..spec.shards)
            .map(|_| {
                let config = PathConfig::new(spec.index_bits);
                let predictor = match spec.kind {
                    ModelKind::Conditional => {
                        ShardPredictor::Conditional(CondKernel::new(&config, &report.assignment))
                    }
                    ModelKind::Indirect => {
                        ShardPredictor::Indirect(IndKernel::new(&config, &report.assignment))
                    }
                };
                Mutex::new(ShardState { predictor })
            })
            .collect();
        Ok(Model {
            profiled_branches: report.profiled_branches,
            default_hash: report.default_hash,
            assignment: report.assignment.clone(),
            spec,
            shards,
        })
    }

    /// The shard that owns the branch at `pc` (see
    /// [`routing::shard_of`] — the same map the cluster routing table
    /// uses).
    pub fn owner(&self, pc: Addr) -> usize {
        routing::shard_of(pc, self.shards.len())
    }

    /// The profiled hash assignment the shards were built from.
    pub fn assignment(&self) -> &HashAssignment {
        &self.assignment
    }

    /// Exports every shard's dynamic state, in shard order. Each shard
    /// is locked only while it is copied, so an export during live
    /// traffic is per-shard consistent (callers who need a fully
    /// quiescent image stop sending first, as `vlpp loadgen --save`
    /// does).
    pub fn export_shards(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|shard| match &lock_shard(shard).predictor {
                ShardPredictor::Conditional(kernel) => {
                    let (state, words) = kernel.export_state();
                    ShardSnapshot::Conditional { state, words }
                }
                ShardPredictor::Indirect(kernel) => {
                    let (state, targets, valid) = kernel.export_state();
                    ShardSnapshot::Indirect { state, targets, valid }
                }
            })
            .collect()
    }

    /// Rebuilds a model from snapshot parts: fresh kernels from the
    /// spec + assignment, then each shard's dynamic state restored into
    /// them. The inverse of [`Model::export_shards`].
    ///
    /// # Errors
    ///
    /// A message naming the first inconsistency: shard-count or
    /// kind/state mismatches, or any damage the kernel-level
    /// `restore_state` validation rejects. Nothing panics; the caller
    /// (the snapshot loader) wraps the message in a typed
    /// [`VlppError::Checkpoint`].
    pub fn from_snapshot(
        spec: ModelSpec,
        profiled_branches: usize,
        assignment: HashAssignment,
        shard_states: Vec<ShardSnapshot>,
    ) -> Result<Model, String> {
        if spec.shards == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if shard_states.len() != spec.shards {
            return Err(format!(
                "snapshot has {} shard sections, spec says {}",
                shard_states.len(),
                spec.shards
            ));
        }
        let default_hash = assignment.default_hash();
        let shards = shard_states
            .into_iter()
            .enumerate()
            .map(|(i, snapshot)| {
                let config = PathConfig::new(spec.index_bits);
                let predictor = match (spec.kind, snapshot) {
                    (ModelKind::Conditional, ShardSnapshot::Conditional { state, words }) => {
                        let mut kernel = CondKernel::new(&config, &assignment);
                        kernel
                            .restore_state(&state, words)
                            .map_err(|why| format!("shard {i}: {why}"))?;
                        ShardPredictor::Conditional(kernel)
                    }
                    (ModelKind::Indirect, ShardSnapshot::Indirect { state, targets, valid }) => {
                        let mut kernel = IndKernel::new(&config, &assignment);
                        kernel
                            .restore_state(&state, targets, valid)
                            .map_err(|why| format!("shard {i}: {why}"))?;
                        ShardPredictor::Indirect(kernel)
                    }
                    (kind, _) => {
                        return Err(format!(
                            "shard {i}: state kind does not match the spec's `{}`",
                            kind.name()
                        ));
                    }
                };
                Ok(Mutex::new(ShardState { predictor }))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Model { spec, profiled_branches, default_hash, assignment, shards })
    }

    /// Runs a batch through the shards on the global worker pool:
    /// same-shard records stay sequential in batch order, distinct
    /// shards run in parallel. One prediction slot per input record, in
    /// input order.
    pub fn apply_batch(&self, records: &[BranchRecord]) -> Vec<Option<Prediction>> {
        let _span = vlpp_metrics::span("sim.predict_ns");
        let started = Instant::now();
        let items = records.iter().map(|record| (self.owner(record.pc()), *record)).collect();
        let predictions = Pool::global().map_sharded(items, |shard, record: BranchRecord| {
            lock_shard(&self.shards[shard]).apply(&record)
        });
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            vlpp_metrics::gauge("sim.records_per_sec")
                .record((records.len() as f64 / elapsed) as u64);
        }
        predictions
    }

    /// The single-threaded reference for [`Model::apply_batch`]: applies
    /// records one at a time in input order. `vlpp loadgen` uses this to
    /// compute the offline predictions the served ones must match
    /// byte-for-byte.
    pub fn apply_sequential(&self, records: &[BranchRecord]) -> Vec<Option<Prediction>> {
        records
            .iter()
            .map(|record| lock_shard(&self.shards[self.owner(record.pc())]).apply(record))
            .collect()
    }

    /// Accuracy totals across all shards, as the `stats` verb reports
    /// them — aggregate counters plus a `per_shard` breakdown in shard
    /// order (what the cluster oracle compares shard-by-shard after a
    /// failover).
    pub fn stats_json(&self) -> JsonValue {
        let mut predictions = 0u64;
        let mut mispredictions = 0u64;
        let mut static_branches = 0usize;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let state = lock_shard(shard);
            let (p, m) = state.totals();
            predictions += p;
            mispredictions += m;
            static_branches += state.static_branches();
            per_shard.push(JsonValue::Object(vec![
                ("predictions".to_string(), JsonValue::UInt(p)),
                ("mispredictions".to_string(), JsonValue::UInt(m)),
            ]));
        }
        let miss_rate =
            if predictions == 0 { 0.0 } else { mispredictions as f64 / predictions as f64 };
        let mut fields =
            vec![("benchmark".to_string(), JsonValue::Str(self.spec.benchmark.clone()))];
        if let Some(trace) = &self.spec.trace {
            fields.push(("trace".to_string(), JsonValue::Str(trace.clone())));
        }
        fields.extend(vec![
            ("kind".to_string(), JsonValue::Str(self.spec.kind.name().to_string())),
            ("index_bits".to_string(), JsonValue::UInt(self.spec.index_bits as u64)),
            ("shards".to_string(), JsonValue::UInt(self.spec.shards as u64)),
            ("predictions".to_string(), JsonValue::UInt(predictions)),
            ("mispredictions".to_string(), JsonValue::UInt(mispredictions)),
            ("miss_rate".to_string(), JsonValue::Float(miss_rate)),
            ("static_branches".to_string(), JsonValue::UInt(static_branches as u64)),
            ("per_shard".to_string(), JsonValue::Array(per_shard)),
        ]);
        JsonValue::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;
    use crate::runner::RunStats;
    use vlpp_core::PathConditional;
    use vlpp_predict::{BranchObserver, ConditionalPredictor};

    fn spec(shards: usize) -> ModelSpec {
        ModelSpec {
            name: "m".to_string(),
            benchmark: "compress".to_string(),
            trace: None,
            kind: ModelKind::Conditional,
            index_bits: 10,
            shards,
        }
    }

    fn test_records(workloads: &Workloads, n: usize) -> Vec<BranchRecord> {
        let benchmark = vlpp_synth::suite::benchmark("compress").unwrap();
        workloads.test_trace(&benchmark).iter().take(n).copied().collect()
    }

    #[test]
    fn unknown_benchmark_is_a_protocol_error() {
        let workloads = Workloads::new(Scale::new(1_000_000));
        let mut bad = spec(1);
        bad.benchmark = "nonesuch".to_string();
        let error = Model::train(bad, &workloads).unwrap_err();
        assert_eq!(error.phase(), "protocol");
    }

    #[test]
    fn batched_parallel_apply_matches_sequential() {
        let workloads = Workloads::new(Scale::new(1_000_000));
        let records = test_records(&workloads, 4000);

        let reference = Model::train(spec(4), &workloads).unwrap();
        let expected = reference.apply_sequential(&records);

        let served = Model::train(spec(4), &workloads).unwrap();
        let mut got = Vec::new();
        for batch in records.chunks(97) {
            got.extend(served.apply_batch(batch));
        }
        assert_eq!(got, expected);
        assert_eq!(served.stats_json().to_json_string(), reference.stats_json().to_json_string());
    }

    #[test]
    fn one_shard_matches_the_offline_runner() {
        let workloads = Workloads::new(Scale::new(1_000_000));
        let benchmark = vlpp_synth::suite::benchmark("compress").unwrap();
        let records = test_records(&workloads, 4000);

        let model = Model::train(spec(1), &workloads).unwrap();
        let predictions = model.apply_sequential(&records);

        let report = workloads.profile_conditional(&benchmark, 10);
        let mut offline = PathConditional::new(PathConfig::new(10), report.assignment.clone());
        let mut stats = RunStats::default();
        for (record, slot) in records.iter().zip(&predictions) {
            if record.is_conditional() {
                let taken = offline.predict(record.pc());
                let correct = taken == record.taken();
                stats.record(record.pc(), correct);
                offline.train(record.pc(), record.taken());
                assert_eq!(*slot, Some(Prediction::Taken { taken, correct }));
            } else {
                assert_eq!(*slot, None);
            }
            offline.observe(record);
        }
        let served_stats = model.stats_json();
        assert_eq!(
            served_stats.get("predictions").and_then(|v| v.as_u64()),
            Some(stats.predictions)
        );
        assert_eq!(
            served_stats.get("mispredictions").and_then(|v| v.as_u64()),
            Some(stats.mispredictions)
        );
    }

    #[test]
    fn trains_from_an_ingested_compact_trace_file() {
        use vlpp_trace::compact;
        use vlpp_trace::source::MemorySource;
        let workloads = Workloads::new(Scale::new(1_000_000));
        let benchmark = vlpp_synth::suite::benchmark("compress").unwrap();
        let training = workloads.profile_trace(&benchmark);

        let dir = std::env::temp_dir().join(format!("vlpp-train-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compress.vlpc");
        let mut bytes = Vec::new();
        compact::copy_to_chunked(&mut MemorySource::new((*training).clone()), &mut bytes, 512)
            .unwrap();
        std::fs::write(&path, bytes).unwrap();

        let mut trace_spec = spec(2);
        trace_spec.benchmark = String::new();
        trace_spec.trace = Some(path.display().to_string());
        let from_file = Model::train(trace_spec, &workloads).unwrap();
        // Same records profiled from a file must yield the same
        // assignment the benchmark path produces.
        let from_benchmark = Model::train(spec(2), &workloads).unwrap();
        assert_eq!(from_file.assignment(), from_benchmark.assignment());
        assert_eq!(from_file.profiled_branches, from_benchmark.profiled_branches);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn training_from_a_missing_or_unknown_trace_is_a_typed_error() {
        let workloads = Workloads::new(Scale::new(1_000_000));
        let mut missing = spec(1);
        missing.benchmark = String::new();
        missing.trace = Some("/nonexistent/trace.vlpc".to_string());
        assert_eq!(Model::train(missing, &workloads).unwrap_err().phase(), "io");
        let mut unknown = spec(1);
        unknown.benchmark = String::new();
        unknown.trace = Some("/tmp/trace.xyz".to_string());
        assert_eq!(Model::train(unknown, &workloads).unwrap_err().phase(), "protocol");
    }

    #[test]
    fn indirect_models_score_null_targets_as_misses() {
        let workloads = Workloads::new(Scale::new(1_000_000));
        let mut indirect_spec = spec(2);
        indirect_spec.kind = ModelKind::Indirect;
        let model = Model::train(indirect_spec, &workloads).unwrap();
        let records = vec![
            BranchRecord::indirect(Addr::new(0x4000), Addr::new(0x5000)),
            BranchRecord::ret(Addr::new(0x5004), Addr::new(0x4004)),
            BranchRecord::indirect(Addr::new(0x4000), Addr::new(0x5000)),
        ];
        let predictions = model.apply_sequential(&records);
        // Cold first sight: no candidate target, a scored miss.
        assert!(matches!(predictions[0], Some(Prediction::Target { correct: false, .. })));
        // Returns are excluded from the indirect population.
        assert_eq!(predictions[1], None);
        // Second sight: the last-target path predicts correctly.
        assert!(matches!(predictions[2], Some(Prediction::Target { correct: true, .. })));
    }
}
