//! Wire protocol of `vlpp serve`: JSON request/response documents
//! carried in `vlpp_trace::frame` length-prefixed frames.
//!
//! Every request is one JSON object with a `"verb"` field and an
//! optional client-chosen `"id"` that the response echoes, so a client
//! pipelining several verbs on one connection can match responses by id
//! as well as by order (responses always come back in request order).
//! `SERVING.md` at the repository root gives the full grammar.

use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::{Addr, BranchKind, BranchRecord, VlppError};

use super::model::{ModelKind, ModelSpec, Prediction};

/// A parsed request: the echoed id plus the verb payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// The verb payload.
    pub verb: Verb,
}

/// The verbs of the serving protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Build (or rebuild) a named predictor instance from a profiled
    /// hash assignment.
    Train(ModelSpec),
    /// Run a batch of records through a model, returning one prediction
    /// slot per record.
    Predict {
        /// The model to drive.
        model: String,
        /// The retired-branch batch, in program order.
        records: Vec<BranchRecord>,
    },
    /// As `predict`, but fire-and-forget: the state transition is
    /// identical (predict → train → observe per record), only the
    /// response omits the predictions.
    Update {
        /// The model to drive.
        model: String,
        /// The retired-branch batch, in program order.
        records: Vec<BranchRecord>,
    },
    /// Aggregated accuracy counters for one model (or all models).
    Stats {
        /// The model to report, or `None` for a per-model summary.
        model: Option<String>,
    },
    /// Persist one model (or every model) to a versioned snapshot file
    /// on the *server's* filesystem.
    Save {
        /// Where to write the snapshot.
        path: String,
        /// The model to save, or `None` for all models (sorted by
        /// name).
        model: Option<String>,
    },
    /// Load every model from a snapshot file on the server's
    /// filesystem, replacing same-named models.
    Load {
        /// The snapshot to read.
        path: String,
    },
    /// Liveness probe: answers immediately with the node's pid and
    /// drain state. The cluster supervisor's heartbeat loop drives this.
    Ping,
    /// Stream the node's models as a VLPS snapshot: the response header
    /// declares `bytes` and `chunks`, then exactly `chunks` binary
    /// frames follow carrying the envelope. The cluster supervisor uses
    /// this to warm-start a respawned node from a surviving shard owner.
    Sync {
        /// The model to stream, or `None` for every model (sorted by
        /// name).
        model: Option<String>,
    },
    /// Graceful drain: stop accepting connections, finish queued
    /// requests, then exit.
    Shutdown,
}

impl Verb {
    /// The verb's wire name (the metrics label under `serve.requests.*`).
    pub fn name(&self) -> &'static str {
        match self {
            Verb::Train(_) => "train",
            Verb::Predict { .. } => "predict",
            Verb::Update { .. } => "update",
            Verb::Stats { .. } => "stats",
            Verb::Save { .. } => "save",
            Verb::Load { .. } => "load",
            Verb::Ping => "ping",
            Verb::Sync { .. } => "sync",
            Verb::Shutdown => "shutdown",
        }
    }
}

fn field<'a>(
    object: &'a JsonValue,
    verb: Option<&str>,
    key: &str,
) -> Result<&'a JsonValue, VlppError> {
    object.get(key).ok_or_else(|| {
        VlppError::protocol(verb.map(str::to_string), format!("missing field `{key}`"))
    })
}

fn str_field(object: &JsonValue, verb: Option<&str>, key: &str) -> Result<String, VlppError> {
    field(object, verb, key)?.as_str().map(str::to_string).ok_or_else(|| {
        VlppError::protocol(verb.map(str::to_string), format!("field `{key}` must be a string"))
    })
}

fn u64_field(object: &JsonValue, verb: Option<&str>, key: &str) -> Result<u64, VlppError> {
    field(object, verb, key)?.as_u64().ok_or_else(|| {
        VlppError::protocol(
            verb.map(str::to_string),
            format!("field `{key}` must be an unsigned integer"),
        )
    })
}

/// Decodes one wire record: `{"pc":u64,"target":u64,"kind":"cond",
/// "taken":bool}`. The `kind` names are `BranchKind::name()`'s; `taken`
/// is only meaningful (and only required) for conditionals.
pub fn record_from_json(value: &JsonValue, verb: &str) -> Result<BranchRecord, VlppError> {
    let pc = u64_field(value, Some(verb), "pc")?;
    let target = u64_field(value, Some(verb), "target")?;
    let kind_name = str_field(value, Some(verb), "kind")?;
    let kind = BranchKind::from_name(&kind_name).ok_or_else(|| {
        VlppError::protocol(Some(verb.to_string()), format!("unknown branch kind `{kind_name}`"))
    })?;
    let taken = match value.get("taken") {
        Some(flag) => flag.as_bool().ok_or_else(|| {
            VlppError::protocol(Some(verb.to_string()), "field `taken` must be a boolean")
        })?,
        None if kind == BranchKind::Conditional => {
            return Err(VlppError::protocol(
                Some(verb.to_string()),
                "conditional records need a `taken` field",
            ));
        }
        // Non-conditional transfers are always taken.
        None => true,
    };
    Ok(BranchRecord::new(Addr::new(pc), Addr::new(target), kind, taken))
}

/// Encodes one record for the wire (the inverse of
/// [`record_from_json`]).
pub fn record_to_json(record: &BranchRecord) -> JsonValue {
    let mut fields = vec![
        ("pc".to_string(), JsonValue::UInt(record.pc().raw())),
        ("target".to_string(), JsonValue::UInt(record.target().raw())),
        ("kind".to_string(), JsonValue::Str(record.kind().name().to_string())),
    ];
    if record.is_conditional() {
        fields.push(("taken".to_string(), JsonValue::Bool(record.taken())));
    }
    JsonValue::Object(fields)
}

fn records_field(object: &JsonValue, verb: &str) -> Result<Vec<BranchRecord>, VlppError> {
    let items = field(object, Some(verb), "records")?.as_array().ok_or_else(|| {
        VlppError::protocol(Some(verb.to_string()), "field `records` must be an array")
    })?;
    items.iter().map(|item| record_from_json(item, verb)).collect()
}

/// Parses one request frame payload.
///
/// # Errors
///
/// [`VlppError::Json`] if the payload is not valid JSON at all, and
/// [`VlppError::Protocol`] for structurally valid JSON that violates
/// the protocol (not an object, unknown verb, missing or ill-typed
/// fields). Both leave the connection usable — the server answers with
/// an error response and keeps reading.
pub fn parse_request(payload: &[u8]) -> Result<Request, VlppError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| VlppError::protocol(None, "request payload is not UTF-8"))?;
    let value = JsonValue::parse(text)
        .map_err(|source| VlppError::Json { what: "request frame".to_string(), source })?;
    if value.as_object().is_none() {
        return Err(VlppError::protocol(None, "request must be a JSON object"));
    }
    let id =
        match value.get("id") {
            None => None,
            Some(id) => Some(id.as_u64().ok_or_else(|| {
                VlppError::protocol(None, "field `id` must be an unsigned integer")
            })?),
        };
    let verb_name = str_field(&value, None, "verb")?;
    let verb = match verb_name.as_str() {
        "train" => {
            let kind_name = str_field(&value, Some("train"), "kind")?;
            let kind = ModelKind::from_name(&kind_name).ok_or_else(|| {
                VlppError::protocol(
                    Some("train".to_string()),
                    format!("unknown model kind `{kind_name}` (expected `cond` or `ind`)"),
                )
            })?;
            let index_bits = u64_field(&value, Some("train"), "index_bits")?;
            if !(4..=24).contains(&index_bits) {
                return Err(VlppError::protocol(
                    Some("train".to_string()),
                    format!("index_bits {index_bits} outside the supported 4..=24"),
                ));
            }
            let shards = match value.get("shards") {
                None => 1,
                Some(n) => n.as_u64().filter(|&n| (1..=1024).contains(&n)).ok_or_else(|| {
                    VlppError::protocol(
                        Some("train".to_string()),
                        "field `shards` must be an integer in 1..=1024",
                    )
                })?,
            };
            let optional_str = |key: &str| -> Result<Option<String>, VlppError> {
                match value.get(key) {
                    None => Ok(None),
                    Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
                        VlppError::protocol(
                            Some("train".to_string()),
                            format!("field `{key}` must be a string"),
                        )
                    }),
                }
            };
            let benchmark = optional_str("benchmark")?;
            let trace = optional_str("trace")?;
            if benchmark.is_some() == trace.is_some() {
                return Err(VlppError::protocol(
                    Some("train".to_string()),
                    "exactly one of `benchmark` and `trace` is required",
                ));
            }
            Verb::Train(ModelSpec {
                name: str_field(&value, Some("train"), "model")?,
                benchmark: benchmark.unwrap_or_default(),
                trace,
                kind,
                index_bits: index_bits as u32,
                shards: shards as usize,
            })
        }
        "predict" => Verb::Predict {
            model: str_field(&value, Some("predict"), "model")?,
            records: records_field(&value, "predict")?,
        },
        "update" => Verb::Update {
            model: str_field(&value, Some("update"), "model")?,
            records: records_field(&value, "update")?,
        },
        "stats" => Verb::Stats {
            model: match value.get("model") {
                None => None,
                Some(model) => Some(model.as_str().map(str::to_string).ok_or_else(|| {
                    VlppError::protocol(Some("stats".to_string()), "field `model` must be a string")
                })?),
            },
        },
        "save" => Verb::Save {
            path: str_field(&value, Some("save"), "path")?,
            model: match value.get("model") {
                None => None,
                Some(model) => Some(model.as_str().map(str::to_string).ok_or_else(|| {
                    VlppError::protocol(Some("save".to_string()), "field `model` must be a string")
                })?),
            },
        },
        "load" => Verb::Load { path: str_field(&value, Some("load"), "path")? },
        "ping" => Verb::Ping,
        "sync" => Verb::Sync {
            model: match value.get("model") {
                None => None,
                Some(model) => Some(model.as_str().map(str::to_string).ok_or_else(|| {
                    VlppError::protocol(Some("sync".to_string()), "field `model` must be a string")
                })?),
            },
        },
        "shutdown" => Verb::Shutdown,
        other => {
            return Err(VlppError::protocol(
                Some(other.to_string()),
                format!("unknown verb `{other}`"),
            ));
        }
    };
    Ok(Request { id, verb })
}

/// Builds a success response: `{"ok":true,"verb":...,"id":...,<body>}`.
pub fn ok_response(verb: &str, id: Option<u64>, body: Vec<(String, JsonValue)>) -> JsonValue {
    let mut fields = vec![
        ("ok".to_string(), JsonValue::Bool(true)),
        ("verb".to_string(), JsonValue::Str(verb.to_string())),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), JsonValue::UInt(id)));
    }
    fields.extend(body);
    JsonValue::Object(fields)
}

/// Builds an error response: `{"ok":false,"id":...,"error":{...}}` with
/// the error's full [`ToJson`] form (phase, message, context).
pub fn error_response(id: Option<u64>, error: &VlppError) -> JsonValue {
    let mut fields = vec![("ok".to_string(), JsonValue::Bool(false))];
    if let Some(id) = id {
        fields.push(("id".to_string(), JsonValue::UInt(id)));
    }
    fields.push(("error".to_string(), error.to_json()));
    JsonValue::Object(fields)
}

/// Encodes a batch's prediction slots: one entry per input record —
/// `null` for records the model does not predict (wrong kind, returns),
/// otherwise the prediction object.
pub fn predictions_to_json(predictions: &[Option<Prediction>]) -> JsonValue {
    JsonValue::Array(predictions.iter().map(|slot| slot.to_json()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, VlppError> {
        parse_request(text.as_bytes())
    }

    #[test]
    fn parses_every_verb() {
        let request = parse(
            r#"{"verb":"train","id":7,"model":"m","benchmark":"gcc","kind":"cond","index_bits":12,"shards":4}"#,
        )
        .unwrap();
        assert_eq!(request.id, Some(7));
        match request.verb {
            Verb::Train(spec) => {
                assert_eq!(spec.name, "m");
                assert_eq!(spec.kind, ModelKind::Conditional);
                assert_eq!(spec.index_bits, 12);
                assert_eq!(spec.shards, 4);
            }
            other => panic!("expected train, got {other:?}"),
        }

        let request = parse(
            r#"{"verb":"predict","model":"m","records":[{"pc":64,"target":128,"kind":"cond","taken":true}]}"#,
        )
        .unwrap();
        match request.verb {
            Verb::Predict { records, .. } => {
                assert_eq!(records.len(), 1);
                assert!(records[0].is_conditional());
                assert!(records[0].taken());
            }
            other => panic!("expected predict, got {other:?}"),
        }

        assert!(matches!(
            parse(r#"{"verb":"update","model":"m","records":[]}"#).unwrap().verb,
            Verb::Update { .. }
        ));
        assert!(matches!(parse(r#"{"verb":"stats"}"#).unwrap().verb, Verb::Stats { model: None }));
        assert!(matches!(parse(r#"{"verb":"shutdown"}"#).unwrap().verb, Verb::Shutdown));
        assert!(matches!(parse(r#"{"verb":"ping"}"#).unwrap().verb, Verb::Ping));
        assert!(matches!(parse(r#"{"verb":"sync"}"#).unwrap().verb, Verb::Sync { model: None }));
        match parse(r#"{"verb":"sync","model":"m"}"#).unwrap().verb {
            Verb::Sync { model } => assert_eq!(model.as_deref(), Some("m")),
            other => panic!("expected sync, got {other:?}"),
        }
        assert_eq!(parse(r#"{"verb":"sync","model":7}"#).unwrap_err().phase(), "protocol");

        match parse(r#"{"verb":"save","path":"/tmp/m.vlps","model":"m"}"#).unwrap().verb {
            Verb::Save { path, model } => {
                assert_eq!(path, "/tmp/m.vlps");
                assert_eq!(model.as_deref(), Some("m"));
            }
            other => panic!("expected save, got {other:?}"),
        }
        assert!(matches!(
            parse(r#"{"verb":"save","path":"/tmp/m.vlps"}"#).unwrap().verb,
            Verb::Save { model: None, .. }
        ));
        assert!(matches!(
            parse(r#"{"verb":"load","path":"/tmp/m.vlps"}"#).unwrap().verb,
            Verb::Load { .. }
        ));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert_eq!(parse("not json").unwrap_err().phase(), "json-parse");
        assert_eq!(parse(r#"[1,2]"#).unwrap_err().phase(), "protocol");
        assert_eq!(parse(r#"{"no":"verb"}"#).unwrap_err().phase(), "protocol");
        assert_eq!(parse(r#"{"verb":"fly"}"#).unwrap_err().phase(), "protocol");
        assert_eq!(parse(r#"{"verb":"predict"}"#).unwrap_err().phase(), "protocol");
        assert_eq!(parse(r#"{"verb":"save"}"#).unwrap_err().phase(), "protocol");
        assert_eq!(parse(r#"{"verb":"load"}"#).unwrap_err().phase(), "protocol");
        assert_eq!(
            parse(r#"{"verb":"save","path":"p","model":7}"#).unwrap_err().phase(),
            "protocol"
        );
        let error = parse(r#"{"verb":"predict","model":"m","records":[{"pc":1}]}"#).unwrap_err();
        assert!(error.to_string().contains("target"), "{error}");
        let error = parse(
            r#"{"verb":"predict","model":"m","records":[{"pc":1,"target":2,"kind":"cond"}]}"#,
        )
        .unwrap_err();
        assert!(error.to_string().contains("taken"), "{error}");
        let error = parse(
            r#"{"verb":"train","model":"m","benchmark":"gcc","kind":"cond","index_bits":99}"#,
        )
        .unwrap_err();
        assert!(error.to_string().contains("index_bits"), "{error}");
    }

    #[test]
    fn train_takes_exactly_one_of_benchmark_and_trace() {
        let trained = parse(
            r#"{"verb":"train","model":"m","trace":"/tmp/t.vlpc","kind":"cond","index_bits":12}"#,
        )
        .unwrap();
        match trained.verb {
            Verb::Train(spec) => {
                assert_eq!(spec.trace.as_deref(), Some("/tmp/t.vlpc"));
                assert!(spec.benchmark.is_empty());
            }
            other => panic!("expected train, got {other:?}"),
        }
        for bad in [
            r#"{"verb":"train","model":"m","kind":"cond","index_bits":12}"#,
            r#"{"verb":"train","model":"m","benchmark":"gcc","trace":"/tmp/t.vlpc",
                "kind":"cond","index_bits":12}"#,
            r#"{"verb":"train","model":"m","trace":7,"kind":"cond","index_bits":12}"#,
        ] {
            let error = parse(bad).unwrap_err();
            assert_eq!(error.phase(), "protocol", "{bad}");
        }
    }

    #[test]
    fn records_round_trip_through_the_wire_form() {
        let records = [
            BranchRecord::conditional(Addr::new(0x1000), Addr::new(0x1040), false),
            BranchRecord::indirect(Addr::new(0x2000), Addr::new(0x3000)),
            BranchRecord::call(Addr::new(0x4000), Addr::new(0x5000)),
            BranchRecord::ret(Addr::new(0x5004), Addr::new(0x4004)),
            BranchRecord::unconditional(Addr::new(0x6000), Addr::new(0x7000)),
        ];
        for record in &records {
            let back = record_from_json(&record_to_json(record), "predict").unwrap();
            assert_eq!(&back, record);
        }
    }

    #[test]
    fn responses_echo_ids_and_carry_error_phases() {
        let ok = ok_response("stats", Some(3), vec![]);
        assert_eq!(ok.get("ok").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(ok.get("id").and_then(|v| v.as_u64()), Some(3));

        let error = VlppError::protocol(Some("predict".to_string()), "unknown model");
        let response = error_response(None, &error);
        assert_eq!(response.get("ok").and_then(|v| v.as_bool()), Some(false));
        let phase = response.get("error").and_then(|e| e.get("phase")).and_then(|v| v.as_str());
        assert_eq!(phase, Some("protocol"));
    }
}
