//! `vlpp serve` — a zero-dependency prediction daemon, plus the
//! `vlpp loadgen` client that stress-tests it.
//!
//! The server listens on a TCP address (or a Unix socket), speaks the
//! length-prefixed JSON protocol of [`protocol`] over
//! `vlpp_trace::frame` framing, and serves trained variable length path
//! predictor instances ([`model::Model`]). `SERVING.md` at the
//! repository root documents the wire grammar, the shard/determinism
//! model, and the backpressure knobs.
//!
//! # Threading model
//!
//! One acceptor (the calling thread), two threads per connection: a
//! *reader* that decodes frames into a bounded `sync_channel` (depth
//! `--queue-depth`; a full queue blocks the reader, which propagates
//! backpressure to the client through TCP), and a *processor* that
//! executes verbs and writes responses back in request order. Batch
//! execution itself fans out over the global `vlpp-pool` via
//! `Pool::map_sharded`, so same-shard records stay ordered while
//! distinct shards run in parallel.
//!
//! # Graceful drain
//!
//! The `shutdown` verb answers `ok`, then stops the acceptor (a dummy
//! self-connection wakes it out of `accept`) and half-closes the read
//! side of every open connection. Blocked readers see EOF, queued
//! frames still execute, every response still goes out, and the process
//! exits 0 once the last processor finishes. `SIGTERM`/`SIGINT` take
//! the same path (a signal-watcher thread polls a flag the handler
//! sets), so operators and CI teardown get a clean exit, not an abort.
//!
//! # Deadlines
//!
//! Every accepted socket carries `--io-timeout-ms` read/write deadlines
//! so a hung peer cannot pin a reader thread forever. An expiry while a
//! frame is in flight closes the connection and counts
//! `serve.io_timeouts`; an expiry on an *idle* connection is benign and
//! the reader simply waits again.

pub mod cluster;
pub mod loadgen;
pub mod model;
pub mod protocol;
pub mod routing;
pub mod snapshot;

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;

use vlpp_trace::frame::{self, write_frame, FrameRead};
use vlpp_trace::json::JsonValue;
use vlpp_trace::VlppError;

use crate::experiment::{Scale, Workloads};
pub use model::{Model, ModelKind, ModelSpec, Prediction};
pub use protocol::{Request, Verb};

/// Default bound of each connection's frame queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 32;

/// Default socket read/write deadline, in milliseconds. Generous next
/// to any healthy round trip, small enough that a hung peer releases
/// its thread the same minute. `0` disables deadlines.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;

/// Frame payload size the `sync` verb chunks its snapshot stream into —
/// comfortably under `MAX_FRAME_BYTES`.
const SYNC_CHUNK_BYTES: usize = 256 * 1024;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenSpec {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix-domain socket path (Unix targets only).
    Unix(PathBuf),
}

/// Parsed `vlpp serve` options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (default `127.0.0.1:0`).
    pub listen: ListenSpec,
    /// Per-connection frame-queue bound.
    pub queue_depth: usize,
    /// Workload scale for profile traces (must match the client's).
    pub scale: Scale,
    /// Print the metrics table + `METRICS` line on exit.
    pub metrics: bool,
    /// Warm restart: load this model snapshot before announcing.
    pub snapshot: Option<PathBuf>,
    /// Socket read/write deadline in milliseconds (`0` disables).
    pub io_timeout_ms: u64,
}

const SERVE_USAGE: &str = "\
usage: vlpp serve [--listen HOST:PORT | --uds PATH] [--queue-depth N]
                  [--scale N] [--metrics] [--snapshot FILE]
                  [--io-timeout-ms MS]

Binds, prints one `SERVE {json}` line on stdout announcing the bound
address, then serves the framed JSON protocol until a `shutdown` verb
arrives. With --snapshot, models saved by the `save` verb are loaded
before the announce line, so clients never see a half-warm server.
See SERVING.md.
";

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

/// Parses `vlpp serve` arguments.
///
/// # Errors
///
/// [`VlppError::Cli`] on unknown flags or malformed values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, VlppError> {
    let mut options = ServeOptions {
        listen: ListenSpec::Tcp("127.0.0.1:0".to_string()),
        queue_depth: DEFAULT_QUEUE_DEPTH,
        scale: Scale::from_env(),
        metrics: false,
        snapshot: None,
        io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => {
                let addr = iter.next().ok_or_else(|| cli_error("--listen needs HOST:PORT"))?;
                options.listen = ListenSpec::Tcp(addr.clone());
            }
            "--uds" => {
                let path = iter.next().ok_or_else(|| cli_error("--uds needs a socket path"))?;
                if cfg!(not(unix)) {
                    return Err(cli_error("--uds is only available on Unix targets"));
                }
                options.listen = ListenSpec::Unix(PathBuf::from(path));
            }
            "--queue-depth" => {
                options.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--queue-depth needs a positive integer"))?;
            }
            "--scale" => {
                let divisor = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| cli_error("--scale needs a positive integer"))?;
                options.scale = Scale::new(divisor);
            }
            "--metrics" => options.metrics = true,
            "--snapshot" => {
                let path = iter.next().ok_or_else(|| cli_error("--snapshot needs a file path"))?;
                options.snapshot = Some(PathBuf::from(path));
            }
            "--io-timeout-ms" => {
                options.io_timeout_ms = iter
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| cli_error("--io-timeout-ms needs milliseconds (0 disables)"))?;
            }
            "--help" | "-h" => return Err(cli_error(SERVE_USAGE)),
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{SERVE_USAGE}")))
            }
        }
    }
    Ok(options)
}

/// `vlpp serve` entry point: parse, bind, serve until shutdown.
///
/// # Errors
///
/// [`VlppError::Cli`] for bad arguments, [`VlppError::Io`] if the
/// listener cannot bind.
pub fn serve_main(args: &[String]) -> Result<(), VlppError> {
    let options = parse_serve_args(args)?;
    serve(options)
}

/// One bidirectional client connection (TCP or Unix).
#[derive(Debug)]
enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(stream) => stream.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.try_clone().map(Conn::Unix),
        }
    }

    /// Arms read/write deadlines on the socket (`0` leaves it
    /// unbounded). Errors are ignored: a socket that refuses a timeout
    /// still serves, it just keeps the old blocking behavior.
    fn set_timeouts(&self, ms: u64) {
        if ms == 0 {
            return;
        }
        let timeout = Some(std::time::Duration::from_millis(ms));
        let _ = match self {
            Conn::Tcp(stream) => {
                stream.set_read_timeout(timeout).and(stream.set_write_timeout(timeout))
            }
            #[cfg(unix)]
            Conn::Unix(stream) => {
                stream.set_read_timeout(timeout).and(stream.set_write_timeout(timeout))
            }
        };
    }

    /// Half-closes the read side: blocked `read_frame`s on any clone of
    /// this socket return EOF. Errors are ignored (the peer may already
    /// be gone, which achieves the same thing).
    fn shutdown_read(&self) {
        let _ = match self {
            Conn::Tcp(stream) => stream.shutdown(Shutdown::Read),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.shutdown(Shutdown::Read),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// The bound listener.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// Enough address to open a dummy connection to the listener — how the
/// `shutdown` verb wakes the acceptor out of a blocking `accept`.
#[derive(Debug, Clone)]
enum WakeHandle {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl WakeHandle {
    fn wake(&self) {
        let _ = match self {
            WakeHandle::Tcp(addr) => TcpStream::connect(addr).map(drop),
            #[cfg(unix)]
            WakeHandle::Unix(path) => UnixStream::connect(path).map(drop),
        };
    }
}

impl Listener {
    fn bind(spec: &ListenSpec) -> Result<Listener, VlppError> {
        match spec {
            ListenSpec::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|source| VlppError::io(addr, "bind", source)),
            #[cfg(unix)]
            ListenSpec::Unix(path) => {
                // A stale socket file from a killed server would make
                // bind fail; remove it first.
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path)
                    .map(|listener| Listener::Unix(listener, path.clone()))
                    .map_err(|source| VlppError::io(path.clone(), "bind", source))
            }
            #[cfg(not(unix))]
            ListenSpec::Unix(path) => {
                Err(cli_error(format!("unix socket {} unsupported on this target", path.display())))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(listener) => listener.accept().map(|(stream, _)| Conn::Tcp(stream)),
            #[cfg(unix)]
            Listener::Unix(listener, _) => listener.accept().map(|(stream, _)| Conn::Unix(stream)),
        }
    }

    /// `(transport, address)` for the `SERVE` announce line.
    fn describe(&self) -> Result<(&'static str, String), VlppError> {
        match self {
            Listener::Tcp(listener) => {
                let addr = listener
                    .local_addr()
                    .map_err(|source| VlppError::io("tcp-listener", "local_addr", source))?;
                Ok(("tcp", addr.to_string()))
            }
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(("unix", path.display().to_string())),
        }
    }

    fn wake_handle(&self) -> Result<WakeHandle, VlppError> {
        match self {
            Listener::Tcp(listener) => {
                let addr = listener
                    .local_addr()
                    .map_err(|source| VlppError::io("tcp-listener", "local_addr", source))?;
                Ok(WakeHandle::Tcp(addr))
            }
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(WakeHandle::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// State shared by every connection handler.
struct Shared {
    workloads: Workloads,
    models: Mutex<HashMap<String, Arc<Model>>>,
    draining: AtomicBool,
    /// Read-half handles of open connections, for the drain half-close.
    conns: Mutex<HashMap<u64, Conn>>,
    wake: WakeHandle,
}

impl Shared {
    fn lookup(&self, name: &str, verb: &str) -> Result<Arc<Model>, VlppError> {
        let models = lock(&self.models);
        models.get(name).cloned().ok_or_else(|| {
            VlppError::protocol(
                Some(verb.to_string()),
                format!("unknown model `{name}` (train it first)"),
            )
        })
    }
}

/// Mutex recovery, same policy as the model shards: a poisoned lock
/// means some handler panicked, and the maps it guards are still
/// structurally valid, so serving continues.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// SIGTERM/SIGINT handling without a signals crate: the platform libc
/// is already linked, so `signal(2)` is declared directly. The handler
/// only stores to an atomic (the async-signal-safe subset); a watcher
/// thread polls the flag and runs the ordinary drain path.
#[cfg(unix)]
pub(crate) mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler when SIGTERM or SIGINT arrives.
    static TERMINATE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes SIGTERM (15) and SIGINT (2) to the flag.
    pub(crate) fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(15, handler);
            signal(2, handler);
        }
    }

    /// True once a termination signal has arrived.
    pub(crate) fn terminated() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

/// Stub for non-Unix targets: no signals to catch, never terminated.
#[cfg(not(unix))]
pub(crate) mod sig {
    pub(crate) fn install() {}

    pub(crate) fn terminated() -> bool {
        false
    }
}

/// The drain sequence the `shutdown` verb and the signal watcher share:
/// flag first so the acceptor cannot miss it, then force every blocked
/// reader to EOF and wake the acceptor out of `accept`.
fn initiate_drain(shared: &Shared) {
    shared.draining.store(true, Ordering::SeqCst);
    for conn in lock(&shared.conns).values() {
        conn.shutdown_read();
    }
    shared.wake.wake();
}

/// Runs the server until a `shutdown` verb drains it.
///
/// Prints one `SERVE {json}` stdout line once bound — clients (and the
/// integration tests) parse it to find the actual address, which
/// matters with `--listen 127.0.0.1:0`.
///
/// # Errors
///
/// [`VlppError::Io`] if the listener cannot bind or describe itself.
pub fn serve(options: ServeOptions) -> Result<(), VlppError> {
    let listener = Listener::bind(&options.listen)?;
    let (transport, addr) = listener.describe()?;

    // Warm restart happens between bind and announce: the port is held
    // (no restart race), but no client connects until the models are
    // fully restored.
    let mut models = HashMap::new();
    if let Some(path) = &options.snapshot {
        for model in snapshot::load_models(path, options.scale)? {
            models.insert(model.spec.name.clone(), model);
        }
    }

    let announce = JsonValue::Object(vec![
        ("transport".to_string(), JsonValue::Str(transport.to_string())),
        ("addr".to_string(), JsonValue::Str(addr)),
        ("queue_depth".to_string(), JsonValue::UInt(options.queue_depth as u64)),
        ("scale".to_string(), JsonValue::UInt(options.scale.divisor())),
        ("pid".to_string(), JsonValue::UInt(std::process::id() as u64)),
        ("snapshot_models".to_string(), JsonValue::UInt(models.len() as u64)),
    ]);
    println!("SERVE {announce}");
    let _ = io::stdout().flush();

    let shared = Arc::new(Shared {
        workloads: Workloads::new(options.scale),
        models: Mutex::new(models),
        draining: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        wake: listener.wake_handle()?,
    });

    // Register the recovery-path counters up front so `--metrics`
    // snapshots always carry them — the metrics-check presence gate
    // must distinguish "never fired" from "counting removed".
    vlpp_metrics::counter("serve.io_timeouts");
    vlpp_metrics::counter("serve.sync_bytes");

    // SIGTERM/SIGINT drain exactly like the `shutdown` verb. The
    // watcher exits once either path sets `draining`.
    sig::install();
    {
        let shared = Arc::clone(&shared);
        thread::spawn(move || loop {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            if sig::terminated() {
                initiate_drain(&shared);
                return;
            }
            thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    let mut handlers = Vec::new();
    let mut next_id = 0u64;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let conn = match listener.accept() {
            Ok(conn) => conn,
            // Transient accept failures (e.g. the peer reset before we
            // got to it) must not kill the daemon.
            Err(_) => continue,
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The drain wake-up connection (or a client racing it).
            break;
        }
        vlpp_metrics::counter("serve.connections").incr();
        conn.set_timeouts(options.io_timeout_ms);
        let id = next_id;
        next_id += 1;
        if let Ok(clone) = conn.try_clone() {
            lock(&shared.conns).insert(id, clone);
        }
        let shared = Arc::clone(&shared);
        let queue_depth = options.queue_depth;
        handlers.push(thread::spawn(move || handle_connection(id, conn, shared, queue_depth)));
    }
    for handler in handlers {
        let _ = handler.join();
    }
    drop(listener);
    if options.metrics {
        let registry = vlpp_metrics::Registry::global();
        eprint!("{}", registry.render_table());
        println!("METRICS {}", registry.snapshot());
        let _ = io::stdout().flush();
    }
    Ok(())
}

/// Reader half: frames off the wire into the bounded queue. A full
/// queue first bumps `serve.backpressure_waits`, then blocks — which is
/// the backpressure propagating to the client through the transport.
///
/// A read-deadline expiry on an *idle* connection just loops (a client
/// holding a connection open is fine); an expiry mid-frame counts
/// `serve.io_timeouts` and closes, because a half-written frame means
/// the peer hung and the stream can never resynchronize.
fn reader_loop(mut conn: Conn, queue: SyncSender<Result<Vec<u8>, VlppError>>) {
    loop {
        match frame::read_frame_or_timeout(&mut conn) {
            Ok(FrameRead::Frame(payload)) => {
                let payload = match queue.try_send(Ok(payload)) {
                    Ok(()) => continue,
                    Err(TrySendError::Full(payload)) => {
                        vlpp_metrics::counter("serve.backpressure_waits").incr();
                        payload
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                };
                if queue.send(payload).is_err() {
                    return;
                }
            }
            Ok(FrameRead::IdleTimeout) => continue,
            // Clean EOF between frames: the client is done. Dropping
            // the sender closes the queue once it drains.
            Ok(FrameRead::Eof) => return,
            Err(error) => {
                if frame::is_timeout(&error) {
                    vlpp_metrics::counter("serve.io_timeouts").incr();
                }
                let _ = queue.send(Err(error));
                return;
            }
        }
    }
}

/// Processor half: executes queued frames in order, one response frame
/// per request frame.
fn handle_connection(id: u64, conn: Conn, shared: Arc<Shared>, queue_depth: usize) {
    let mut writer = conn;
    let processed = match writer.try_clone() {
        Ok(reader) => {
            let (sender, receiver) = sync_channel(queue_depth);
            let reader_thread = thread::spawn(move || reader_loop(reader, sender));
            process_queue(&mut writer, &receiver, &shared);
            // Unblock the reader (it may be mid-read on a socket the
            // processor abandoned after a write failure) and reap it.
            writer.shutdown_read();
            let _ = reader_thread.join();
            true
        }
        Err(_) => false,
    };
    if !processed {
        vlpp_metrics::counter("serve.errors.frame").incr();
    }
    lock(&shared.conns).remove(&id);
}

fn process_queue(writer: &mut Conn, queue: &Receiver<Result<Vec<u8>, VlppError>>, shared: &Shared) {
    while let Ok(next) = queue.recv() {
        match next {
            Ok(payload) => {
                let (response, trailing) = process_frame(&payload, shared);
                if let Err(error) = write_frame(&mut *writer, response.to_string().as_bytes()) {
                    // The client is gone; nothing left to respond to.
                    if frame::is_timeout(&error) {
                        vlpp_metrics::counter("serve.io_timeouts").incr();
                    }
                    return;
                }
                // Binary continuation frames (the `sync` stream) follow
                // their response header on the same ordered channel.
                for chunk in &trailing {
                    if let Err(error) = write_frame(&mut *writer, chunk) {
                        if frame::is_timeout(&error) {
                            vlpp_metrics::counter("serve.io_timeouts").incr();
                        }
                        return;
                    }
                }
            }
            Err(error) => {
                // Framing is not resynchronizable: answer with the
                // typed error (best-effort — the peer may have
                // disconnected mid-frame) and close.
                vlpp_metrics::counter("serve.errors.frame").incr();
                let response = protocol::error_response(None, &error);
                let _ = write_frame(&mut *writer, response.to_string().as_bytes());
                return;
            }
        }
    }
}

/// Parses and executes one request frame, returning the response
/// document plus any binary continuation frames to write after it (the
/// `sync` verb's snapshot chunks; empty for every other verb).
/// Protocol-level failures become error responses; the connection
/// stays usable.
fn process_frame(payload: &[u8], shared: &Shared) -> (JsonValue, Vec<Vec<u8>>) {
    let request = match protocol::parse_request(payload) {
        Ok(request) => request,
        Err(error) => {
            vlpp_metrics::counter("serve.errors.protocol").incr();
            return (protocol::error_response(None, &error), Vec::new());
        }
    };
    let verb = request.verb.name();
    vlpp_metrics::counter(&format!("serve.requests.{verb}")).incr();
    let _span = vlpp_metrics::span(&format!("serve.{verb}_ns"));
    match execute(request.verb, shared) {
        Ok((body, trailing)) => (protocol::ok_response(verb, request.id, body), trailing),
        Err(error) => {
            vlpp_metrics::counter("serve.errors.protocol").incr();
            (protocol::error_response(request.id, &error), Vec::new())
        }
    }
}

/// A verb's result: the response body fields, plus binary frames to
/// stream after the response (only `sync` uses the latter).
type ExecOutcome = (Vec<(String, JsonValue)>, Vec<Vec<u8>>);

fn execute(verb: Verb, shared: &Shared) -> Result<ExecOutcome, VlppError> {
    match verb {
        Verb::Train(spec) => {
            let model = Model::train(spec, &shared.workloads)?;
            let body = vec![
                ("model".to_string(), JsonValue::Str(model.spec.name.clone())),
                ("kind".to_string(), JsonValue::Str(model.spec.kind.name().to_string())),
                ("shards".to_string(), JsonValue::UInt(model.spec.shards as u64)),
                ("default_hash".to_string(), JsonValue::UInt(model.default_hash as u64)),
                ("profiled_branches".to_string(), JsonValue::UInt(model.profiled_branches as u64)),
            ];
            lock(&shared.models).insert(model.spec.name.clone(), Arc::new(model));
            Ok((body, Vec::new()))
        }
        Verb::Predict { model, records } => {
            let model = shared.lookup(&model, "predict")?;
            vlpp_metrics::counter("serve.records").add(records.len() as u64);
            vlpp_metrics::histogram("serve.batch_records").record(records.len() as u64);
            let predictions = model.apply_batch(&records);
            Ok((
                vec![("predictions".to_string(), protocol::predictions_to_json(&predictions))],
                Vec::new(),
            ))
        }
        Verb::Update { model, records } => {
            let model = shared.lookup(&model, "update")?;
            vlpp_metrics::counter("serve.records").add(records.len() as u64);
            vlpp_metrics::histogram("serve.batch_records").record(records.len() as u64);
            model.apply_batch(&records);
            Ok((vec![("records".to_string(), JsonValue::UInt(records.len() as u64))], Vec::new()))
        }
        Verb::Stats { model: Some(name) } => {
            let model = shared.lookup(&name, "stats")?;
            Ok((vec![("stats".to_string(), model.stats_json())], Vec::new()))
        }
        Verb::Stats { model: None } => {
            let models = lock(&shared.models);
            let mut entries: Vec<(String, JsonValue)> =
                models.iter().map(|(name, model)| (name.clone(), model.stats_json())).collect();
            // HashMap order is not deterministic; the wire form is.
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Ok((vec![("stats".to_string(), JsonValue::Object(entries))], Vec::new()))
        }
        Verb::Save { path, model } => {
            let models: Vec<Arc<Model>> = match model {
                Some(name) => vec![shared.lookup(&name, "save")?],
                None => {
                    let map = lock(&shared.models);
                    let mut all: Vec<Arc<Model>> = map.values().cloned().collect();
                    // HashMap order is not deterministic; the file is.
                    all.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
                    all
                }
            };
            if models.is_empty() {
                return Err(VlppError::protocol(
                    Some("save".to_string()),
                    "no models to save (train one first)",
                ));
            }
            let report =
                snapshot::save_models(Path::new(&path), &models, shared.workloads.scale())?;
            Ok((
                vec![
                    ("path".to_string(), JsonValue::Str(path)),
                    ("bytes".to_string(), JsonValue::UInt(report.bytes)),
                    ("sections".to_string(), JsonValue::UInt(report.sections as u64)),
                    (
                        "models".to_string(),
                        JsonValue::Array(report.models.into_iter().map(JsonValue::Str).collect()),
                    ),
                ],
                Vec::new(),
            ))
        }
        Verb::Load { path } => {
            let loaded = snapshot::load_models(Path::new(&path), shared.workloads.scale())?;
            let names: Vec<JsonValue> =
                loaded.iter().map(|m| JsonValue::Str(m.spec.name.clone())).collect();
            let mut map = lock(&shared.models);
            for model in loaded {
                map.insert(model.spec.name.clone(), model);
            }
            Ok((
                vec![
                    ("path".to_string(), JsonValue::Str(path)),
                    ("models".to_string(), JsonValue::Array(names)),
                ],
                Vec::new(),
            ))
        }
        Verb::Ping => Ok((
            vec![
                ("pid".to_string(), JsonValue::UInt(std::process::id() as u64)),
                ("draining".to_string(), JsonValue::Bool(shared.draining.load(Ordering::SeqCst))),
                ("models".to_string(), JsonValue::UInt(lock(&shared.models).len() as u64)),
            ],
            Vec::new(),
        )),
        Verb::Sync { model } => {
            let models: Vec<Arc<Model>> = match model {
                Some(name) => vec![shared.lookup(&name, "sync")?],
                None => {
                    let map = lock(&shared.models);
                    let mut all: Vec<Arc<Model>> = map.values().cloned().collect();
                    // HashMap order is not deterministic; the stream is.
                    all.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));
                    all
                }
            };
            let names: Vec<JsonValue> =
                models.iter().map(|m| JsonValue::Str(m.spec.name.clone())).collect();
            // An empty model set is a valid (manifest-only) snapshot:
            // a freshly spawned node syncing from an untrained peer
            // warm-starts to the same empty state.
            let sections = snapshot::encode_models(&models, shared.workloads.scale());
            let mut bytes = Vec::new();
            vlpp_trace::compact::write_snapshot(&sections, &mut bytes).map_err(|source| {
                VlppError::protocol(
                    Some("sync".to_string()),
                    format!("cannot encode the snapshot stream: {source}"),
                )
            })?;
            let chunks: Vec<Vec<u8>> = bytes.chunks(SYNC_CHUNK_BYTES).map(<[u8]>::to_vec).collect();
            vlpp_metrics::counter("serve.sync_bytes").add(bytes.len() as u64);
            Ok((
                vec![
                    ("bytes".to_string(), JsonValue::UInt(bytes.len() as u64)),
                    ("chunks".to_string(), JsonValue::UInt(chunks.len() as u64)),
                    ("scale".to_string(), JsonValue::UInt(shared.workloads.scale().divisor())),
                    ("models".to_string(), JsonValue::Array(names)),
                ],
                chunks,
            ))
        }
        Verb::Shutdown => {
            // This handler's own response is written by the caller
            // after we return — initiate_drain only closes read halves.
            initiate_drain(shared);
            Ok((vec![("draining".to_string(), JsonValue::Bool(true))], Vec::new()))
        }
    }
}
