//! Versioned model snapshots: served predictor state ⇄ the `VLPS`
//! envelope of `vlpp_trace::compact`.
//!
//! # Layout
//!
//! One snapshot file holds a `manifest` section plus, per model `M`,
//! three kinds of section (`SERVING.md` gives the byte-level grammar):
//!
//! | Section | Encoding | Contents |
//! |---|---|---|
//! | `manifest` | JSON | format version, workload scale, model names |
//! | `m:M:spec` | JSON | the [`ModelSpec`] + profile summary |
//! | `m:M:assign` | binary LE | the profiled hash assignment |
//! | `m:M:shard:I` | binary LE | shard `I`'s dynamic kernel state |
//!
//! The envelope layer already chunks large payloads under the 1 MiB
//! frame cap and checksums each section (FNV-1a over name then
//! payload), so this module only decides *what* the bytes mean. Every
//! decode failure is a typed [`VlppError::Checkpoint`] naming the
//! section and the byte offset inside it — never a panic, never a
//! silently wrong model (the property suite over the envelope plus
//! [`Model::from_snapshot`]'s validate-before-mutate restore enforce
//! that end to end).
//!
//! Writes are atomic: the envelope is written to `<path>.tmp` and
//! renamed over `<path>`, so a crash mid-save leaves the previous
//! snapshot intact (same discipline as `vlpp_sim::checkpoint`).

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vlpp_core::{HashAssignment, KernelState};
use vlpp_trace::compact::{read_snapshot, write_snapshot, SnapshotSection};
use vlpp_trace::json::JsonValue;
use vlpp_trace::{Addr, VlppError};

use super::model::{Model, ModelKind, ModelSpec, ShardSnapshot};
use crate::experiment::Scale;

/// Format version of the *section layout* (the envelope has its own
/// wire version; this one governs what the sections mean).
pub const SNAPSHOT_FORMAT: u64 = 1;

fn checkpoint_error(path: &Path, message: impl Into<String>) -> VlppError {
    VlppError::Checkpoint { path: path.to_path_buf(), message: message.into() }
}

/// What [`save_models`] wrote, for the `save` verb's response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// The snapshot file.
    pub path: PathBuf,
    /// Total bytes written.
    pub bytes: u64,
    /// Number of envelope sections.
    pub sections: usize,
    /// The saved model names, sorted.
    pub models: Vec<String>,
}

// ---------------------------------------------------------------------
// Binary section primitives
// ---------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u64s(out: &mut Vec<u8>, values: &[u64]) {
    push_u32(out, values.len() as u32);
    for &value in values {
        push_u64(out, value);
    }
}

/// A bounds-checked little-endian reader over one section's payload.
/// Every failure reports the section name and the offset *inside the
/// section* where decoding stopped.
struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> SectionReader<'a> {
    fn new(section: &'a str, bytes: &'a [u8]) -> Self {
        SectionReader { bytes, pos: 0, section }
    }

    fn fail(&self, what: &str) -> String {
        format!("section `{}` byte {}: {what}", self.section, self.pos)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(self
                .fail(&format!("{what} needs {n} bytes, {} remain", self.bytes.len() - self.pos)));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// A `count`-prefixed `u64` array. The count is validated against
    /// the bytes actually present before anything is allocated, so a
    /// hostile count cannot drive a huge allocation.
    fn u64s(&mut self, what: &str) -> Result<Vec<u64>, String> {
        let count = self.u32(what)? as usize;
        if (self.bytes.len() - self.pos) / 8 < count {
            return Err(self.fail(&format!("{what} count {count} overruns the section")));
        }
        (0..count).map(|_| self.u64(what)).collect()
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(self.fail(&format!(
                "{} trailing bytes after the section's last field",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Section encoders
// ---------------------------------------------------------------------

fn manifest_section(models: &[Arc<Model>], scale: Scale) -> SnapshotSection {
    let names = models.iter().map(|m| JsonValue::Str(m.spec.name.clone())).collect();
    let manifest = JsonValue::Object(vec![
        ("format".to_string(), JsonValue::UInt(SNAPSHOT_FORMAT)),
        ("scale".to_string(), JsonValue::UInt(scale.divisor())),
        ("models".to_string(), JsonValue::Array(names)),
    ]);
    SnapshotSection { name: "manifest".to_string(), payload: manifest.to_string().into_bytes() }
}

fn spec_section(model: &Model) -> SnapshotSection {
    let spec = &model.spec;
    let mut fields = vec![("benchmark".to_string(), JsonValue::Str(spec.benchmark.clone()))];
    if let Some(trace) = &spec.trace {
        fields.push(("trace".to_string(), JsonValue::Str(trace.clone())));
    }
    fields.extend(vec![
        ("kind".to_string(), JsonValue::Str(spec.kind.name().to_string())),
        ("index_bits".to_string(), JsonValue::UInt(spec.index_bits as u64)),
        ("shards".to_string(), JsonValue::UInt(spec.shards as u64)),
        ("profiled_branches".to_string(), JsonValue::UInt(model.profiled_branches as u64)),
        ("default_hash".to_string(), JsonValue::UInt(model.default_hash as u64)),
    ]);
    let body = JsonValue::Object(fields);
    SnapshotSection {
        name: format!("m:{}:spec", spec.name),
        payload: body.to_string().into_bytes(),
    }
}

/// `assign`: `default u8, count u32, (pc u64, hash u8)*` sorted by pc.
fn assign_section(model: &Model) -> SnapshotSection {
    let assignment = model.assignment();
    let mut pairs: Vec<(u64, u8)> = assignment.iter().map(|(pc, n)| (pc.raw(), n)).collect();
    pairs.sort_unstable();
    let mut payload = Vec::with_capacity(5 + pairs.len() * 9);
    payload.push(assignment.default_hash());
    push_u32(&mut payload, pairs.len() as u32);
    for (pc, n) in pairs {
        push_u64(&mut payload, pc);
        payload.push(n);
    }
    SnapshotSection { name: format!("m:{}:assign", model.spec.name), payload }
}

/// `shard`: `kind u8` (0 = cond, 1 = ind), then the kernel core state
/// (`hashers`, `stack`, `rows`), then the kind's prediction plane.
fn shard_section(name: &str, index: usize, shard: &ShardSnapshot) -> SnapshotSection {
    fn push_core(out: &mut Vec<u8>, state: &KernelState) {
        push_u64s(out, &state.hashers);
        push_u32(out, state.stack.len() as u32);
        for snapshot in &state.stack {
            push_u64s(out, snapshot);
        }
        push_u32(out, state.rows.len() as u32);
        for &(pc, predictions, mispredictions) in &state.rows {
            push_u64(out, pc);
            push_u64(out, predictions);
            push_u64(out, mispredictions);
        }
    }
    let mut payload = Vec::new();
    match shard {
        ShardSnapshot::Conditional { state, words } => {
            payload.push(0);
            push_core(&mut payload, state);
            push_u64s(&mut payload, words);
        }
        ShardSnapshot::Indirect { state, targets, valid } => {
            payload.push(1);
            push_core(&mut payload, state);
            push_u64s(&mut payload, targets);
            push_u64s(&mut payload, valid);
        }
    }
    SnapshotSection { name: format!("m:{name}:shard:{index}"), payload }
}

// ---------------------------------------------------------------------
// Section decoders
// ---------------------------------------------------------------------

fn decode_assign(section: &SnapshotSection) -> Result<HashAssignment, String> {
    let mut reader = SectionReader::new(&section.name, &section.payload);
    let default = reader.u8("default hash")?;
    if !(1..=32).contains(&default) {
        return Err(reader.fail(&format!("default hash {default} outside 1..=32")));
    }
    let mut assignment = HashAssignment::fixed(default);
    let count = reader.u32("assignment count")?;
    let mut last_pc = None;
    for _ in 0..count {
        let pc = reader.u64("assignment pc")?;
        if last_pc.is_some_and(|last| pc <= last) {
            return Err(reader.fail(&format!("assignment pcs not strictly increasing at {pc:#x}")));
        }
        last_pc = Some(pc);
        let n = reader.u8("assignment hash")?;
        if !(1..=32).contains(&n) {
            return Err(reader.fail(&format!("hash number {n} outside 1..=32")));
        }
        assignment.assign(Addr::new(pc), n);
    }
    reader.finish()?;
    Ok(assignment)
}

fn decode_shard(section: &SnapshotSection, kind: ModelKind) -> Result<ShardSnapshot, String> {
    let mut reader = SectionReader::new(&section.name, &section.payload);
    let tag = reader.u8("shard kind tag")?;
    let tagged = match tag {
        0 => ModelKind::Conditional,
        1 => ModelKind::Indirect,
        other => return Err(reader.fail(&format!("unknown shard kind tag {other}"))),
    };
    if tagged != kind {
        return Err(reader.fail(&format!(
            "shard is `{}`, the spec says `{}`",
            tagged.name(),
            kind.name()
        )));
    }
    let hashers = reader.u64s("hasher state")?;
    let stack_len = reader.u32("stack depth")? as usize;
    if (section.payload.len() - reader.pos) / 4 < stack_len {
        return Err(reader.fail(&format!("stack depth {stack_len} overruns the section")));
    }
    let stack = (0..stack_len)
        .map(|_| reader.u64s("stack snapshot"))
        .collect::<Result<Vec<_>, String>>()?;
    let row_count = reader.u32("row count")? as usize;
    if (section.payload.len() - reader.pos) / 24 < row_count {
        return Err(reader.fail(&format!("row count {row_count} overruns the section")));
    }
    let rows = (0..row_count)
        .map(|_| {
            Ok((reader.u64("row pc")?, reader.u64("row predictions")?, reader.u64("row misses")?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let state = KernelState { hashers, stack, rows };
    let shard = match kind {
        ModelKind::Conditional => {
            ShardSnapshot::Conditional { state, words: reader.u64s("counter plane")? }
        }
        ModelKind::Indirect => ShardSnapshot::Indirect {
            state,
            targets: reader.u64s("target plane")?,
            valid: reader.u64s("valid bitmap")?,
        },
    };
    reader.finish()?;
    Ok(shard)
}

// ---------------------------------------------------------------------
// Whole-file save / load
// ---------------------------------------------------------------------

/// Encodes `models` into the section list [`save_models`] writes.
/// Public for tests; production callers use [`save_models`].
pub fn encode_models(models: &[Arc<Model>], scale: Scale) -> Vec<SnapshotSection> {
    let mut sections = vec![manifest_section(models, scale)];
    for model in models {
        sections.push(spec_section(model));
        sections.push(assign_section(model));
        for (i, shard) in model.export_shards().iter().enumerate() {
            sections.push(shard_section(&model.spec.name, i, shard));
        }
    }
    sections
}

/// Saves `models` (already sorted by name by the caller) to `path`,
/// atomically via `<path>.tmp` + rename.
///
/// # Errors
///
/// [`VlppError::Io`] for filesystem failures; the temp file is removed
/// on a failed write.
pub fn save_models(
    path: &Path,
    models: &[Arc<Model>],
    scale: Scale,
) -> Result<SaveReport, VlppError> {
    let _span = vlpp_metrics::span("snapshot.save_ns");
    let sections = encode_models(models, scale);
    let tmp = path.with_extension("tmp");
    let file = File::create(&tmp).map_err(|source| VlppError::io(tmp.clone(), "create", source))?;
    let mut writer = BufWriter::new(file);
    if let Err(error) = write_snapshot(&sections, &mut writer) {
        let _ = std::fs::remove_file(&tmp);
        return Err(VlppError::trace_file(tmp, error));
    }
    drop(writer);
    let bytes =
        std::fs::metadata(&tmp).map_err(|source| VlppError::io(tmp.clone(), "stat", source))?.len();
    std::fs::rename(&tmp, path).map_err(|source| VlppError::io(path, "rename", source))?;
    vlpp_metrics::counter("snapshot.bytes").add(bytes);
    vlpp_metrics::counter("snapshot.sections").add(sections.len() as u64);
    vlpp_metrics::counter("snapshot.saves").incr();
    Ok(SaveReport {
        path: path.to_path_buf(),
        bytes,
        sections: sections.len(),
        models: models.iter().map(|m| m.spec.name.clone()).collect(),
    })
}

/// Loads every model in the snapshot at `path`, in manifest order.
///
/// `expected_scale` is the serving process's workload scale: a model
/// trained at another scale would silently disagree with this server's
/// reference traces, so a mismatch is rejected up front.
///
/// # Errors
///
/// [`VlppError::Io`] if the file cannot be opened, [`VlppError::Trace`]
/// for envelope-level damage (bad magic, truncation, checksum), and
/// [`VlppError::Checkpoint`] naming section + offset for section-level
/// inconsistencies.
pub fn load_models(path: &Path, expected_scale: Scale) -> Result<Vec<Arc<Model>>, VlppError> {
    let _span = vlpp_metrics::span("snapshot.load_ns");
    let file = File::open(path).map_err(|source| VlppError::io(path, "open", source))?;
    let sections = read_snapshot(BufReader::new(file))
        .map_err(|source| VlppError::trace_file(path, source))?;
    let models = decode_sections(&sections, expected_scale)
        .map_err(|message| checkpoint_error(path, message))?;
    vlpp_metrics::counter("snapshot.loads").incr();
    Ok(models)
}

/// Decodes a section list into models. Public for tests; production
/// callers use [`load_models`].
///
/// # Errors
///
/// The message [`load_models`] wraps into its `Checkpoint` error.
pub fn decode_sections(
    sections: &[SnapshotSection],
    expected_scale: Scale,
) -> Result<Vec<Arc<Model>>, String> {
    let by_name: HashMap<&str, &SnapshotSection> =
        sections.iter().map(|s| (s.name.as_str(), s)).collect();
    if by_name.len() != sections.len() {
        return Err("duplicate section names".to_string());
    }
    let manifest = by_name.get("manifest").ok_or("missing `manifest` section")?;
    let manifest = parse_json_section(manifest)?;
    let format = manifest.get("format").and_then(|v| v.as_u64());
    if format != Some(SNAPSHOT_FORMAT) {
        return Err(format!("snapshot format {format:?}, this build reads {SNAPSHOT_FORMAT}"));
    }
    let scale =
        manifest.get("scale").and_then(|v| v.as_u64()).ok_or("manifest is missing its `scale`")?;
    if scale != expected_scale.divisor() {
        return Err(format!(
            "snapshot was taken at scale {scale}, this server runs scale {} \
             (start it with --scale {scale} to load it)",
            expected_scale.divisor()
        ));
    }
    let names = manifest
        .get("models")
        .and_then(|v| v.as_array())
        .ok_or("manifest is missing its `models` array")?;
    let mut used = 1usize;
    let mut models = Vec::with_capacity(names.len());
    for name in names {
        let name = name.as_str().ok_or("manifest model names must be strings")?;
        let (model, sections_used) = decode_model(name, &by_name)?;
        used += sections_used;
        models.push(Arc::new(model));
    }
    if used != sections.len() {
        return Err(format!("{} sections not referenced by the manifest", sections.len() - used));
    }
    Ok(models)
}

fn parse_json_section(section: &SnapshotSection) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(&section.payload)
        .map_err(|_| format!("section `{}` is not UTF-8 JSON", section.name))?;
    JsonValue::parse(text).map_err(|error| format!("section `{}`: {error}", section.name))
}

fn decode_model(
    name: &str,
    by_name: &HashMap<&str, &SnapshotSection>,
) -> Result<(Model, usize), String> {
    let lookup = |section: String| -> Result<&SnapshotSection, String> {
        by_name.get(section.as_str()).copied().ok_or_else(|| format!("missing section `{section}`"))
    };
    let spec_json = parse_json_section(lookup(format!("m:{name}:spec"))?)?;
    let field = |key: &str| -> Result<u64, String> {
        spec_json
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("spec for `{name}` is missing `{key}`"))
    };
    let kind_name = spec_json
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("spec for `{name}` is missing `kind`"))?;
    let kind = ModelKind::from_name(kind_name)
        .ok_or_else(|| format!("spec for `{name}`: unknown kind `{kind_name}`"))?;
    let index_bits = field("index_bits")?;
    if !(4..=24).contains(&index_bits) {
        return Err(format!("spec for `{name}`: index_bits {index_bits} outside 4..=24"));
    }
    let shards = field("shards")?;
    if !(1..=1024).contains(&shards) {
        return Err(format!("spec for `{name}`: shards {shards} outside 1..=1024"));
    }
    let spec = ModelSpec {
        name: name.to_string(),
        benchmark: spec_json
            .get("benchmark")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("spec for `{name}` is missing `benchmark`"))?
            .to_string(),
        trace: spec_json.get("trace").and_then(|v| v.as_str()).map(str::to_string),
        kind,
        index_bits: index_bits as u32,
        shards: shards as usize,
    };
    let profiled_branches = field("profiled_branches")? as usize;
    let default_hash = field("default_hash")?;
    let assignment = decode_assign(lookup(format!("m:{name}:assign"))?)?;
    if assignment.default_hash() as u64 != default_hash {
        return Err(format!(
            "spec for `{name}` says default hash {default_hash}, \
             the assignment section says {}",
            assignment.default_hash()
        ));
    }
    let shard_states = (0..spec.shards)
        .map(|i| decode_shard(lookup(format!("m:{name}:shard:{i}"))?, kind))
        .collect::<Result<Vec<_>, String>>()?;
    let sections_used = 2 + spec.shards;
    let model = Model::from_snapshot(spec, profiled_branches, assignment, shard_states)?;
    Ok((model, sections_used))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Workloads;
    use vlpp_trace::BranchRecord;

    fn trained(kind: ModelKind, shards: usize, workloads: &Workloads) -> Arc<Model> {
        let spec = ModelSpec {
            name: format!("{}-{shards}", kind.name()),
            benchmark: "compress".to_string(),
            trace: None,
            kind,
            index_bits: 10,
            shards,
        };
        Arc::new(Model::train(spec, workloads).unwrap())
    }

    fn records(workloads: &Workloads, n: usize) -> Vec<BranchRecord> {
        let benchmark = vlpp_synth::suite::benchmark("compress").unwrap();
        workloads.test_trace(&benchmark).iter().take(n).copied().collect()
    }

    /// The acceptance property: save → load yields a model whose future
    /// predictions AND stats are byte-identical to the original's.
    #[test]
    fn snapshot_round_trip_is_lossless_mid_stream() {
        let scale = Scale::new(1_000_000);
        let workloads = Workloads::new(scale);
        let stream = records(&workloads, 4000);
        for kind in [ModelKind::Conditional, ModelKind::Indirect] {
            let original = trained(kind, 3, &workloads);
            // Warm the model over the first half of the stream so the
            // snapshot carries real mid-stream state.
            original.apply_sequential(&stream[..2000]);

            let sections = encode_models(&[Arc::clone(&original)], scale);
            let restored = decode_sections(&sections, scale).unwrap();
            assert_eq!(restored.len(), 1);
            let restored = &restored[0];

            assert_eq!(restored.stats_json().to_string(), original.stats_json().to_string());
            // The tail must evolve identically from the restored state.
            assert_eq!(
                restored.apply_sequential(&stream[2000..]),
                original.apply_sequential(&stream[2000..])
            );
            assert_eq!(restored.stats_json().to_string(), original.stats_json().to_string());
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let scale = Scale::new(1_000_000);
        let workloads = Workloads::new(scale);
        let cond = trained(ModelKind::Conditional, 2, &workloads);
        let ind = trained(ModelKind::Indirect, 1, &workloads);
        cond.apply_sequential(&records(&workloads, 1000));

        let dir = std::env::temp_dir().join(format!("vlpp-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.vlps");
        let report = save_models(&path, &[Arc::clone(&cond), Arc::clone(&ind)], scale).unwrap();
        assert_eq!(report.sections, 1 + (2 + 2) + (2 + 1));
        assert_eq!(report.models, vec!["cond-2".to_string(), "ind-1".to_string()]);
        assert!(report.bytes > 0);
        assert!(!path.with_extension("tmp").exists(), "temp file must be renamed away");

        let loaded = load_models(&path, scale).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].stats_json().to_string(), cond.stats_json().to_string());
        assert_eq!(loaded[1].stats_json().to_string(), ind.stats_json().to_string());

        // A scale mismatch is rejected up front with a useful message.
        let error = load_models(&path, Scale::new(16)).unwrap_err();
        assert_eq!(error.phase(), "checkpoint");
        assert!(error.to_string().contains("scale"), "{error}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_sections_are_typed_checkpoint_errors() {
        let scale = Scale::new(1_000_000);
        let workloads = Workloads::new(scale);
        let model = trained(ModelKind::Conditional, 2, &workloads);
        let pristine = encode_models(&[Arc::clone(&model)], scale);
        assert!(decode_sections(&pristine, scale).is_ok());

        // Each mutilation must produce an Err naming the problem —
        // never a panic, never a silently wrong model.
        type Mutation = (&'static str, Box<dyn Fn(&mut Vec<SnapshotSection>)>);
        let mutations: Vec<Mutation> = vec![
            (
                "drop manifest",
                Box::new(|s: &mut Vec<SnapshotSection>| s.retain(|x| x.name != "manifest")),
            ),
            ("drop a shard", Box::new(|s| s.retain(|x| !x.name.ends_with(":shard:1")))),
            ("drop the assignment", Box::new(|s| s.retain(|x| !x.name.ends_with(":assign")))),
            (
                "orphan section",
                Box::new(|s| {
                    s.push(SnapshotSection { name: "m:ghost:spec".into(), payload: b"{}".to_vec() })
                }),
            ),
            (
                "truncate a shard",
                Box::new(|s| {
                    let shard = s.iter_mut().find(|x| x.name.ends_with(":shard:0")).unwrap();
                    shard.payload.truncate(shard.payload.len() / 2);
                }),
            ),
            (
                "pad a shard",
                Box::new(|s| {
                    s.iter_mut().find(|x| x.name.ends_with(":shard:0")).unwrap().payload.push(0);
                }),
            ),
            (
                "bad kind tag",
                Box::new(|s| {
                    s.iter_mut().find(|x| x.name.ends_with(":shard:0")).unwrap().payload[0] = 1;
                }),
            ),
            (
                "bad default hash",
                Box::new(|s| {
                    s.iter_mut().find(|x| x.name.ends_with(":assign")).unwrap().payload[0] = 0;
                }),
            ),
            (
                "non-json spec",
                Box::new(|s| {
                    s.iter_mut().find(|x| x.name.ends_with(":spec")).unwrap().payload = vec![0xff];
                }),
            ),
        ];
        for (what, mutate) in mutations {
            let mut sections = pristine.clone();
            mutate(&mut sections);
            let error =
                decode_sections(&sections, scale).expect_err(&format!("`{what}` must be rejected"));
            assert!(!error.is_empty(), "{what}");
        }

        // Offsets: a truncated shard names the section and an offset.
        let mut sections = pristine.clone();
        let shard = sections.iter_mut().find(|x| x.name.ends_with(":shard:0")).unwrap();
        shard.payload.truncate(3);
        let error = decode_sections(&sections, scale).unwrap_err();
        assert!(error.contains("shard:0") && error.contains("byte"), "{error}");
    }

    /// A hostile count field must fail fast, not allocate terabytes.
    #[test]
    fn hostile_counts_never_drive_big_allocations() {
        let mut payload = vec![0u8]; // cond tag
        push_u32(&mut payload, u32::MAX); // hashers count: absurd
        let section = SnapshotSection { name: "m:x:shard:0".into(), payload };
        let error = decode_shard(&section, ModelKind::Conditional).unwrap_err();
        assert!(error.contains("overruns"), "{error}");
    }
}
