//! Shard routing: the shard→process map behind `vlpp cluster`.
//!
//! # The shard map, made explicit
//!
//! A served model places the branch at `pc` in shard
//! [`shard_of(pc, shards)`](shard_of) — the single definition both
//! [`super::model::Model::owner`] and every cluster client use, so a
//! record routed by a client lands on the process that owns exactly
//! that shard's kernel.
//!
//! # Node assignment
//!
//! [`RoutingTable`] maps each shard to a *primary* and a *replica*
//! node by rendezvous (highest-random-weight) hashing: every
//! `(shard, node)` pair gets a deterministic score, the top-scoring
//! node is the primary and the runner-up the replica. Rendezvous
//! hashing gives minimal disruption — removing a node only remaps the
//! shards that node held, everything else keeps its owner — which is
//! what makes [`RoutingTable::migrate`] and failover local operations.
//!
//! Writes fan out to primary + replica (the `update` verb applies the
//! same state transition as `predict`, so the replica's kernel stays
//! byte-identical); reads go to the primary and fail over to the
//! replica when the primary dies. `SERVING.md` documents the contract.

use vlpp_trace::json::JsonValue;
use vlpp_trace::Addr;

/// The shard that owns the branch at `pc` in a `shards`-way model.
///
/// This is the determinism contract's partition function: every static
/// branch maps to exactly one shard, so a shard sees a deterministic
/// sub-stream of the trace.
///
/// # Panics
///
/// Panics if `shards` is zero (no model has zero shards; both `train`
/// paths reject that before a model exists).
#[inline]
pub fn shard_of(pc: Addr, shards: usize) -> usize {
    assert!(shards >= 1, "a model has at least one shard");
    (pc.word() % shards as u64) as usize
}

/// One serve process in a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Stable node name (`node0`, `node1`, … as `vlpp cluster` spawns
    /// them) — the rendezvous-hash identity, so scores survive
    /// restarts with new ports.
    pub id: String,
    /// The node's announced `HOST:PORT`.
    pub addr: String,
    /// The node's process id (what `--kill` aims at).
    pub pid: u64,
}

impl Node {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("id".to_string(), JsonValue::Str(self.id.clone())),
            ("addr".to_string(), JsonValue::Str(self.addr.clone())),
            ("pid".to_string(), JsonValue::UInt(self.pid)),
        ])
    }
}

/// The rendezvous score of `(shard, node id)`: FNV-1a over the id,
/// mixed with the shard number through the splitmix-style finalizer.
fn score(shard: usize, id: &str) -> u64 {
    vlpp_check::rng::mix(
        vlpp_trace::compact::fnv1a64(id.as_bytes()) ^ vlpp_check::rng::mix(shard as u64 + 1),
    )
}

/// The explicit shard→process map: which node is primary and which is
/// replica for every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    shards: usize,
    nodes: Vec<Node>,
    /// `assignments[shard] = [primary, replica]`, indices into `nodes`.
    assignments: Vec<[usize; 2]>,
    /// Monotonically increasing membership version: every mutation
    /// ([`migrate`](Self::migrate), [`set_node`](Self::set_node)) bumps
    /// it, and `vlpp cluster` rewrites `--routing-out` with the bumped
    /// table, so a client can reject a stale file after a failover.
    version: u64,
}

impl RoutingTable {
    /// Builds the table by rendezvous hashing: for each shard, the
    /// highest-scoring node is primary and the runner-up is replica.
    ///
    /// # Errors
    ///
    /// A message if `shards` is zero or fewer than two nodes are given
    /// (one replica per shard needs a second process to live on).
    pub fn build(shards: usize, nodes: Vec<Node>) -> Result<RoutingTable, String> {
        if shards == 0 {
            return Err("a routing table needs at least one shard".to_string());
        }
        if nodes.len() < 2 {
            return Err(format!(
                "a routing table needs at least 2 nodes for primary + replica, got {}",
                nodes.len()
            ));
        }
        let assignments = (0..shards)
            .map(|shard| {
                let mut ranked: Vec<usize> = (0..nodes.len()).collect();
                // Scores tie only if two nodes share an id; the index
                // tiebreak keeps the sort total either way.
                ranked.sort_by_key(|&n| (std::cmp::Reverse(score(shard, &nodes[n].id)), n));
                [ranked[0], ranked[1]]
            })
            .collect();
        Ok(RoutingTable { shards, nodes, assignments, version: 1 })
    }

    /// Number of shards routed.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The table's membership version (1 when freshly built).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Replaces the address and pid of the node named `id` — how a
    /// respawned replacement (same rendezvous identity, new process)
    /// re-enters the table without disturbing any shard assignment —
    /// and bumps the version.
    ///
    /// # Errors
    ///
    /// A message for an unknown node id.
    pub fn set_node(&mut self, id: &str, addr: String, pid: u64) -> Result<(), String> {
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or_else(|| format!("unknown node `{id}`"))?;
        node.addr = addr;
        node.pid = pid;
        self.version += 1;
        Ok(())
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The primary node for `shard`.
    pub fn primary(&self, shard: usize) -> &Node {
        &self.nodes[self.assignments[shard][0]]
    }

    /// The replica node for `shard`.
    pub fn replica(&self, shard: usize) -> &Node {
        &self.nodes[self.assignments[shard][1]]
    }

    /// Live shard migration: makes `node_id` the primary for `shard`.
    /// If the node was the shard's replica, primary and replica swap;
    /// otherwise the old primary becomes the replica. Other shards are
    /// untouched.
    ///
    /// # Errors
    ///
    /// A message for an out-of-range shard or an unknown node id.
    pub fn migrate(&mut self, shard: usize, node_id: &str) -> Result<(), String> {
        if shard >= self.shards {
            return Err(format!("shard {shard} out of range ({} shards)", self.shards));
        }
        let node = self
            .nodes
            .iter()
            .position(|n| n.id == node_id)
            .ok_or_else(|| format!("unknown node `{node_id}`"))?;
        let [primary, replica] = self.assignments[shard];
        self.assignments[shard] = if node == primary {
            [primary, replica]
        } else if node == replica {
            [replica, primary]
        } else {
            [node, primary]
        };
        self.version += 1;
        Ok(())
    }

    /// The table's wire form, as `vlpp cluster` prints it and
    /// `vlpp loadgen --routing` reads it back.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("version".to_string(), JsonValue::UInt(self.version)),
            ("shards".to_string(), JsonValue::UInt(self.shards as u64)),
            ("nodes".to_string(), JsonValue::Array(self.nodes.iter().map(Node::to_json).collect())),
            (
                "assignments".to_string(),
                JsonValue::Array(
                    self.assignments
                        .iter()
                        .map(|&[p, r]| {
                            JsonValue::Array(vec![
                                JsonValue::UInt(p as u64),
                                JsonValue::UInt(r as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the wire form back, validating every index.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or inconsistent field.
    pub fn from_json(value: &JsonValue) -> Result<RoutingTable, String> {
        let version = value
            .get("version")
            .and_then(|v| v.as_u64())
            .filter(|&v| v >= 1)
            .ok_or("routing table needs a positive `version`")?;
        let shards = value
            .get("shards")
            .and_then(|v| v.as_u64())
            .ok_or("routing table needs a `shards` count")? as usize;
        if shards == 0 {
            return Err("a routing table needs at least one shard".to_string());
        }
        let nodes = value
            .get("nodes")
            .and_then(|v| v.as_array())
            .ok_or("routing table needs a `nodes` array")?
            .iter()
            .map(|node| {
                Ok(Node {
                    id: node
                        .get("id")
                        .and_then(|v| v.as_str())
                        .ok_or("node needs an `id`")?
                        .to_string(),
                    addr: node
                        .get("addr")
                        .and_then(|v| v.as_str())
                        .ok_or("node needs an `addr`")?
                        .to_string(),
                    pid: node.get("pid").and_then(|v| v.as_u64()).ok_or("node needs a `pid`")?,
                })
            })
            .collect::<Result<Vec<Node>, &str>>()?;
        if nodes.len() < 2 {
            return Err(format!("a routing table needs at least 2 nodes, got {}", nodes.len()));
        }
        let raw = value
            .get("assignments")
            .and_then(|v| v.as_array())
            .ok_or("routing table needs an `assignments` array")?;
        if raw.len() != shards {
            return Err(format!("{} assignments for {shards} shards", raw.len()));
        }
        let assignments = raw
            .iter()
            .enumerate()
            .map(|(shard, pair)| {
                let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("assignment for shard {shard} must be a [primary, replica] pair")
                })?;
                let index = |v: &JsonValue| -> Result<usize, String> {
                    let i =
                        v.as_u64().map(|i| i as usize).filter(|&i| i < nodes.len()).ok_or_else(
                            || format!("shard {shard} references a node out of range"),
                        )?;
                    Ok(i)
                };
                let (p, r) = (index(&pair[0])?, index(&pair[1])?);
                if p == r {
                    return Err(format!("shard {shard} has the same primary and replica"));
                }
                Ok([p, r])
            })
            .collect::<Result<Vec<[usize; 2]>, String>>()?;
        Ok(RoutingTable { shards, nodes, assignments, version })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node {
                id: format!("node{i}"),
                addr: format!("127.0.0.1:{}", 9000 + i),
                pid: 100 + i as u64,
            })
            .collect()
    }

    #[test]
    fn shard_of_matches_the_model_partition() {
        for pc in [0u64, 2, 4, 0x4000, 0x1_0000_0000, u64::MAX - 1] {
            let addr = Addr::new(pc);
            assert_eq!(shard_of(addr, 4), (addr.word() % 4) as usize);
        }
    }

    #[test]
    fn build_assigns_distinct_primary_and_replica() {
        let table = RoutingTable::build(16, nodes(3)).unwrap();
        for shard in 0..16 {
            assert_ne!(table.primary(shard).id, table.replica(shard).id, "shard {shard}");
        }
        // Deterministic: the same inputs build the same table.
        assert_eq!(table, RoutingTable::build(16, nodes(3)).unwrap());
    }

    #[test]
    fn build_needs_two_nodes_and_one_shard() {
        assert!(RoutingTable::build(4, nodes(1)).is_err());
        assert!(RoutingTable::build(0, nodes(2)).is_err());
    }

    #[test]
    fn rendezvous_removal_only_remaps_the_dead_nodes_shards() {
        let before = RoutingTable::build(64, nodes(4)).unwrap();
        // Drop node3 and rebuild: shards whose primary was not node3
        // must keep their primary (minimal disruption).
        let after = RoutingTable::build(64, nodes(3)).unwrap();
        for shard in 0..64 {
            if before.primary(shard).id != "node3" {
                assert_eq!(before.primary(shard).id, after.primary(shard).id, "shard {shard}");
            }
        }
    }

    #[test]
    fn migrate_moves_one_shard_only() {
        let mut table = RoutingTable::build(8, nodes(3)).unwrap();
        let before = table.clone();
        let target = before.replica(5).id.clone();
        table.migrate(5, &target).unwrap();
        assert_eq!(table.primary(5).id, target);
        assert_eq!(table.replica(5).id, before.primary(5).id);
        for shard in (0..8).filter(|&s| s != 5) {
            assert_eq!(table.primary(shard).id, before.primary(shard).id);
            assert_eq!(table.replica(shard).id, before.replica(shard).id);
        }
        // Migrating to a non-member: old primary demotes to replica.
        let outsider = (0..3)
            .map(|i| format!("node{i}"))
            .find(|id| *id != table.primary(2).id && *id != table.replica(2).id)
            .unwrap();
        let old_primary = table.primary(2).id.clone();
        table.migrate(2, &outsider).unwrap();
        assert_eq!(table.primary(2).id, outsider);
        assert_eq!(table.replica(2).id, old_primary);
        assert!(table.migrate(99, "node0").is_err());
        assert!(table.migrate(0, "nonesuch").is_err());
    }

    #[test]
    fn json_round_trips_and_rejects_damage() {
        let table = RoutingTable::build(8, nodes(3)).unwrap();
        let wire = table.to_json();
        assert_eq!(RoutingTable::from_json(&wire).unwrap(), table);

        let parsed = wire.to_string();
        let reparsed = JsonValue::parse(&parsed).unwrap();
        assert_eq!(RoutingTable::from_json(&reparsed).unwrap(), table);

        for damage in [
            r#"{"version":1,"nodes":[],"assignments":[]}"#,
            r#"{"version":1,"shards":1,"nodes":[{"id":"a","addr":"x","pid":1}],"assignments":[[0,0]]}"#,
            r#"{"version":1,"shards":1,"nodes":[{"id":"a","addr":"x","pid":1},{"id":"b","addr":"y","pid":2}],"assignments":[[0,0]]}"#,
            r#"{"version":1,"shards":2,"nodes":[{"id":"a","addr":"x","pid":1},{"id":"b","addr":"y","pid":2}],"assignments":[[0,1]]}"#,
            r#"{"version":1,"shards":1,"nodes":[{"id":"a","addr":"x","pid":1},{"id":"b","addr":"y","pid":2}],"assignments":[[0,7]]}"#,
            // Missing or zero version: a pre-versioning table is stale
            // by definition and must be rebuilt, not trusted.
            r#"{"shards":1,"nodes":[{"id":"a","addr":"x","pid":1},{"id":"b","addr":"y","pid":2}],"assignments":[[0,1]]}"#,
            r#"{"version":0,"shards":1,"nodes":[{"id":"a","addr":"x","pid":1},{"id":"b","addr":"y","pid":2}],"assignments":[[0,1]]}"#,
        ] {
            let value = JsonValue::parse(damage).unwrap();
            assert!(RoutingTable::from_json(&value).is_err(), "{damage}");
        }
    }

    #[test]
    fn every_mutation_bumps_the_version_and_set_node_keeps_assignments() {
        let mut table = RoutingTable::build(8, nodes(3)).unwrap();
        assert_eq!(table.version(), 1);
        let before = table.clone();

        table.set_node("node1", "127.0.0.1:9999".to_string(), 4242).unwrap();
        assert_eq!(table.version(), 2);
        for shard in 0..8 {
            assert_eq!(table.primary(shard).id, before.primary(shard).id, "shard {shard}");
            assert_eq!(table.replica(shard).id, before.replica(shard).id, "shard {shard}");
        }
        let replaced = table.nodes().iter().find(|n| n.id == "node1").unwrap();
        assert_eq!(replaced.addr, "127.0.0.1:9999");
        assert_eq!(replaced.pid, 4242);
        assert!(table.set_node("nonesuch", "x".to_string(), 1).is_err());

        let target = table.replica(3).id.clone();
        table.migrate(3, &target).unwrap();
        assert_eq!(table.version(), 3);

        // The version survives the wire round trip.
        let wire = table.to_json().to_string();
        let back = RoutingTable::from_json(&JsonValue::parse(&wire).unwrap()).unwrap();
        assert_eq!(back.version(), 3);
    }
}
