//! `vlpp tournament` — the predictor-zoo league harness.
//!
//! Races every registered predictor (the zoo in `vlpp-predict` plus the
//! paper's own fixed- and variable-length path predictors) across every
//! synthetic benchmark *and* the hard-branch workload family
//! (`vlpp_synth::hard`), at the paper's headline budgets: 16 KB for
//! conditional predictors (Figure 5) and 2 KB for indirect predictors
//! (Figure 7). The output is a markdown league table plus one
//! machine-readable `TOURNEY {json}` line that CI gates against a
//! committed baseline (`TOURNEY_baseline.json`, checked by
//! `vlpp-metrics-check --tourney`).
//!
//! ## Determinism
//!
//! Cells run on the shared worker pool ([`vlpp_pool::Pool::map`] is
//! order-preserving) and every expensive artifact — traces with their
//! load channels, profile reports — is memoized compute-once-per-key,
//! so stdout is byte-identical at any `VLPP_THREADS`. The league is
//! part of `scripts/verify.sh`'s thread-determinism diff.
//!
//! ## Fairness notes
//!
//! * Every conditional entrant sees the same trace; the LDBP entrant
//!   additionally receives the trace's synthetic load-value channel
//!   (`Program::execute_conditionals_with_loads`), modeling values the
//!   core already has in flight — its table storage is still charged.
//! * `vlp-var` uses the §3.5 two-step profile (profiling input, as in
//!   the paper); `vlp-fixed` uses the *per-workload best* fixed length
//!   from the same profile, a stronger baseline than Table 2's
//!   suite-averaged length.
//! * MPKI is mispredictions per 1000 retired control transfers of the
//!   workload's trace, so conditional and indirect entrants are
//!   penalized on a common denominator.

use std::sync::Arc;

use vlpp_core::{HashAssignment, PathConfig, ProfileBuilder, ProfileConfig, ProfileReport};
use vlpp_pool::{Memo, Pool};
use vlpp_predict::{zoo, Budget, ZooContext};
use vlpp_synth::{hard, suite, InputSet};
use vlpp_trace::json::JsonValue;
use vlpp_trace::{Trace, VlppError};

use crate::experiment::{Kind, Scale};
use crate::paper::{FIG5_COND_BYTES, FIG7_IND_BYTES};
use crate::runner::{
    run_conditional, run_indirect, run_path_conditional, run_path_indirect, RunStats,
};

const USAGE: &str = "\
usage: vlpp tournament [--scale ci|N] [--json] [--metrics]
                       [--only NAME,NAME,...] [--emit-baseline]

Races every registered predictor over every synthetic benchmark plus
the hard-branch workload family, at the paper's headline budgets
(conditional 16KB, indirect 2KB). Prints a markdown league table and a
single `TOURNEY {json}` line; see EXPERIMENTS.md for how to read it.

options:
  --scale ci|N     divide paper dynamic counts by N; `ci` is the pinned
                   CI scale (1000000, i.e. the 50k-branch floor)
  --json           suppress the markdown tables; print only the TOURNEY
                   line (what scripts/verify.sh diffs across threads)
  --only LIST      comma-separated predictor names to race; unknown
                   names are an error listing the valid ones
  --emit-baseline  print a TOURNEY_baseline.json document derived from
                   this run (for vlpp-metrics-check --tourney) instead
                   of the league table
  --metrics        print a metrics table on stderr and a METRICS line
                   on stdout after the run
";

/// The CI scale divisor `--scale ci` pins (every workload lands on the
/// 50 000-conditional floor, so the smoke run is fast and scale-stable).
pub const CI_SCALE_DIVISOR: u64 = 1_000_000;

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

fn cond_budget() -> Budget {
    Budget::from_bytes(FIG5_COND_BYTES)
}

fn ind_budget() -> Budget {
    Budget::from_bytes(FIG7_IND_BYTES)
}

/// One workload in the tournament matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TourneyWorkload {
    /// Workload name (a suite benchmark or a `hard-*` member).
    pub name: &'static str,
    /// `"suite"` or `"hard"`.
    pub family: &'static str,
}

/// The full workload universe, in report order: the paper's 16
/// benchmarks, then the hard-branch family.
pub fn workloads() -> Vec<TourneyWorkload> {
    let mut list: Vec<TourneyWorkload> = suite::all_names()
        .into_iter()
        .map(|name| TourneyWorkload { name, family: "suite" })
        .collect();
    list.extend(hard::NAMES.iter().map(|&name| TourneyWorkload { name, family: "hard" }));
    list
}

/// How an entrant is instantiated for a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    /// Index into the zoo registry of the entrant's kind.
    Zoo(usize),
    /// The paper's predictor with the per-workload best fixed length.
    VlpFixed,
    /// The paper's predictor with the §3.5 variable-length assignment.
    VlpVar,
}

fn cond_entrants() -> Vec<(&'static str, Scheme)> {
    let mut list: Vec<(&'static str, Scheme)> = zoo::conditional_names()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, Scheme::Zoo(i)))
        .collect();
    list.push(("vlp-fixed", Scheme::VlpFixed));
    list.push(("vlp-var", Scheme::VlpVar));
    list
}

fn ind_entrants() -> Vec<(&'static str, Scheme)> {
    let mut list: Vec<(&'static str, Scheme)> = zoo::indirect_names()
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, Scheme::Zoo(i)))
        .collect();
    list.push(("vlp-fixed", Scheme::VlpFixed));
    list.push(("vlp-var", Scheme::VlpVar));
    list
}

/// Every valid `--only` token, deduplicated in registry order (the
/// paper's predictors appear once even though they race in both kinds).
pub fn predictor_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = Vec::new();
    for (name, _) in cond_entrants().into_iter().chain(ind_entrants()) {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
}

/// Memoized per-tournament artifacts: traces (with their load-value
/// channels) and profile reports, built once per workload and shared by
/// every cell that needs them. Deliberately separate from
/// [`Workloads`](crate::Workloads) — the tournament profiles at its own
/// index widths and must not disturb the experiment caches.
#[derive(Debug)]
pub struct TournamentData {
    scale: Scale,
    traces: Memo<(String, InputSet), TraceWithLoads>,
    profiles: Memo<(String, Kind), ProfileReport>,
}

/// A built trace plus its aligned load-value channel (`loads[i]` is the
/// value visible at record `i`).
type TraceWithLoads = (Trace, Arc<Vec<u64>>);

impl TournamentData {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Self {
        TournamentData {
            scale,
            traces: Memo::named("tourney_traces"),
            profiles: Memo::named("tourney_profiles"),
        }
    }

    /// The context's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The scaled dynamic conditional count for a workload.
    fn dynamic_conditionals(&self, name: &str) -> u64 {
        match suite::benchmark(name) {
            Some(spec) => self.scale.dynamic_conditionals(&spec),
            None => {
                let workload = hard::workload(name).expect("workload exists");
                (workload.default_dynamic_conditional / self.scale.divisor()).max(50_000)
            }
        }
    }

    /// The trace and aligned load channel for a workload and input set.
    /// Memoized.
    fn trace(&self, name: &str, input: InputSet) -> Arc<(Trace, Arc<Vec<u64>>)> {
        self.traces.get_or_compute((name.to_string(), input), || {
            let _span = vlpp_metrics::span("sim.trace_build_ns");
            let program = match suite::benchmark(name) {
                Some(spec) => spec.build_program(),
                None => hard::workload(name).expect("workload exists").build_program(),
            };
            let (trace, loads) =
                program.execute_conditionals_with_loads(input, self.dynamic_conditionals(name));
            (trace, Arc::new(loads))
        })
    }

    /// The §3.5 profile report for a workload at the tournament budget
    /// of the given kind. Memoized.
    fn profile(&self, name: &str, kind: Kind) -> Arc<ProfileReport> {
        self.profiles.get_or_compute((name.to_string(), kind), || {
            let _span = vlpp_metrics::span("sim.profile_ns");
            let trace = self.trace(name, InputSet::Profile);
            let bits = match kind {
                Kind::Conditional => cond_budget().cond_index_bits(),
                Kind::Indirect => ind_budget().ind_index_bits(),
            };
            let builder = ProfileBuilder::new(ProfileConfig::new(PathConfig::new(bits)));
            match kind {
                Kind::Conditional => builder.profile_conditional(&trace.0),
                Kind::Indirect => builder.profile_indirect(&trace.0),
            }
        })
    }
}

/// One finished cell of the league matrix.
#[derive(Debug, Clone)]
pub struct TourneyCell {
    /// Which branch population the cell raced.
    pub kind: Kind,
    /// Entrant name.
    pub predictor: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// The cell's run statistics.
    pub stats: RunStats,
    /// Retired control transfers in the workload's test trace (the MPKI
    /// denominator).
    pub trace_len: u64,
}

impl TourneyCell {
    /// The canonical cell key, `"cond:tage:gcc"` / `"ind:btb:perl"`.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", kind_tag(self.kind), self.predictor, self.workload)
    }

    /// Mispredictions per 1000 retired control transfers.
    pub fn mpki(&self) -> f64 {
        if self.trace_len == 0 {
            0.0
        } else {
            self.stats.mispredictions as f64 * 1000.0 / self.trace_len as f64
        }
    }
}

fn kind_tag(kind: Kind) -> &'static str {
    match kind {
        Kind::Conditional => "cond",
        Kind::Indirect => "ind",
    }
}

fn run_cell(data: &TournamentData, kind: Kind, scheme: Scheme, workload: &str) -> (RunStats, u64) {
    let test = data.trace(workload, InputSet::Test);
    let (trace, loads) = (&test.0, &test.1);
    let stats = match (kind, scheme) {
        (Kind::Conditional, Scheme::Zoo(i)) => {
            let entry = &zoo::conditional_zoo()[i];
            let ctx = ZooContext::with_loads(Arc::clone(loads));
            let mut predictor = (entry.build)(cond_budget(), &ctx);
            run_conditional(&mut predictor, trace)
        }
        (Kind::Indirect, Scheme::Zoo(i)) => {
            let entry = &zoo::indirect_zoo()[i];
            let ctx = ZooContext::with_loads(Arc::clone(loads));
            let mut predictor = (entry.build)(ind_budget(), &ctx);
            run_indirect(&mut predictor, trace)
        }
        (Kind::Conditional, vlp) => {
            let report = data.profile(workload, Kind::Conditional);
            let config = PathConfig::new(cond_budget().cond_index_bits());
            let assignment = match vlp {
                Scheme::VlpVar => report.assignment.clone(),
                _ => HashAssignment::fixed(report.best_fixed_hash()),
            };
            run_path_conditional(&config, &assignment, trace)
        }
        (Kind::Indirect, vlp) => {
            let report = data.profile(workload, Kind::Indirect);
            let config = PathConfig::new(ind_budget().ind_index_bits());
            let assignment = match vlp {
                Scheme::VlpVar => report.assignment.clone(),
                _ => HashAssignment::fixed(report.best_fixed_hash()),
            };
            run_path_indirect(&config, &assignment, trace)
        }
    };
    (stats, trace.len() as u64)
}

fn storage_bytes(kind: Kind, scheme: Scheme) -> u64 {
    let ctx = ZooContext::default();
    match (kind, scheme) {
        (Kind::Conditional, Scheme::Zoo(i)) => {
            (zoo::conditional_zoo()[i].storage_bytes)(cond_budget(), &ctx)
        }
        (Kind::Indirect, Scheme::Zoo(i)) => {
            (zoo::indirect_zoo()[i].storage_bytes)(ind_budget(), &ctx)
        }
        (Kind::Conditional, _) => cond_budget().bytes(),
        (Kind::Indirect, _) => ind_budget().bytes(),
    }
}

/// A finished tournament: every cell, plus the matrix axes that
/// produced them.
#[derive(Debug)]
pub struct TournamentResult {
    /// The scale the tournament ran at.
    pub scale: Scale,
    /// Workloads raced (matrix rows).
    pub workloads: Vec<TourneyWorkload>,
    /// Conditional entrants raced (columns of the conditional section).
    pub cond_predictors: Vec<&'static str>,
    /// Indirect entrants raced (columns of the indirect section).
    pub ind_predictors: Vec<&'static str>,
    /// Every cell, conditional section first, workload-major.
    pub cells: Vec<TourneyCell>,
}

/// Validates `--only` tokens against the registered predictor names,
/// returning the normalized list or a CLI error naming the valid set.
pub fn validate_only(raw: &str) -> Result<Vec<String>, VlppError> {
    let valid = predictor_names();
    let tokens: Vec<String> =
        raw.split(',').map(str::trim).filter(|t| !t.is_empty()).map(str::to_string).collect();
    if tokens.is_empty() {
        return Err(cli_error(format!(
            "--only needs at least one predictor name; valid names: {}",
            valid.join(", ")
        )));
    }
    for token in &tokens {
        if !valid.contains(&token.as_str()) {
            return Err(cli_error(format!(
                "unknown predictor `{token}` in --only; valid names: {}",
                valid.join(", ")
            )));
        }
    }
    Ok(tokens)
}

/// Runs the full matrix (optionally restricted to the `only` predictor
/// names, which must already be validated) on the shared worker pool.
pub fn run_tournament(scale: Scale, only: Option<&[String]>) -> TournamentResult {
    let keep = |name: &str| only.map(|list| list.iter().any(|o| o == name)).unwrap_or(true);
    let cond: Vec<(&'static str, Scheme)> =
        cond_entrants().into_iter().filter(|(name, _)| keep(name)).collect();
    let ind: Vec<(&'static str, Scheme)> =
        ind_entrants().into_iter().filter(|(name, _)| keep(name)).collect();
    let workloads = workloads();

    let mut specs: Vec<(Kind, &'static str, Scheme, &'static str)> = Vec::new();
    for workload in &workloads {
        for &(name, scheme) in &cond {
            specs.push((Kind::Conditional, name, scheme, workload.name));
        }
    }
    for workload in &workloads {
        for &(name, scheme) in &ind {
            specs.push((Kind::Indirect, name, scheme, workload.name));
        }
    }

    let data = Arc::new(TournamentData::new(scale));
    let cells = {
        let _span = vlpp_metrics::span("sim.tourney.run_ns");
        let data = Arc::clone(&data);
        Pool::global().map(specs, move |(kind, predictor, scheme, workload)| {
            let (stats, trace_len) = run_cell(&data, kind, scheme, workload);
            vlpp_metrics::counter("sim.tourney.cells").incr();
            let tag = kind_tag(kind);
            vlpp_metrics::counter(&format!("sim.tourney.{tag}.{predictor}.predictions"))
                .add(stats.predictions);
            vlpp_metrics::counter(&format!("sim.tourney.{tag}.{predictor}.mispredictions"))
                .add(stats.mispredictions);
            TourneyCell { kind, predictor, workload, stats, trace_len }
        })
    };

    TournamentResult {
        scale,
        workloads,
        cond_predictors: cond.into_iter().map(|(name, _)| name).collect(),
        ind_predictors: ind.into_iter().map(|(name, _)| name).collect(),
        cells,
    }
}

impl TournamentResult {
    fn cell(&self, kind: Kind, predictor: &str, workload: &str) -> Option<&TourneyCell> {
        self.cells
            .iter()
            .find(|c| c.kind == kind && c.predictor == predictor && c.workload == workload)
    }

    fn scheme_for(&self, kind: Kind, predictor: &str) -> Scheme {
        let entrants = match kind {
            Kind::Conditional => cond_entrants(),
            Kind::Indirect => ind_entrants(),
        };
        entrants
            .into_iter()
            .find(|(name, _)| *name == predictor)
            .map(|(_, scheme)| scheme)
            .expect("predictor is registered")
    }

    fn section(&self, kind: Kind, out: &mut String) {
        let (title, budget, predictors) = match kind {
            Kind::Conditional => ("Conditional", cond_budget(), &self.cond_predictors),
            Kind::Indirect => ("Indirect", ind_budget(), &self.ind_predictors),
        };
        if predictors.is_empty() {
            return;
        }
        out.push_str(&format!("\n## {title} @ {budget} (miss %)\n\n"));
        out.push_str(&format!("| workload |{}\n", {
            let mut header = String::new();
            for p in predictors.iter() {
                header.push_str(&format!(" {p} |"));
            }
            header
        }));
        out.push_str(&format!("|---|{}\n", "---:|".repeat(predictors.len())));
        for workload in &self.workloads {
            out.push_str(&format!("| {} |", workload.name));
            for predictor in predictors.iter() {
                match self.cell(kind, predictor, workload.name) {
                    Some(cell) => {
                        out.push_str(&format!(" {:.2} |", 100.0 * cell.stats.miss_rate()))
                    }
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }

        // Ranking: mean miss rate over all workloads, ascending; ties
        // break on name so the table is total-ordered.
        let mut rows: Vec<(&'static str, f64, f64, u64)> = predictors
            .iter()
            .map(|&predictor| {
                let cells: Vec<&TourneyCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.kind == kind && c.predictor == predictor)
                    .collect();
                let n = cells.len().max(1) as f64;
                let mean_miss: f64 = cells.iter().map(|c| c.stats.miss_rate()).sum::<f64>() / n;
                let mean_mpki: f64 = cells.iter().map(|c| c.mpki()).sum::<f64>() / n;
                let storage = storage_bytes(kind, self.scheme_for(kind, predictor));
                (predictor, mean_miss, mean_mpki, storage)
            })
            .collect();
        rows.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite rates").then_with(|| a.0.cmp(b.0))
        });
        out.push_str(&format!("\n### {title} ranking\n\n"));
        out.push_str("| # | predictor | mean miss % | mean MPKI | storage bytes |\n");
        out.push_str("|---:|---|---:|---:|---:|\n");
        for (place, (predictor, miss, mpki, storage)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {} |\n",
                place + 1,
                predictor,
                100.0 * miss,
                mpki,
                storage
            ));
        }
    }

    /// The markdown league report: one matrix and one ranking per kind.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Predictor tournament\n\n");
        out.push_str(&format!(
            "scale 1/{}; budgets: conditional {}, indirect {}; {} workloads, {} cells\n",
            self.scale.divisor(),
            cond_budget(),
            ind_budget(),
            self.workloads.len(),
            self.cells.len()
        ));
        self.section(Kind::Conditional, &mut out);
        self.section(Kind::Indirect, &mut out);
        out
    }

    /// The machine-readable league, printed as the `TOURNEY {json}`
    /// line. Cell keys are `"{cond|ind}:{predictor}:{workload}"`.
    pub fn to_json(&self) -> JsonValue {
        let names = |list: &[&'static str]| {
            JsonValue::Array(list.iter().map(|n| JsonValue::Str(n.to_string())).collect())
        };
        let mut cells = Vec::new();
        let mut storage = Vec::new();
        for cell in &self.cells {
            cells.push((
                cell.key(),
                JsonValue::Object(vec![
                    ("predictions".to_string(), JsonValue::UInt(cell.stats.predictions)),
                    ("mispredictions".to_string(), JsonValue::UInt(cell.stats.mispredictions)),
                    ("miss_rate".to_string(), JsonValue::Float(cell.stats.miss_rate())),
                    ("mpki".to_string(), JsonValue::Float(cell.mpki())),
                ]),
            ));
        }
        for (kind, predictors) in
            [(Kind::Conditional, &self.cond_predictors), (Kind::Indirect, &self.ind_predictors)]
        {
            for &predictor in predictors.iter() {
                storage.push((
                    format!("{}:{}", kind_tag(kind), predictor),
                    JsonValue::UInt(storage_bytes(kind, self.scheme_for(kind, predictor))),
                ));
            }
        }
        JsonValue::Object(vec![
            (
                "budgets".to_string(),
                JsonValue::Object(vec![
                    ("conditional".to_string(), JsonValue::UInt(cond_budget().bytes())),
                    ("indirect".to_string(), JsonValue::UInt(ind_budget().bytes())),
                ]),
            ),
            ("scale".to_string(), JsonValue::UInt(self.scale.divisor())),
            (
                "workloads".to_string(),
                JsonValue::Array(
                    self.workloads.iter().map(|w| JsonValue::Str(w.name.to_string())).collect(),
                ),
            ),
            (
                "predictors".to_string(),
                JsonValue::Object(vec![
                    ("conditional".to_string(), names(&self.cond_predictors)),
                    ("indirect".to_string(), names(&self.ind_predictors)),
                ]),
            ),
            ("cells".to_string(), JsonValue::Object(cells)),
            ("storage".to_string(), JsonValue::Object(storage)),
        ])
    }

    /// A `TOURNEY_baseline.json` document derived from this run: each
    /// cell's accuracy floor is its measured miss rate plus slack (25%
    /// relative + 2 points absolute, capped at 1.0), and `min_cells`
    /// pins the matrix size so a silently shrunken matrix fails CI.
    pub fn baseline(&self) -> JsonValue {
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let ceiling = (cell.stats.miss_rate() * 1.25 + 0.02).min(1.0);
                (
                    cell.key(),
                    JsonValue::Object(vec![(
                        "max_miss_rate".to_string(),
                        JsonValue::Float(ceiling),
                    )]),
                )
            })
            .collect();
        JsonValue::Object(vec![
            ("min_cells".to_string(), JsonValue::UInt(self.cells.len() as u64)),
            ("cells".to_string(), JsonValue::Object(cells)),
        ])
    }
}

/// Entry point for `vlpp tournament`.
pub fn tournament_main(args: &[String]) -> Result<(), VlppError> {
    let mut scale = Scale::from_env();
    let mut json_only = false;
    let mut metrics = false;
    let mut emit_baseline = false;
    let mut only: Option<Vec<String>> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or_else(|| cli_error("--scale needs a value"))?;
                scale = if value == "ci" {
                    Scale::new(CI_SCALE_DIVISOR)
                } else {
                    match value.parse::<u64>() {
                        Ok(divisor) if divisor >= 1 => Scale::new(divisor),
                        _ => {
                            return Err(cli_error(format!(
                                "--scale needs `ci` or a positive integer, got `{value}`"
                            )))
                        }
                    }
                };
            }
            "--only" => {
                let value = iter.next().ok_or_else(|| {
                    cli_error(format!(
                        "--only needs a comma-separated predictor list; valid names: {}",
                        predictor_names().join(", ")
                    ))
                })?;
                only = Some(validate_only(value)?);
            }
            "--json" => json_only = true,
            "--metrics" => metrics = true,
            "--emit-baseline" => emit_baseline = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(cli_error(format!("unexpected argument `{other}`\n{USAGE}"))),
        }
    }

    eprintln!("# tournament: scale 1/{} of paper dynamic counts", scale.divisor());
    let result = run_tournament(scale, only.as_deref());
    if emit_baseline {
        println!("{}", result.baseline().pretty());
    } else {
        if !json_only {
            print!("{}", result.render_markdown());
        }
        println!("TOURNEY {}", result.to_json());
    }
    if metrics {
        let registry = vlpp_metrics::Registry::global();
        eprint!("{}", registry.render_table());
        println!("METRICS {}", registry.snapshot());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_axes_meet_the_floor() {
        assert!(workloads().len() >= 8, "{} workloads", workloads().len());
        assert!(cond_entrants().len() >= 6, "{} conditional entrants", cond_entrants().len());
        assert!(ind_entrants().len() >= 6, "{} indirect entrants", ind_entrants().len());
    }

    #[test]
    fn predictor_names_are_unique_and_cover_both_kinds() {
        let names = predictor_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(names.contains(&"tage"));
        assert!(names.contains(&"clustered"));
        assert!(names.contains(&"vlp-var"));
    }

    #[test]
    fn validate_only_accepts_known_and_rejects_unknown() {
        assert_eq!(validate_only("tage, btb").unwrap(), vec!["tage", "btb"]);
        let error = validate_only("tage,warp-drive").unwrap_err();
        assert_eq!(error.phase(), "cli");
        let message = error.to_string();
        assert!(message.contains("warp-drive"), "{message}");
        assert!(message.contains("valid names"), "{message}");
        assert!(validate_only(" ,, ").is_err(), "empty list must not race an empty matrix");
    }

    #[test]
    fn single_cell_is_deterministic() {
        let scale = Scale::new(CI_SCALE_DIVISOR);
        let run = || {
            let data = TournamentData::new(scale);
            run_cell(&data, Kind::Conditional, Scheme::Zoo(1), "hard-noise")
        };
        let (a, a_len) = run();
        let (b, b_len) = run();
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.mispredictions, b.mispredictions);
        assert_eq!(a_len, b_len);
        assert!(a.predictions >= 50_000);
    }

    #[test]
    fn baseline_caps_at_one() {
        let cell = TourneyCell {
            kind: Kind::Conditional,
            predictor: "bimodal",
            workload: "gcc",
            stats: RunStats { predictions: 10, mispredictions: 10, ..Default::default() },
            trace_len: 10,
        };
        let result = TournamentResult {
            scale: Scale::new(1),
            workloads: vec![TourneyWorkload { name: "gcc", family: "suite" }],
            cond_predictors: vec!["bimodal"],
            ind_predictors: vec![],
            cells: vec![cell],
        };
        let baseline = result.baseline();
        let ceiling = baseline
            .get("cells")
            .and_then(|c| c.get("cond:bimodal:gcc"))
            .and_then(|c| c.get("max_miss_rate"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(ceiling, 1.0);
        assert_eq!(baseline.get("min_cells").and_then(|v| v.as_u64()), Some(1));
    }
}
