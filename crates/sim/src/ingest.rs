//! External-trace verbs: `vlpp ingest`, `vlpp run`, `vlpp profile`.
//!
//! These open the simulator to foreign workloads (ROADMAP item 2): a
//! trace captured from a real machine — ChampSim binary, CSV, or JSONL
//! (`TRACES.md` has the grammars) — is converted once into the chunked
//! compact format by `vlpp ingest`, then replayed any number of times
//! through the structure-of-arrays kernels by `vlpp run`, or profiled
//! with the paper's §3.5 two-step heuristic by `vlpp profile`. Both
//! `run` and `profile` also accept the ingestion formats directly and
//! the synthetic benchmarks (`--benchmark`), so synthetic and real
//! workloads flow through one code path.
//!
//! Replay streams: records are pulled through
//! [`TraceSource`] one chunk at a time, so a multi-GB trace runs in
//! memory bounded by the chunk capacity. Profiling is the exception —
//! the §3.5 heuristic needs the whole trace and says so below.
//!
//! Every malformed input surfaces as a typed, offset-carrying
//! [`VlppError`] (phase `trace-read`), never a panic; the ingestion
//! metrics (`ingest.records`, `ingest.bytes`, `ingest.chunks`,
//! `ingest.parse_ns`) are catalogued in `OBSERVABILITY.md`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vlpp_core::{
    CondKernel, HashAssignment, IndKernel, PathConfig, ProfileBuilder, ProfileConfig,
    ProfileReport, MAX_PATH_LENGTH,
};
use vlpp_synth::{suite, InputSet};
use vlpp_trace::compact::{ChunkedWriter, DEFAULT_CHUNK_RECORDS, MAX_CHUNK_RECORDS};
use vlpp_trace::ingest::{open_source, TraceFormat};
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::source::MemorySource;
use vlpp_trace::{Trace, TraceIoError, TraceSource, VlppError};

use crate::experiment::Scale;

fn cli_error(message: impl Into<String>) -> VlppError {
    VlppError::Cli { message: message.into() }
}

const INGEST_USAGE: &str = "\
usage: vlpp ingest <file> [--format champsim|csv|jsonl|compact]
                   [--out FILE] [--chunk-records N] [--json] [--metrics]

Converts a foreign branch trace into the chunked compact format
(`.vlpc`) so it replays in bounded memory. --format defaults to the
file extension (.champsim/.bin, .csv, .jsonl, .vlpc); --out defaults to
the input path with a .vlpc extension; --chunk-records (default 65536)
bounds how many records a replaying reader ever buffers. The output is
written atomically (tmp + rename). See TRACES.md.
";

const RUN_USAGE: &str = "\
usage: vlpp run (--trace FILE [--format F] | --benchmark NAME [--scale N])
                [--index-bits N] [--fixed H | --profile] [--json] [--metrics]

Replays a trace through the conditional + indirect SoA kernels and
reports prediction totals. --trace streams the file (compact traces
replay one chunk at a time; see TRACES.md for the bounded-memory
guarantee), --benchmark builds a synthetic workload. --fixed H (default
8) uses a fixed hash number; --profile instead runs the paper's two-step
profiling pass on the same trace first (this materializes the trace in
memory). Output is stable byte-for-byte at any VLPP_THREADS and does
not embed the input path, so runs are diffable across machines.
";

const PROFILE_USAGE: &str = "\
usage: vlpp profile (--trace FILE [--format F] | --benchmark NAME [--scale N])
                    [--kind cond|ind] [--index-bits N] [--json]

Runs the paper's two-step profiling heuristic (§3.5) over a trace and
reports the chosen per-branch hash assignment: profiled branch count,
default hash, and the path-length histogram. Profiling needs the whole
trace in memory (two passes over all records), unlike `vlpp run`.
";

/// A reader wrapper that counts bytes as they are consumed, so the
/// `ingest.bytes` counter can be fed even when the concrete source type
/// is erased behind `Box<dyn TraceSource>`.
#[derive(Debug)]
struct MeteredReader<R> {
    inner: R,
    bytes: Arc<AtomicU64>,
}

impl<R: Read> Read for MeteredReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// Resolves the trace format: explicit `--format` wins, else the file
/// extension.
fn resolve_format(path: &Path, explicit: Option<&str>) -> Result<TraceFormat, VlppError> {
    match explicit {
        Some(name) => TraceFormat::from_name(name).ok_or_else(|| {
            cli_error(format!("unknown format `{name}` (want champsim, csv, jsonl, or compact)"))
        }),
        None => TraceFormat::from_path(path).ok_or_else(|| {
            cli_error(format!(
                "cannot guess the format of `{}`; pass --format champsim|csv|jsonl|compact",
                path.display()
            ))
        }),
    }
}

/// Opens `path` as a streaming source in `format`, with byte metering.
fn open_trace_file(
    path: &Path,
    format: TraceFormat,
    bytes: Arc<AtomicU64>,
) -> Result<Box<dyn TraceSource + Send>, VlppError> {
    let file = File::open(path).map_err(|e| VlppError::io(path, "open", e))?;
    let reader = MeteredReader { inner: BufReader::new(file), bytes };
    open_source(format, reader).map_err(|e| VlppError::trace_file(path, e))
}

fn print_metrics(enabled: bool) {
    if !enabled {
        return;
    }
    let registry = vlpp_metrics::Registry::global();
    eprint!("{}", registry.render_table());
    println!("METRICS {}", registry.snapshot());
}

/// `vlpp ingest` entry point.
///
/// # Errors
///
/// [`VlppError::Cli`] for flag misuse, [`VlppError::Trace`] (with the
/// faulting byte offset) for malformed input, [`VlppError::Io`] for
/// filesystem failures.
pub fn ingest_main(args: &[String]) -> Result<(), VlppError> {
    let mut input: Option<PathBuf> = None;
    let mut format: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut chunk_records = DEFAULT_CHUNK_RECORDS;
    let mut json = false;
    let mut metrics = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                format =
                    Some(iter.next().ok_or_else(|| cli_error("--format needs a name"))?.clone());
            }
            "--out" => {
                out = Some(PathBuf::from(
                    iter.next().ok_or_else(|| cli_error("--out needs a path"))?,
                ));
            }
            "--chunk-records" => {
                let raw = iter.next().ok_or_else(|| cli_error("--chunk-records needs a count"))?;
                chunk_records = match raw.parse::<u32>() {
                    Ok(n) if (1..=MAX_CHUNK_RECORDS).contains(&n) => n,
                    _ => {
                        return Err(VlppError::Config {
                            name: "--chunk-records".to_string(),
                            value: raw.clone(),
                            message: format!("expected an integer in 1..={MAX_CHUNK_RECORDS}"),
                        });
                    }
                };
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                print!("{INGEST_USAGE}");
                return Ok(());
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other));
            }
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{INGEST_USAGE}")))
            }
        }
    }
    let input = input.ok_or_else(|| cli_error(format!("missing input file\n{INGEST_USAGE}")))?;
    let format = resolve_format(&input, format.as_deref())?;
    let out = out.unwrap_or_else(|| input.with_extension("vlpc"));

    let bytes_in = Arc::new(AtomicU64::new(0));
    let mut source = open_trace_file(&input, format, Arc::clone(&bytes_in))?;

    // Atomic output: stream into a tmp file, rename on success, so a
    // failed ingest never leaves a half-written `.vlpc` behind.
    let tmp = out.with_extension("vlpc.tmp");
    let wrap_out = |e: TraceIoError, tmp: &Path| match e {
        TraceIoError::Io(e) => VlppError::io(tmp, "write", e),
        other => VlppError::trace_file(tmp, other),
    };
    let file = File::create(&tmp).map_err(|e| VlppError::io(&tmp, "create", e))?;
    let mut writer =
        ChunkedWriter::new(BufWriter::new(file), chunk_records).map_err(|e| wrap_out(e, &tmp))?;
    let summary = {
        let _span = vlpp_metrics::span("ingest.parse_ns");
        loop {
            match source.next_record().map_err(|e| VlppError::trace_file(&input, e))? {
                Some(record) => writer.push(&record).map_err(|e| wrap_out(e, &tmp))?,
                None => break writer.finish().map_err(|e| wrap_out(e, &tmp))?,
            }
        }
    };
    std::fs::rename(&tmp, &out).map_err(|e| VlppError::io(&out, "rename", e))?;

    vlpp_metrics::counter("ingest.records").add(summary.records);
    vlpp_metrics::counter("ingest.bytes").add(bytes_in.load(Ordering::Relaxed));
    vlpp_metrics::counter("ingest.chunks").add(summary.chunks);

    if json {
        let mut object = match summary.to_json() {
            JsonValue::Object(fields) => fields,
            other => vec![("summary".to_string(), other)],
        };
        object.insert(0, ("format".to_string(), JsonValue::Str(format.name().to_string())));
        object.push(("out".to_string(), JsonValue::Str(out.display().to_string())));
        println!("{}", JsonValue::Object(object).pretty());
    } else {
        println!(
            "ingested {} {} records into {} chunks ({} bytes) -> {}",
            summary.records,
            format,
            summary.chunks,
            summary.bytes,
            out.display()
        );
    }
    print_metrics(metrics);
    Ok(())
}

/// Where `vlpp run` / `vlpp profile` take their records from.
enum WorkloadArg {
    TraceFile { path: PathBuf, format: Option<String> },
    Benchmark { name: String, scale: Scale },
}

impl WorkloadArg {
    /// Opens the workload as a streaming source. Benchmarks build their
    /// synthetic trace first (they are generated in memory anyway).
    fn open(&self, bytes: Arc<AtomicU64>) -> Result<Box<dyn TraceSource + Send>, VlppError> {
        match self {
            WorkloadArg::TraceFile { path, format } => {
                let format = resolve_format(path, format.as_deref())?;
                open_trace_file(path, format, bytes)
            }
            WorkloadArg::Benchmark { name, scale } => {
                let spec = suite::benchmark(name)
                    .ok_or_else(|| cli_error(format!("unknown benchmark `{name}`")))?;
                let trace = spec
                    .build_program()
                    .execute_conditionals(InputSet::Test, scale.dynamic_conditionals(&spec));
                Ok(Box::new(MemorySource::new(trace)))
            }
        }
    }

    /// Materializes the whole workload (for profiling).
    fn materialize(&self, bytes: Arc<AtomicU64>) -> Result<Trace, VlppError> {
        let mut source = self.open(bytes)?;
        source.read_to_trace().map_err(|e| match self {
            WorkloadArg::TraceFile { path, .. } => VlppError::trace_file(path, e),
            WorkloadArg::Benchmark { .. } => e.into(),
        })
    }
}

/// Totals from one streaming replay through both kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records replayed (all kinds).
    pub records: u64,
    /// Conditional predictions made.
    pub cond_predictions: u64,
    /// Conditional mispredictions.
    pub cond_mispredictions: u64,
    /// Indirect predictions made (returns excluded, as in the paper).
    pub ind_predictions: u64,
    /// Indirect mispredictions.
    pub ind_mispredictions: u64,
}

impl ToJson for ReplayReport {
    /// Integer-only totals: no paths, no floats — the JSON form is what
    /// the golden-replay CI diff and the thread-determinism checks
    /// compare byte-for-byte.
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("records".to_string(), JsonValue::UInt(self.records)),
            (
                "conditional".to_string(),
                JsonValue::Object(vec![
                    ("predictions".to_string(), JsonValue::UInt(self.cond_predictions)),
                    ("mispredictions".to_string(), JsonValue::UInt(self.cond_mispredictions)),
                ]),
            ),
            (
                "indirect".to_string(),
                JsonValue::Object(vec![
                    ("predictions".to_string(), JsonValue::UInt(self.ind_predictions)),
                    ("mispredictions".to_string(), JsonValue::UInt(self.ind_mispredictions)),
                ]),
            ),
        ])
    }
}

impl ReplayReport {
    fn percent(misses: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            100.0 * misses as f64 / total as f64
        }
    }

    /// Renders the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "records: {}\n\
             conditional: {} predictions, {} mispredictions ({:.2}%)\n\
             indirect: {} predictions, {} mispredictions ({:.2}%)\n",
            self.records,
            self.cond_predictions,
            self.cond_mispredictions,
            Self::percent(self.cond_mispredictions, self.cond_predictions),
            self.ind_predictions,
            self.ind_mispredictions,
            Self::percent(self.ind_mispredictions, self.ind_predictions),
        )
    }
}

/// Streams every record of `source` through a conditional and an
/// indirect SoA kernel sharing one hash assignment, never holding more
/// than the source's own buffer (one chunk, for compact traces).
///
/// # Errors
///
/// The first error the source reports.
pub fn replay_streaming<S: TraceSource + ?Sized>(
    source: &mut S,
    index_bits: u32,
    assignment: &HashAssignment,
) -> Result<ReplayReport, TraceIoError> {
    let _span = vlpp_metrics::span("sim.predict_ns");
    let config = PathConfig::new(index_bits);
    let mut cond = CondKernel::new(&config, assignment);
    let mut ind = IndKernel::new(&config, assignment);
    let mut records = 0u64;
    while let Some(record) = source.next_record()? {
        cond.apply(&record);
        ind.apply(&record);
        records += 1;
    }
    Ok(ReplayReport {
        records,
        cond_predictions: cond.predictions(),
        cond_mispredictions: cond.mispredictions(),
        ind_predictions: ind.predictions(),
        ind_mispredictions: ind.mispredictions(),
    })
}

/// Shared `--trace`/`--benchmark`/`--scale`/`--format` parsing for the
/// `run` and `profile` verbs. Returns `None` if the flag was not
/// recognized so the caller can try its own flags.
struct WorkloadFlags {
    trace: Option<PathBuf>,
    format: Option<String>,
    benchmark: Option<String>,
    scale: Scale,
}

impl WorkloadFlags {
    fn new() -> Self {
        WorkloadFlags { trace: None, format: None, benchmark: None, scale: Scale::from_env() }
    }

    fn accept<'a>(
        &mut self,
        arg: &str,
        iter: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, VlppError> {
        match arg {
            "--trace" => {
                let path = iter.next().ok_or_else(|| cli_error("--trace needs a path"))?;
                self.trace = Some(PathBuf::from(path));
            }
            "--format" => {
                let name = iter.next().ok_or_else(|| cli_error("--format needs a name"))?;
                self.format = Some(name.clone());
            }
            "--benchmark" => {
                let name = iter.next().ok_or_else(|| cli_error("--benchmark needs a name"))?;
                self.benchmark = Some(name.clone());
            }
            "--scale" => {
                let raw = iter.next().ok_or_else(|| cli_error("--scale needs an integer"))?;
                let divisor = raw
                    .parse::<u64>()
                    .ok()
                    .filter(|&v| v >= 1)
                    .ok_or_else(|| cli_error("--scale needs a positive integer"))?;
                self.scale = Scale::new(divisor);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn into_workload(self, usage: &str) -> Result<WorkloadArg, VlppError> {
        match (self.trace, self.benchmark) {
            (Some(path), None) => Ok(WorkloadArg::TraceFile { path, format: self.format }),
            (None, Some(name)) => Ok(WorkloadArg::Benchmark { name, scale: self.scale }),
            (Some(_), Some(_)) => {
                Err(cli_error(format!("--trace and --benchmark are mutually exclusive\n{usage}")))
            }
            (None, None) => Err(cli_error(format!("need --trace or --benchmark\n{usage}"))),
        }
    }
}

fn parse_index_bits(raw: &str) -> Result<u32, VlppError> {
    match raw.parse::<u32>() {
        Ok(bits) if (4..=24).contains(&bits) => Ok(bits),
        _ => Err(VlppError::Config {
            name: "--index-bits".to_string(),
            value: raw.to_string(),
            message: "expected an integer in 4..=24".to_string(),
        }),
    }
}

/// `vlpp run` entry point.
///
/// # Errors
///
/// [`VlppError::Cli`] for flag misuse, [`VlppError::Trace`] for a
/// malformed trace, [`VlppError::Io`] for filesystem failures.
pub fn run_main(args: &[String]) -> Result<(), VlppError> {
    let mut flags = WorkloadFlags::new();
    let mut index_bits = 12u32;
    let mut fixed_hash = 8u8;
    let mut profile = false;
    let mut json = false;
    let mut metrics = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if flags.accept(arg.as_str(), &mut iter)? {
            continue;
        }
        match arg.as_str() {
            "--index-bits" => {
                let raw = iter.next().ok_or_else(|| cli_error("--index-bits needs an integer"))?;
                index_bits = parse_index_bits(raw)?;
            }
            "--fixed" => {
                let raw = iter.next().ok_or_else(|| cli_error("--fixed needs a hash number"))?;
                fixed_hash = match raw.parse::<u8>() {
                    Ok(h) if (1..=MAX_PATH_LENGTH as u8).contains(&h) => h,
                    _ => {
                        return Err(VlppError::Config {
                            name: "--fixed".to_string(),
                            value: raw.clone(),
                            message: format!("expected a hash number in 1..={MAX_PATH_LENGTH}"),
                        });
                    }
                };
            }
            "--profile" => profile = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                print!("{RUN_USAGE}");
                return Ok(());
            }
            other => return Err(cli_error(format!("unexpected argument `{other}`\n{RUN_USAGE}"))),
        }
    }
    let workload = flags.into_workload(RUN_USAGE)?;

    let bytes_in = Arc::new(AtomicU64::new(0));
    let report = if profile {
        // The §3.5 heuristic reads the whole trace twice, so this path
        // materializes (documented in RUN_USAGE); plain replay streams.
        let trace = workload.materialize(Arc::clone(&bytes_in))?;
        let builder = ProfileBuilder::new(ProfileConfig::new(PathConfig::new(index_bits)));
        let assignment = {
            let _span = vlpp_metrics::span("sim.profile_ns");
            let cond_report = builder.profile_conditional(&trace);
            cond_report.assignment
        };
        let mut source = MemorySource::new(trace);
        replay_streaming(&mut source, index_bits, &assignment)?
    } else {
        let assignment = HashAssignment::fixed(fixed_hash);
        let mut source = workload.open(Arc::clone(&bytes_in))?;
        replay_streaming(&mut source, index_bits, &assignment).map_err(|e| match &workload {
            WorkloadArg::TraceFile { path, .. } => VlppError::trace_file(path, e),
            WorkloadArg::Benchmark { .. } => e.into(),
        })?
    };

    vlpp_metrics::counter("ingest.records").add(report.records);
    vlpp_metrics::counter("ingest.bytes").add(bytes_in.load(Ordering::Relaxed));

    if json {
        println!("{}", report.to_json().pretty());
    } else {
        print!("{}", report.render());
    }
    print_metrics(metrics);
    Ok(())
}

/// `vlpp profile` entry point.
///
/// # Errors
///
/// [`VlppError::Cli`] for flag misuse, [`VlppError::Trace`] for a
/// malformed trace, [`VlppError::Io`] for filesystem failures.
pub fn profile_main(args: &[String]) -> Result<(), VlppError> {
    let mut flags = WorkloadFlags::new();
    let mut index_bits = 12u32;
    let mut indirect = false;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if flags.accept(arg.as_str(), &mut iter)? {
            continue;
        }
        match arg.as_str() {
            "--index-bits" => {
                let raw = iter.next().ok_or_else(|| cli_error("--index-bits needs an integer"))?;
                index_bits = parse_index_bits(raw)?;
            }
            "--kind" => {
                let raw = iter.next().ok_or_else(|| cli_error("--kind needs cond or ind"))?;
                indirect = match raw.as_str() {
                    "cond" => false,
                    "ind" => true,
                    other => return Err(cli_error(format!("unknown kind `{other}`"))),
                };
            }
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{PROFILE_USAGE}");
                return Ok(());
            }
            other => {
                return Err(cli_error(format!("unexpected argument `{other}`\n{PROFILE_USAGE}")))
            }
        }
    }
    let workload = flags.into_workload(PROFILE_USAGE)?;

    let bytes_in = Arc::new(AtomicU64::new(0));
    let trace = workload.materialize(Arc::clone(&bytes_in))?;
    vlpp_metrics::counter("ingest.records").add(trace.len() as u64);
    vlpp_metrics::counter("ingest.bytes").add(bytes_in.load(Ordering::Relaxed));
    let builder = ProfileBuilder::new(ProfileConfig::new(PathConfig::new(index_bits)));
    let report = {
        let _span = vlpp_metrics::span("sim.profile_ns");
        if indirect {
            builder.profile_indirect(&trace)
        } else {
            builder.profile_conditional(&trace)
        }
    };
    print_profile(&report, json);
    Ok(())
}

fn print_profile(report: &ProfileReport, json: bool) {
    let histogram = report.assignment.length_histogram();
    if json {
        let value = JsonValue::Object(vec![
            ("profiled_branches".to_string(), JsonValue::UInt(report.profiled_branches as u64)),
            ("default_hash".to_string(), JsonValue::UInt(report.default_hash as u64)),
            ("best_fixed_hash".to_string(), JsonValue::UInt(report.best_fixed_hash() as u64)),
            (
                "length_histogram".to_string(),
                JsonValue::Array(histogram.iter().map(|&n| JsonValue::UInt(n as u64)).collect()),
            ),
        ]);
        println!("{}", value.pretty());
    } else {
        println!("profiled branches: {}", report.profiled_branches);
        println!("default hash: {}", report.default_hash);
        println!("best fixed hash: {}", report.best_fixed_hash());
        // Histogram slot `i` counts branches assigned path length `i + 1`.
        let assigned: Vec<String> = histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(slot, &n)| format!("{}:{n}", slot + 1))
            .collect();
        println!("assigned lengths (length:branches): {}", assigned.join(" "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlpp_trace::ingest::write_csv;
    use vlpp_trace::{Addr, BranchRecord};

    fn sample_trace(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let pc = Addr::new(0x1000 + (i % 13) * 4);
            let target = Addr::new(0x2000 + (i % 7) * 16);
            match i % 5 {
                0 => t.push(BranchRecord::indirect(pc, target)),
                1 => t.push(BranchRecord::call(pc, target)),
                _ => t.push(BranchRecord::conditional(pc, target, i % 3 != 0)),
            }
        }
        t
    }

    #[test]
    fn streaming_replay_matches_in_memory_runner() {
        let trace = sample_trace(5000);
        let assignment = HashAssignment::fixed(8);
        let config = PathConfig::new(10);
        let expected_cond = crate::runner::run_path_conditional(&config, &assignment, &trace);
        let expected_ind = crate::runner::run_path_indirect(&config, &assignment, &trace);
        let mut source = MemorySource::new(trace.clone());
        let report = replay_streaming(&mut source, 10, &assignment).unwrap();
        assert_eq!(report.records, trace.len() as u64);
        assert_eq!(report.cond_predictions, expected_cond.predictions);
        assert_eq!(report.cond_mispredictions, expected_cond.mispredictions);
        assert_eq!(report.ind_predictions, expected_ind.predictions);
        assert_eq!(report.ind_mispredictions, expected_ind.mispredictions);
    }

    #[test]
    fn streaming_replay_over_chunked_file_matches_memory_replay() {
        use vlpp_trace::compact;
        let trace = sample_trace(10_000);
        let mut buf = Vec::new();
        compact::copy_to_chunked(&mut MemorySource::new(trace.clone()), &mut buf, 256).unwrap();
        let assignment = HashAssignment::fixed(6);
        let mut chunked = compact::ChunkedReader::new(&buf[..]).unwrap();
        let streamed = replay_streaming(&mut chunked, 11, &assignment).unwrap();
        assert!(chunked.peak_buffered_records() <= 256);
        let mut memory = MemorySource::new(trace);
        let in_memory = replay_streaming(&mut memory, 11, &assignment).unwrap();
        assert_eq!(streamed, in_memory, "chunked and one-shot replay must agree exactly");
    }

    #[test]
    fn replay_report_json_shape_is_stable() {
        let report = ReplayReport {
            records: 10,
            cond_predictions: 6,
            cond_mispredictions: 2,
            ind_predictions: 1,
            ind_mispredictions: 1,
        };
        assert_eq!(
            report.to_json().to_string(),
            "{\"records\":10,\
             \"conditional\":{\"predictions\":6,\"mispredictions\":2},\
             \"indirect\":{\"predictions\":1,\"mispredictions\":1}}"
        );
        assert!(report.render().contains("33.33%"));
    }

    #[test]
    fn metered_reader_counts_consumed_bytes() {
        let trace = sample_trace(20);
        let mut csv = Vec::new();
        write_csv(trace.iter(), &mut csv).unwrap();
        let bytes = Arc::new(AtomicU64::new(0));
        let len = csv.len() as u64;
        let reader = MeteredReader { inner: std::io::Cursor::new(csv), bytes: Arc::clone(&bytes) };
        let mut source = open_source(TraceFormat::Csv, reader).unwrap();
        assert_eq!(source.read_to_trace().unwrap(), trace);
        assert_eq!(bytes.load(Ordering::Relaxed), len);
    }

    #[test]
    fn resolve_format_prefers_explicit_and_rejects_unknown() {
        let p = Path::new("trace.csv");
        assert!(matches!(resolve_format(p, None), Ok(TraceFormat::Csv)));
        assert!(matches!(resolve_format(p, Some("jsonl")), Ok(TraceFormat::Jsonl)));
        assert!(resolve_format(p, Some("xml")).is_err());
        assert!(resolve_format(Path::new("trace.dat"), None).is_err());
    }
}
