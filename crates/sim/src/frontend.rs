//! A simple front-end timing model: converts prediction accuracy into
//! fetch-cycle cost, the currency the paper's introduction argues in
//! ("as the pipeline depths and the issue rates increase, the amount of
//! speculative work that must be thrown away ... also increases").
//!
//! The model charges, per control transfer:
//!
//! * 1 base cycle;
//! * `mispredict_penalty` cycles when the relevant predictor was wrong
//!   (conditional direction or indirect target; returns use a RAS);
//! * `repredict_penalty` cycles when the §4.3 HFNT predicted the wrong
//!   hash number (a front-end bubble, much cheaper than a flush).
//!
//! It is deliberately not a microarchitectural simulator — no
//! out-of-order core, no caches — but it weighs conditional vs indirect
//! accuracy and HFNT overhead the way the paper's argument does, and it
//! lets the `frontend` experiment rank predictors by cost rather than
//! rate.

use vlpp_core::Hfnt;
use vlpp_predict::{BranchObserver, ConditionalPredictor, IndirectPredictor, ReturnAddressStack};
use vlpp_trace::{BranchKind, Trace};

/// Penalty parameters, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Penalties {
    /// Full pipeline flush on a branch misprediction.
    pub mispredict: u64,
    /// Front-end bubble on an HFNT hash-number re-prediction.
    pub repredict: u64,
}

vlpp_trace::impl_to_json!(Penalties { mispredict, repredict });

impl Default for Penalties {
    /// A deep late-1990s pipeline: 12-cycle flush, 1-cycle re-predict
    /// bubble.
    fn default() -> Self {
        Penalties { mispredict: 12, repredict: 1 }
    }
}

/// Cycle accounting for one front-end run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendCost {
    /// Control transfers fetched.
    pub branches: u64,
    /// Conditional mispredictions.
    pub conditional_misses: u64,
    /// Indirect-target mispredictions (returns counted separately).
    pub indirect_misses: u64,
    /// Return mispredictions (RAS misses).
    pub return_misses: u64,
    /// HFNT re-predictions.
    pub repredictions: u64,
    /// Total cycles charged.
    pub cycles: u64,
}

vlpp_trace::impl_to_json!(FrontendCost {
    branches,
    conditional_misses,
    indirect_misses,
    return_misses,
    repredictions,
    cycles,
});

impl FrontendCost {
    /// Cycles per branch — the model's bottom line.
    pub fn cycles_per_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.cycles as f64 / self.branches as f64
        }
    }
}

/// Runs the front-end model: a conditional predictor, an indirect
/// predictor, a 16-entry RAS for returns, and (optionally) an HFNT
/// charging re-prediction bubbles for the conditional predictor's hash
/// numbers.
///
/// `hash_number_of` supplies the actual hash number per conditional pc
/// when an HFNT is modeled (pass `None` for single-access predictors
/// like gshare).
pub fn run_frontend<C, I>(
    conditional: &mut C,
    indirect: &mut I,
    hfnt: Option<(&mut Hfnt, &dyn Fn(vlpp_trace::Addr) -> u8)>,
    trace: &Trace,
    penalties: Penalties,
) -> FrontendCost
where
    C: ConditionalPredictor,
    I: IndirectPredictor,
{
    let mut ras = ReturnAddressStack::new(16);
    let mut cost = FrontendCost::default();
    let mut hfnt = hfnt;
    for record in trace.iter() {
        cost.branches += 1;
        cost.cycles += 1;
        match record.kind() {
            BranchKind::Conditional => {
                if let Some((hfnt, hash_number_of)) = hfnt.as_mut() {
                    let actual = hash_number_of(record.pc());
                    hfnt.lookup(record.pc());
                    if !hfnt.resolve(record.pc(), actual) {
                        cost.repredictions += 1;
                        cost.cycles += penalties.repredict;
                    }
                }
                let prediction = conditional.predict(record.pc());
                if prediction != record.taken() {
                    cost.conditional_misses += 1;
                    cost.cycles += penalties.mispredict;
                }
                conditional.train(record.pc(), record.taken());
            }
            BranchKind::Indirect => {
                let prediction = indirect.predict(record.pc());
                if prediction != record.target() {
                    cost.indirect_misses += 1;
                    cost.cycles += penalties.mispredict;
                }
                indirect.train(record.pc(), record.target());
            }
            BranchKind::Return => {
                if !ras.resolve(record.target()) {
                    cost.return_misses += 1;
                    cost.cycles += penalties.mispredict;
                }
            }
            // Direct jumps and calls are assumed BTB-hit (the paper's
            // predictors never see them either).
            BranchKind::Unconditional | BranchKind::Call => {}
        }
        conditional.observe(record);
        indirect.observe(record);
        ras.observe(record);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlpp_core::{HashAssignment, PathConditional, PathConfig, PathIndirect};
    use vlpp_predict::{Gshare, LastTargetBtb};
    use vlpp_synth::{suite, InputSet};

    fn workload() -> Trace {
        suite::benchmark("li").unwrap().build_program().execute(InputSet::Test, 120_000)
    }

    #[test]
    fn cost_components_sum_correctly() {
        let trace = workload();
        let mut gshare = Gshare::new(12);
        let mut btb = LastTargetBtb::new(9);
        let penalties = Penalties { mispredict: 10, repredict: 2 };
        let cost = run_frontend(&mut gshare, &mut btb, None, &trace, penalties);
        assert_eq!(cost.branches, trace.len() as u64);
        let expected = cost.branches
            + 10 * (cost.conditional_misses + cost.indirect_misses + cost.return_misses)
            + 2 * cost.repredictions;
        assert_eq!(cost.cycles, expected);
        assert_eq!(cost.repredictions, 0, "no HFNT was modeled");
        assert!(cost.cycles_per_branch() > 1.0);
    }

    #[test]
    fn better_predictors_cost_fewer_cycles() {
        let trace = workload();
        let penalties = Penalties::default();

        let mut gshare = Gshare::new(14);
        let mut btb = LastTargetBtb::new(9);
        let baseline = run_frontend(&mut gshare, &mut btb, None, &trace, penalties);

        let mut vlp_cond = PathConditional::new(PathConfig::new(14), HashAssignment::fixed(10));
        let mut vlp_ind = PathIndirect::new(PathConfig::new(9), HashAssignment::fixed(4));
        let path = run_frontend(&mut vlp_cond, &mut vlp_ind, None, &trace, penalties);

        assert!(
            path.cycles < baseline.cycles,
            "path predictors ({}) should cost less than gshare+BTB ({})",
            path.cycles,
            baseline.cycles
        );
    }

    #[test]
    fn hfnt_bubbles_are_charged_but_cheap() {
        let trace = workload();
        let penalties = Penalties::default();
        let assignment = {
            // A spread of lengths so the HFNT has something to predict.
            let mut a = HashAssignment::fixed(8);
            for (i, r) in trace.conditionals().take(200).enumerate() {
                a.assign(r.pc(), (i % 16 + 1) as u8);
            }
            a
        };
        let mut vlp = PathConditional::new(PathConfig::new(14), assignment.clone());
        let mut ind = PathIndirect::new(PathConfig::new(9), HashAssignment::fixed(4));
        let mut hfnt = Hfnt::new(10, 8);
        let lookup = |pc: vlpp_trace::Addr| assignment.get(pc);
        let cost = run_frontend(&mut vlp, &mut ind, Some((&mut hfnt, &lookup)), &trace, penalties);
        assert!(cost.repredictions > 0, "the varied assignment must cause re-predictions");
        // Bubbles must be a small cost component relative to flushes.
        let bubble_cycles = cost.repredictions * penalties.repredict;
        let flush_cycles = penalties.mispredict
            * (cost.conditional_misses + cost.indirect_misses + cost.return_misses);
        assert!(bubble_cycles < flush_cycles / 2, "{bubble_cycles} vs {flush_cycles}");
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let mut gshare = Gshare::new(8);
        let mut btb = LastTargetBtb::new(8);
        let cost = run_frontend(&mut gshare, &mut btb, None, &Trace::new(), Penalties::default());
        assert_eq!(cost, FrontendCost::default());
        assert_eq!(cost.cycles_per_branch(), 0.0);
    }
}
