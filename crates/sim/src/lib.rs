//! # vlpp-sim — simulation harness and paper experiments
//!
//! Drives any predictor from `vlpp-predict` / `vlpp-core` over traces
//! from `vlpp-synth`, and defines one experiment per table and figure of
//! the paper's evaluation (§5):
//!
//! | Experiment id | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — benchmark summary |
//! | `table2` | Table 2 — best fixed path length per table size |
//! | `table3` | Table 3 — indirect misprediction, 8 benchmarks, 2 KB |
//! | `fig5` / `fig6` | Figures 5–6 — conditional @ 16 KB, SPEC / non-SPEC |
//! | `fig7` / `fig8` | Figures 7–8 — indirect @ 2 KB, SPEC / non-SPEC |
//! | `fig9` | Figure 9 — gcc conditional sweep over sizes |
//! | `fig10` | Figure 10 — gcc indirect sweep over sizes |
//! | `headline` | the abstract's gcc numbers (4 KB cond, 512 B ind) |
//! | `hfnt` | §4.3 HFNT re-prediction cost (data the paper discusses) |
//!
//! Run any of them with the CLI:
//!
//! ```text
//! cargo run --release -p vlpp-sim --bin vlpp -- fig9 --scale 32
//! ```
//!
//! ## Scale
//!
//! The paper runs benchmarks to completion (11 M – 93 M dynamic
//! conditional branches). The default scale factor divides those counts
//! by 16 — large enough for stable rates, small enough for a laptop;
//! `--scale 1` reproduces full-paper workload sizes. Because rates are
//! ratios, the orderings are stable across scales.
//!
//! ## Example
//!
//! ```
//! use vlpp_predict::{Budget, Gshare};
//! use vlpp_sim::runner;
//! use vlpp_synth::{suite, InputSet};
//!
//! let program = suite::benchmark("compress").unwrap().build_program();
//! let trace = program.execute(InputSet::Test, 50_000);
//! let mut gshare = Gshare::new(Budget::from_kib(16).cond_index_bits());
//! let stats = runner::run_conditional(&mut gshare, &trace);
//! assert!(stats.miss_rate() < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod experiment;
pub mod frontend;
pub mod ingest;
pub mod microbench;
pub mod paper;
pub mod report;
pub mod runner;
pub mod serve;
pub mod tournament;

pub use checkpoint::{Checkpoint, SavedOutput};
pub use experiment::{Scale, Workloads};
pub use frontend::{run_frontend, FrontendCost, Penalties};
pub use runner::{
    run_conditional, run_indirect, run_path_conditional, run_path_indirect, RunStats,
};
