//! Experiment context: workload scaling, trace construction, and cached
//! cross-benchmark artifacts (traces, profile reports, best fixed
//! lengths).
//!
//! All caches are [`Memo`]s — compute-once-per-key and safe under the
//! worker pool: two experiments that race on the same benchmark share
//! one computation instead of both paying for it.

use std::sync::Arc;

use vlpp_core::{PathConfig, ProfileBuilder, ProfileConfig, ProfileReport};
use vlpp_pool::{Memo, Pool};
use vlpp_synth::{suite, BenchmarkSpec, InputSet};
use vlpp_trace::Trace;

/// Workload scale: the paper's dynamic branch counts divided by
/// `divisor`. 1 reproduces full paper-size runs; the default 16 keeps a
/// full experiment under a minute while leaving hundreds of thousands to
/// millions of branches per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    divisor: u64,
}

impl Scale {
    /// The default scale (divisor 16).
    pub const DEFAULT: Scale = Scale { divisor: 16 };

    /// A scale dividing the paper's dynamic counts by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor >= 1, "scale divisor must be at least 1");
        Scale { divisor }
    }

    /// Reads `VLPP_SCALE` from the environment, falling back to the
    /// default. An unset variable is silently the default; a set-but-
    /// invalid value (zero, negative, not a number) warns on stderr and
    /// falls back rather than panicking — `VLPP_SCALE=0 vlpp headline`
    /// must run, not abort.
    pub fn from_env() -> Self {
        match std::env::var("VLPP_SCALE") {
            Err(_) => Scale::DEFAULT,
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(divisor) if divisor >= 1 => Scale::new(divisor),
                _ => {
                    eprintln!(
                        "warning: ignoring invalid VLPP_SCALE=`{raw}` (expected an \
                         integer >= 1); using the default 1/{}",
                        Scale::DEFAULT.divisor()
                    );
                    Scale::DEFAULT
                }
            },
        }
    }

    /// The divisor.
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// The scaled dynamic conditional-branch count for a benchmark,
    /// floored at 50 000 so tiny scales still produce meaningful rates.
    pub fn dynamic_conditionals(&self, spec: &BenchmarkSpec) -> u64 {
        (spec.default_dynamic_conditional / self.divisor).max(50_000)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::DEFAULT
    }
}

impl vlpp_trace::json::ToJson for Scale {
    /// `{"divisor": n}` — recorded alongside experiment output so a
    /// saved JSON report carries the scale it was produced at.
    fn to_json(&self) -> vlpp_trace::json::JsonValue {
        vlpp_trace::json::JsonValue::Object(vec![(
            "divisor".to_string(),
            vlpp_trace::json::JsonValue::UInt(self.divisor),
        )])
    }
}

/// Which branch population an artifact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Conditional branches.
    Conditional,
    /// Indirect branches.
    Indirect,
}

/// The experiment context: memoizes every expensive artifact — the
/// multi-million-branch traces themselves (Arc-shared, built once per
/// `(benchmark, input set)` instead of once per experiment), the
/// per-benchmark profile reports, and the cross-benchmark best fixed
/// path lengths of Table 2.
///
/// Every cache is compute-once-per-key: concurrent experiments that
/// miss on the same key block on one computation and share its result.
#[derive(Debug)]
pub struct Workloads {
    scale: Scale,
    traces: Memo<(String, InputSet), Trace>,
    profiles: Memo<(String, Kind, u32), ProfileReport>,
    fixed_lengths: Memo<(Kind, u32), u8>,
}

impl Workloads {
    /// Creates a context at the given scale. The caches report their
    /// hit/miss counts as `pool.memo.{traces,profiles,fixed_lengths}.*`
    /// (see `OBSERVABILITY.md`).
    pub fn new(scale: Scale) -> Self {
        Workloads {
            scale,
            traces: Memo::named("traces"),
            profiles: Memo::named("profiles"),
            fixed_lengths: Memo::named("fixed_lengths"),
        }
    }

    /// The context's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The measurement (test-input) trace for a benchmark. Memoized.
    pub fn test_trace(&self, spec: &BenchmarkSpec) -> Arc<Trace> {
        self.trace(spec, InputSet::Test)
    }

    /// The profiling-input trace for a benchmark. Memoized.
    pub fn profile_trace(&self, spec: &BenchmarkSpec) -> Arc<Trace> {
        self.trace(spec, InputSet::Profile)
    }

    fn trace(&self, spec: &BenchmarkSpec, input: InputSet) -> Arc<Trace> {
        self.traces.get_or_compute((spec.name.clone(), input), || {
            let _span = vlpp_metrics::span("sim.trace_build_ns");
            let program = spec.build_program();
            program.execute_conditionals(input, self.scale.dynamic_conditionals(spec))
        })
    }

    /// The §3.5 profile report for a benchmark's conditional branches at
    /// a given predictor-table index width. Memoized.
    pub fn profile_conditional(&self, spec: &BenchmarkSpec, index_bits: u32) -> Arc<ProfileReport> {
        self.profile(spec, Kind::Conditional, index_bits)
    }

    /// The §3.5 profile report for a benchmark's indirect branches.
    /// Memoized.
    pub fn profile_indirect(&self, spec: &BenchmarkSpec, index_bits: u32) -> Arc<ProfileReport> {
        self.profile(spec, Kind::Indirect, index_bits)
    }

    fn profile(&self, spec: &BenchmarkSpec, kind: Kind, index_bits: u32) -> Arc<ProfileReport> {
        self.profiles.get_or_compute((spec.name.clone(), kind, index_bits), || {
            let _span = vlpp_metrics::span("sim.profile_ns");
            let trace = self.profile_trace(spec);
            let builder = ProfileBuilder::new(ProfileConfig::new(PathConfig::new(index_bits)));
            match kind {
                Kind::Conditional => builder.profile_conditional(&trace),
                Kind::Indirect => builder.profile_indirect(&trace),
            }
        })
    }

    /// The benchmark-averaged best fixed path length for conditional
    /// predictors of the given index width — the paper's Table 2
    /// methodology: "the length for which the average misprediction rate
    /// for all the benchmarks was the lowest", measured on the *profile*
    /// inputs. Memoized.
    pub fn best_fixed_conditional_length(&self, index_bits: u32) -> u8 {
        self.best_fixed_length(Kind::Conditional, index_bits)
    }

    /// As [`best_fixed_conditional_length`], for indirect predictors.
    ///
    /// [`best_fixed_conditional_length`]: Self::best_fixed_conditional_length
    pub fn best_fixed_indirect_length(&self, index_bits: u32) -> u8 {
        self.best_fixed_length(Kind::Indirect, index_bits)
    }

    fn best_fixed_length(&self, kind: Kind, index_bits: u32) -> u8 {
        *self.fixed_lengths.get_or_compute((kind, index_bits), || {
            let _span = vlpp_metrics::span("sim.fixed_length_sweep_ns");
            // Average the per-length miss rates over all 16 benchmarks.
            // Step 1 of the profiling heuristic *is* a sweep of every
            // fixed length, so one iteration-free profile per benchmark
            // suffices — and the benchmarks are independent, so they run
            // on the shared worker pool.
            let reports = Pool::global().map(suite::all_benchmarks(), |spec| {
                let trace = self.profile_trace(&spec);
                let config = ProfileConfig::new(PathConfig::new(index_bits)).with_iterations(0);
                let builder = ProfileBuilder::new(config);
                match kind {
                    Kind::Conditional => builder.profile_conditional(&trace),
                    Kind::Indirect => builder.profile_indirect(&trace),
                }
            });
            let mut sums = [0.0f64; vlpp_core::MAX_PATH_LENGTH];
            let mut lengths: Vec<u8> = Vec::new();
            for report in &reports {
                if lengths.is_empty() {
                    lengths = report.step1.iter().map(|s| s.hash).collect();
                }
                for (i, stat) in report.step1.iter().enumerate() {
                    sums[i] += stat.miss_rate();
                }
            }
            let best_index = (0..lengths.len())
                .min_by(|&a, &b| sums[a].partial_cmp(&sums[b]).expect("finite rates"))
                .expect("at least one length");
            lengths[best_index]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_divides_and_floors() {
        let spec = suite::benchmark("gcc").unwrap();
        assert_eq!(Scale::new(16).dynamic_conditionals(&spec), 27_600_000 / 16);
        assert_eq!(Scale::new(1_000_000).dynamic_conditionals(&spec), 50_000);
    }

    #[test]
    #[should_panic(expected = "divisor")]
    fn scale_rejects_zero() {
        Scale::new(0);
    }

    #[test]
    fn traces_differ_between_inputs() {
        let w = Workloads::new(Scale::new(1_000_000));
        let spec = suite::benchmark("compress").unwrap();
        let test = w.test_trace(&spec);
        let profile = w.profile_trace(&spec);
        assert_ne!(test, profile);
        assert_eq!(test.conditionals().count(), 50_000);
    }

    #[test]
    fn profile_reports_are_memoized() {
        let w = Workloads::new(Scale::new(1_000_000));
        let spec = suite::benchmark("compress").unwrap();
        let a = w.profile_conditional(&spec, 10);
        let b = w.profile_conditional(&spec, 10);
        assert!(Arc::ptr_eq(&a, &b));
        let c = w.profile_conditional(&spec, 12);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
