//! Crash-safe checkpointing for `vlpp all`.
//!
//! A full `vlpp all` run is minutes of compute at realistic scales; a
//! crash (or an injected fault) near the end used to throw all of it
//! away. With `--checkpoint <dir>`, every experiment that completes is
//! persisted as one JSON envelope, and a rerun loads the finished ones
//! and computes only what is missing — emitting stdout **byte-identical**
//! to an uninterrupted run (the integration suite kills a run mid-way
//! and diffs exactly that).
//!
//! ## Format
//!
//! One file per experiment, `<dir>/<id>.json`:
//!
//! ```json
//! { "id": "fig5", "scale": 16, "json": { …tree… }, "text": "…rendered table…" }
//! ```
//!
//! Both renderings are stored so `--json` and text runs can each resume
//! from the same checkpoint without recomputation. `scale` pins the
//! scale divisor the result was computed at: loading an envelope written
//! at a different scale is a hard [`VlppError::Checkpoint`] — silently
//! mixing scales would corrupt the output instead of crashing, which is
//! worse.
//!
//! ## Crash safety
//!
//! Writes go to a `.tmp` sibling first and are atomically renamed into
//! place, so a kill mid-write leaves either the old file or no file —
//! never a torn one. A *corrupt* envelope (torn by something cruder
//! than a kill, or hand-edited) is reported on stderr and treated as
//! missing: the experiment recomputes, the run proceeds.

use std::path::{Path, PathBuf};

use vlpp_trace::json::JsonValue;
use vlpp_trace::VlppError;

/// One persisted experiment result, both renderings.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedOutput {
    /// The experiment's JSON tree (what `--json` emits).
    pub json: JsonValue,
    /// The rendered text table (what the default mode emits).
    pub text: String,
}

/// A checkpoint directory scoped to one scale divisor.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    scale: u64,
}

impl Checkpoint {
    /// Opens (creating if needed) a checkpoint directory for runs at
    /// the given scale divisor.
    pub fn open(dir: impl Into<PathBuf>, scale: u64) -> Result<Self, VlppError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|source| VlppError::io(dir.clone(), "create checkpoint directory", source))?;
        Ok(Checkpoint { dir, scale })
    }

    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Loads the saved output for `id`, if a complete one exists.
    ///
    /// Missing file → `Ok(None)` (not yet computed). Corrupt envelope →
    /// `Ok(None)` with a stderr warning (recompute and move on). Scale
    /// mismatch → `Err`: the caller asked to resume a different run.
    pub fn load(&self, id: &str) -> Result<Option<SavedOutput>, VlppError> {
        let path = self.path_for(id);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(VlppError::io(path, "read checkpoint", source)),
        };
        let envelope = match JsonValue::parse(&raw) {
            Ok(envelope) => envelope,
            Err(error) => {
                eprintln!(
                    "warning: corrupt checkpoint {} ({error}); recomputing `{id}`",
                    path.display()
                );
                return Ok(None);
            }
        };
        let fields = (
            envelope.get("id").and_then(|v| v.as_str()),
            envelope.get("scale").and_then(|v| v.as_u64()),
            envelope.get("json"),
            envelope.get("text").and_then(|v| v.as_str()),
        );
        let (Some(saved_id), Some(saved_scale), Some(json), Some(text)) = fields else {
            eprintln!(
                "warning: corrupt checkpoint {} (missing fields); recomputing `{id}`",
                path.display()
            );
            return Ok(None);
        };
        if saved_id != id {
            eprintln!(
                "warning: checkpoint {} is for `{saved_id}`, not `{id}`; recomputing",
                path.display()
            );
            return Ok(None);
        }
        if saved_scale != self.scale {
            return Err(VlppError::Checkpoint {
                path,
                message: format!(
                    "saved at scale 1/{saved_scale} but this run uses 1/{}; \
                     pass the matching --scale or use a fresh checkpoint directory",
                    self.scale
                ),
            });
        }
        Ok(Some(SavedOutput { json: json.clone(), text: text.to_string() }))
    }

    /// Persists one experiment's output atomically: the envelope is
    /// written to a `.tmp` sibling and renamed into place, so a crash
    /// mid-write can never leave a torn file behind.
    pub fn store(&self, id: &str, output: &SavedOutput) -> Result<(), VlppError> {
        let envelope = JsonValue::Object(vec![
            ("id".to_string(), JsonValue::Str(id.to_string())),
            ("scale".to_string(), JsonValue::UInt(self.scale)),
            ("json".to_string(), output.json.clone()),
            ("text".to_string(), JsonValue::Str(output.text.clone())),
        ]);
        let path = self.path_for(id);
        let tmp = self.dir.join(format!("{id}.json.tmp"));
        std::fs::write(&tmp, envelope.pretty())
            .map_err(|source| VlppError::io(tmp.clone(), "write checkpoint", source))?;
        std::fs::rename(&tmp, &path)
            .map_err(|source| VlppError::io(path, "commit checkpoint", source))
    }

    /// The directory this checkpoint lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vlpp-checkpoint-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> SavedOutput {
        SavedOutput {
            json: JsonValue::Object(vec![
                ("rate".to_string(), JsonValue::Float(3.25)),
                ("rows".to_string(), JsonValue::Array(vec![JsonValue::UInt(1)])),
            ]),
            text: "col a | col b\n 1.0 | 2.0\n".to_string(),
        }
    }

    #[test]
    fn store_then_load_round_trips_both_renderings() {
        let dir = temp_dir("roundtrip");
        let checkpoint = Checkpoint::open(&dir, 16).unwrap();
        assert_eq!(checkpoint.load("fig5").unwrap(), None, "nothing saved yet");
        checkpoint.store("fig5", &sample()).unwrap();
        assert_eq!(checkpoint.load("fig5").unwrap(), Some(sample()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_mismatch_is_a_typed_error() {
        let dir = temp_dir("scale");
        Checkpoint::open(&dir, 16).unwrap().store("table1", &sample()).unwrap();
        let other = Checkpoint::open(&dir, 4).unwrap();
        match other.load("table1") {
            Err(VlppError::Checkpoint { message, .. }) => {
                assert!(message.contains("1/16"), "{message}");
                assert!(message.contains("1/4"), "{message}");
            }
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_envelope_recomputes_instead_of_failing() {
        let dir = temp_dir("corrupt");
        let checkpoint = Checkpoint::open(&dir, 16).unwrap();
        std::fs::write(dir.join("fig9.json"), "{ not json").unwrap();
        assert_eq!(checkpoint.load("fig9").unwrap(), None, "corrupt = missing");
        std::fs::write(dir.join("fig10.json"), "{\"id\": \"fig10\"}").unwrap();
        assert_eq!(checkpoint.load("fig10").unwrap(), None, "incomplete = missing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_file_survives_a_store() {
        let dir = temp_dir("tmp");
        let checkpoint = Checkpoint::open(&dir, 16).unwrap();
        checkpoint.store("hfnt", &sample()).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
