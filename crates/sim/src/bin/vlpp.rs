//! `vlpp` — run any of the paper's experiments from the command line.
//!
//! ```text
//! vlpp <experiment> [--scale N] [--json] [--metrics]
//!
//! experiments:
//!   table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 headline hfnt
//!   ablate-hashes ablate-select ablate-returns ablate-candidates
//!   ablate-interference ablate-stack
//!   all        (every table and figure, in order)
//! ```

use std::process::ExitCode;

use vlpp_sim::paper;
use vlpp_sim::report::TextTable;
use vlpp_sim::{Scale, Workloads};

const USAGE: &str = "\
usage: vlpp <experiment> [--scale N] [--json] [--metrics]

experiments:
  table1     Table 1: benchmark summary
  table2     Table 2: best fixed path length per table size
  table3     Table 3: indirect misprediction, 8 benchmarks, 2KB
  fig5       Figure 5: conditional @16KB, SPEC
  fig6       Figure 6: conditional @16KB, non-SPEC
  fig7       Figure 7: indirect @2KB, SPEC
  fig8       Figure 8: indirect @2KB, non-SPEC
  fig9       Figure 9: gcc conditional sweep (1KB-256KB)
  fig10      Figure 10: gcc indirect sweep (0.5KB-32KB)
  headline   the abstract's gcc numbers (4KB cond, 512B ind)
  hfnt       section 4.3 HFNT re-prediction cost
  analyze    section 5.3 analysis: miss rates by behavior class (gcc)
  lengths    profiled path-length histogram (gcc)
  ras        return address stack accuracy (all benchmarks)
  frontend   fetch cycles/branch for four front-end configurations
  related-cond | related-ind   every related-work predictor on gcc
  ablate-hashes | ablate-select | ablate-returns | ablate-candidates |
  ablate-interference | ablate-stack
  all        every table and figure, in order

options:
  --scale N  divide the paper's dynamic branch counts by N (default 16;
             also via VLPP_SCALE)
  --json     emit JSON instead of text tables; `all --json` emits one
             object keyed by experiment id
  --metrics  after the experiment, print a metrics table on stderr and a
             single `METRICS {json}` line on stdout (see OBSERVABILITY.md;
             excluded from the determinism guarantee)

environment:
  VLPP_SCALE    default for --scale (invalid values warn and fall back)
  VLPP_THREADS  worker-pool size (default: available parallelism; output
                is byte-identical at any thread count)
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut experiment: Option<String> = None;
    let mut scale = Scale::from_env();
    let mut json = false;
    let mut metrics = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) if v >= 1 => v,
                    _ => {
                        eprintln!("--scale needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
                scale = Scale::new(value);
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(experiment) = experiment else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let workloads = Workloads::new(scale);
    eprintln!("# scale: 1/{} of paper dynamic counts", scale.divisor());

    let all = experiment == "all";
    let ids: Vec<&str> = if all {
        vec![
            "table1", "table2", "fig5", "fig6", "fig7", "fig8", "table3", "fig9", "fig10",
            "headline", "hfnt",
        ]
    } else {
        vec![experiment.as_str()]
    };

    // Experiments are independent; run them on the shared pool. Results
    // come back in submission order, so output is deterministic at any
    // thread count.
    let outputs = {
        let _span = vlpp_metrics::span("sim.experiment_ns");
        vlpp_pool::Pool::global().map(ids.clone(), |id| run_one(id, &workloads))
    };

    let mut object = Vec::new();
    for (id, output) in ids.iter().zip(outputs) {
        match output {
            Ok(Output { json: tree, text }) => {
                if json && all {
                    object.push((id.to_string(), tree));
                } else if json {
                    println!("{}", tree.pretty());
                } else {
                    println!("== {id} ==");
                    println!("{text}");
                }
            }
            Err(message) => {
                eprintln!("{message}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if json && all {
        // One JSON object keyed by experiment id — parseable as a whole,
        // unlike the old headers-interleaved-with-objects stream.
        println!("{}", vlpp_trace::json::JsonValue::Object(object).pretty());
    }
    if metrics {
        // Metrics are observational, not part of the experiment output:
        // the table goes to stderr, and the machine-readable snapshot is
        // one self-delimiting stdout line consumers strip before diffing.
        let registry = vlpp_metrics::Registry::global();
        eprint!("{}", registry.render_table());
        println!("METRICS {}", registry.snapshot());
    }
    ExitCode::SUCCESS
}

/// One experiment's result, rendered both ways; the caller picks.
struct Output {
    json: vlpp_trace::json::JsonValue,
    text: String,
}

fn run_one(id: &str, workloads: &Workloads) -> Result<Output, String> {
    fn emit<T: vlpp_trace::json::ToJson>(data: &T, table: TextTable) -> Output {
        Output { json: data.to_json(), text: table.render() }
    }

    Ok(match id {
        "table1" => {
            let rows = paper::table1(workloads);
            emit(&rows, paper::Table1Row::render(&rows))
        }
        "table2" => {
            let data = paper::table2(workloads);
            emit(&data, data.render())
        }
        "table3" => {
            let rows = paper::table3(workloads);
            emit(&rows, paper::render_table3(&rows))
        }
        "fig5" => {
            let rows = paper::figure5(workloads);
            let mut output = emit(&rows, paper::CondRow::render(&rows));
            output.text.push_str(&format!(
                "mean VLP reduction vs gshare: {:.1}%\n",
                100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
            ));
            output
        }
        "fig6" => {
            let rows = paper::figure6(workloads);
            let mut output = emit(&rows, paper::CondRow::render(&rows));
            output.text.push_str(&format!(
                "mean VLP reduction vs gshare: {:.1}%\n",
                100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
            ));
            output
        }
        "fig7" => {
            let rows = paper::figure7(workloads);
            emit(&rows, paper::IndRow::render(&rows))
        }
        "fig8" => {
            let rows = paper::figure8(workloads);
            emit(&rows, paper::IndRow::render(&rows))
        }
        "fig9" => {
            let points = paper::figure9(workloads);
            let mut output = emit(&points, paper::GccCondPoint::render(&points));
            let mut chart = vlpp_sim::report::AsciiChart::new(
                points.iter().map(|p| vlpp_predict::Budget::from_bytes(p.bytes).to_string()).collect(),
            );
            chart.series('g', "gshare", points.iter().map(|p| p.gshare).collect());
            chart.series('f', "fixed length path", points.iter().map(|p| p.fixed).collect());
            chart.series('t', "fixed (tuned)", points.iter().map(|p| p.fixed_tuned).collect());
            chart.series('v', "variable length path", points.iter().map(|p| p.variable).collect());
            output.text.push('\n');
            output.text.push_str(&chart.render(14));
            output
        }
        "fig10" => {
            let points = paper::figure10(workloads);
            let mut output = emit(&points, paper::GccIndPoint::render(&points));
            let mut chart = vlpp_sim::report::AsciiChart::new(
                points.iter().map(|p| vlpp_predict::Budget::from_bytes(p.bytes).to_string()).collect(),
            );
            chart.series('p', "path (CHP)", points.iter().map(|p| p.path).collect());
            chart.series('n', "pattern (CHP)", points.iter().map(|p| p.pattern).collect());
            chart.series('f', "fixed length path", points.iter().map(|p| p.fixed).collect());
            chart.series('v', "variable length path", points.iter().map(|p| p.variable).collect());
            output.text.push('\n');
            output.text.push_str(&chart.render(14));
            output
        }
        "headline" => {
            let data = paper::headline(workloads);
            emit(&data, data.render())
        }
        "hfnt" => {
            let rows = paper::hfnt_experiment(workloads);
            emit(&rows, paper::HfntRow::render(&rows))
        }
        "analyze" => {
            let rows = paper::analyze_gcc(workloads);
            emit(&rows, paper::AnalysisRow::render(&rows))
        }
        "lengths" => {
            let data = paper::length_histogram(workloads, "gcc");
            emit(&data, data.render())
        }
        "ras" => {
            let rows = paper::ras_experiment(workloads);
            emit(&rows, paper::RasRow::render(&rows))
        }
        "frontend" => {
            let rows = paper::frontend_experiment(workloads);
            emit(&rows, paper::FrontendRow::render(&rows))
        }
        "related-cond" => {
            let rows = paper::related_conditional(workloads);
            emit(&rows, paper::RelatedRow::render(&rows))
        }
        "related-ind" => {
            let rows = paper::related_indirect(workloads);
            emit(&rows, paper::RelatedRow::render(&rows))
        }
        "ablate-hashes" => {
            let rows = paper::ablate_subset_hashes(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-select" => {
            let rows = paper::ablate_dynamic_select(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-returns" => {
            let rows = paper::ablate_returns(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-candidates" => {
            let rows = paper::ablate_candidates(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-interference" => {
            let rows = paper::ablate_interference(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-stack" => {
            let rows = paper::ablate_history_stack(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        other => return Err(format!("unknown experiment `{other}`")),
    })
}
