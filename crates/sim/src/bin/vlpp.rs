//! `vlpp` — run any of the paper's experiments from the command line.
//!
//! ```text
//! vlpp <experiment> [--scale N] [--json] [--metrics]
//!
//! experiments:
//!   table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 headline hfnt
//!   ablate-hashes ablate-select ablate-returns ablate-candidates
//!   ablate-interference ablate-stack
//!   all        (every table and figure, in order)
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use vlpp_pool::TaskError;
use vlpp_sim::paper;
use vlpp_sim::report::TextTable;
use vlpp_sim::{Checkpoint, SavedOutput, Scale, Workloads};
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::VlppError;

const USAGE: &str = "\
usage: vlpp <experiment> [--scale N] [--json] [--metrics] [--checkpoint DIR]

experiments:
  table1     Table 1: benchmark summary
  table2     Table 2: best fixed path length per table size
  table3     Table 3: indirect misprediction, 8 benchmarks, 2KB
  fig5       Figure 5: conditional @16KB, SPEC
  fig6       Figure 6: conditional @16KB, non-SPEC
  fig7       Figure 7: indirect @2KB, SPEC
  fig8       Figure 8: indirect @2KB, non-SPEC
  fig9       Figure 9: gcc conditional sweep (1KB-256KB)
  fig10      Figure 10: gcc indirect sweep (0.5KB-32KB)
  headline   the abstract's gcc numbers (4KB cond, 512B ind)
  hfnt       section 4.3 HFNT re-prediction cost
  analyze    section 5.3 analysis: miss rates by behavior class (gcc)
  lengths    profiled path-length histogram (gcc)
  ras        return address stack accuracy (all benchmarks)
  frontend   fetch cycles/branch for four front-end configurations
  related-cond | related-ind   every related-work predictor on gcc
  ablate-hashes | ablate-select | ablate-returns | ablate-candidates |
  ablate-interference | ablate-stack
  all        every table and figure, in order

subcommands (own flags; see SERVING.md and TRACES.md):
  serve      prediction daemon over the framed JSON protocol
  cluster    N serve processes behind a shard routing table (failover)
  loadgen    drive a running `vlpp serve` or cluster and verify its
             predictions (byte-exact oracle, optional kill drill)
  microbench predictions/sec: boxed dispatch vs the SoA kernel
             (BENCH lines; see DESIGN.md \"hot-loop kernel\")
  ingest     convert a ChampSim/CSV/JSONL trace to the chunked compact
             format for bounded-memory replay (see TRACES.md)
  run        replay an ingested or foreign trace (or a benchmark)
             through the SoA kernels and report prediction totals
  profile    run the paper's two-step profiling heuristic over a trace
  tournament race every registered predictor (the vlpp-predict zoo plus
             the paper's path predictors) over every benchmark and the
             hard-branch family; league table + `TOURNEY {json}` line
             (own flags; `vlpp tournament --help`, EXPERIMENTS.md)

options:
  --scale N  divide the paper's dynamic branch counts by N (default 16;
             also via VLPP_SCALE)
  --only LIST
             (with `all`) run only these comma-separated experiment ids;
             unknown ids are an error listing the valid ones
  --json     emit JSON instead of text tables; `all --json` emits one
             object keyed by experiment id
  --metrics  after the experiment, print a metrics table on stderr and a
             single `METRICS {json}` line on stdout (see OBSERVABILITY.md;
             excluded from the determinism guarantee)
  --checkpoint DIR
             (with `all`) persist each finished experiment to DIR and, on
             rerun, resume from what is already there; output is
             byte-identical to an uninterrupted run (see ROBUSTNESS.md)

`all` isolates experiments: one failing experiment is reported on stderr
(and under an \"errors\" key with --json), the rest still run, and the
exit code is 2 instead of aborting the whole run.

environment:
  VLPP_SCALE    default for --scale (invalid values warn and fall back)
  VLPP_THREADS  worker-pool size (default: available parallelism; output
                is byte-identical at any thread count)
  VLPP_TASK_TIMEOUT_MS  per-experiment watchdog deadline for `all`
                        (default: none)
  VLPP_RETRY / VLPP_RETRY_BACKOFF_MS
                retry a failed experiment once after the backoff
                (defaults: on / 50 ms)
  VLPP_FAULT    test-only fault injection: comma-separated task faults
                (panic@N[:persist], stall@N:MS[:persist]) and network
                frame faults (netdrop@N, netstall@N:MS,
                nettrunc@N:BYTES), e.g. panic@3 or netdrop@1,netstall@3:50
                (see ROBUSTNESS.md)
";

fn main() -> ExitCode {
    // The two daemon-shaped subcommands branch before experiment
    // parsing: they have their own flag grammars (see SERVING.md).
    if let Some(first) = std::env::args().nth(1) {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        let outcome = match first.as_str() {
            "serve" => Some(vlpp_sim::serve::serve_main(&rest)),
            "cluster" => Some(vlpp_sim::serve::cluster::cluster_main(&rest)),
            "loadgen" => Some(vlpp_sim::serve::loadgen::loadgen_main(&rest)),
            "microbench" => Some(vlpp_sim::microbench::microbench_main(&rest)),
            "ingest" => Some(vlpp_sim::ingest::ingest_main(&rest)),
            "run" => Some(vlpp_sim::ingest::run_main(&rest)),
            "profile" => Some(vlpp_sim::ingest::profile_main(&rest)),
            "tournament" => Some(vlpp_sim::tournament::tournament_main(&rest)),
            _ => None,
        };
        if let Some(outcome) = outcome {
            return match outcome {
                Ok(()) => ExitCode::SUCCESS,
                Err(error) => {
                    eprintln!("error ({}): {error}", error.phase());
                    ExitCode::FAILURE
                }
            };
        }
    }

    let mut args = std::env::args().skip(1);
    let mut experiment: Option<String> = None;
    let mut scale = Scale::from_env();
    let mut json = false;
    let mut metrics = false;
    let mut checkpoint_dir: Option<String> = None;
    let mut only: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => {
                let Some(list) = args.next() else {
                    eprintln!("--only needs a comma-separated experiment list");
                    return ExitCode::FAILURE;
                };
                only = Some(list);
            }
            "--checkpoint" => {
                let Some(dir) = args.next() else {
                    eprintln!("--checkpoint needs a directory");
                    return ExitCode::FAILURE;
                };
                checkpoint_dir = Some(dir);
            }
            "--scale" => {
                let value = match args.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) if v >= 1 => v,
                    _ => {
                        eprintln!("--scale needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
                scale = Scale::new(value);
            }
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(experiment) = experiment else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let workloads = Arc::new(Workloads::new(scale));
    eprintln!("# scale: 1/{} of paper dynamic counts", scale.divisor());

    let all = experiment == "all";
    let all_ids = [
        "table1", "table2", "fig5", "fig6", "fig7", "fig8", "table3", "fig9", "fig10", "headline",
        "hfnt",
    ];
    let ids: Vec<&str> = if all { all_ids.to_vec() } else { vec![experiment.as_str()] };

    // `--only` narrows `all` to a subset; an unknown id must be a typed
    // error listing the valid ones, never a silently empty run.
    let ids: Vec<&str> = match &only {
        Some(list) if all => {
            let requested: Vec<&str> =
                list.split(',').map(str::trim).filter(|t| !t.is_empty()).collect();
            let unknown: Vec<&str> =
                requested.iter().copied().filter(|id| !all_ids.contains(id)).collect();
            if requested.is_empty() || !unknown.is_empty() {
                let message = if requested.is_empty() {
                    format!(
                        "--only needs at least one experiment id; valid ids: {}",
                        all_ids.join(", ")
                    )
                } else {
                    format!(
                        "unknown experiment id{} `{}` in --only; valid ids: {}",
                        if unknown.len() == 1 { "" } else { "s" },
                        unknown.join("`, `"),
                        all_ids.join(", ")
                    )
                };
                let error = VlppError::Cli { message };
                eprintln!("error ({}): {error}", error.phase());
                return ExitCode::FAILURE;
            }
            // Keep canonical order regardless of how --only was spelled.
            ids.into_iter().filter(|id| requested.contains(id)).collect()
        }
        Some(_) => {
            eprintln!("warning: --only only applies to `all`; ignoring");
            ids
        }
        None => ids,
    };

    let checkpoint = match &checkpoint_dir {
        Some(dir) if all => match Checkpoint::open(dir, scale.divisor()) {
            Ok(checkpoint) => Some(Arc::new(checkpoint)),
            Err(error) => {
                eprintln!("error: {error}");
                return ExitCode::FAILURE;
            }
        },
        Some(_) => {
            eprintln!("warning: --checkpoint only applies to `all`; ignoring");
            None
        }
        None => None,
    };

    if !all {
        // A single experiment keeps the strict contract: any failure is
        // fatal, unknown names print usage.
        let outputs = {
            let _span = vlpp_metrics::span("sim.experiment_ns");
            vlpp_pool::Pool::global().map(ids.clone(), |id| run_one(id, &workloads))
        };
        for (id, output) in ids.iter().zip(outputs) {
            match output {
                Ok(Output { json: tree, text }) => {
                    if json {
                        println!("{}", tree.pretty());
                    } else {
                        println!("== {id} ==");
                        println!("{text}");
                    }
                }
                Err(message) => {
                    eprintln!("{message}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        print_metrics(metrics);
        return ExitCode::SUCCESS;
    }

    // `all`: experiments are independent, so one failure must not take
    // down the others. Completed results are loaded from the checkpoint
    // (if any); the rest run isolated on the shared pool — a panicking
    // or overdue experiment becomes a typed error in its slot. Results
    // fill slots by input index, so output stays deterministic at any
    // thread count.
    let mut slots: Vec<Option<Result<Output, VlppError>>> = ids.iter().map(|_| None).collect();
    if let Some(checkpoint) = &checkpoint {
        for (i, id) in ids.iter().enumerate() {
            match checkpoint.load(id) {
                Ok(Some(saved)) => {
                    eprintln!("# checkpoint: `{id}` already done, skipping");
                    slots[i] = Some(Ok(Output { json: saved.json, text: saved.text }));
                }
                Ok(None) => {}
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let pending: Vec<(usize, String)> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(i, _)| (i, ids[i].to_string()))
        .collect();
    let results = {
        let _span = vlpp_metrics::span("sim.experiment_ns");
        let workloads = Arc::clone(&workloads);
        let checkpoint = checkpoint.clone();
        vlpp_pool::Pool::global().try_map(pending.clone(), move |(_, id): (usize, String)| {
            let output = run_one(&id, &workloads);
            // Persist as soon as the experiment finishes, not at the end
            // of the run — that is what makes a mid-run kill resumable.
            if let (Ok(output), Some(checkpoint)) = (&output, &checkpoint) {
                let saved = SavedOutput { json: output.json.clone(), text: output.text.clone() };
                if let Err(error) = checkpoint.store(&id, &saved) {
                    eprintln!("warning: could not checkpoint `{id}`: {error}");
                }
            }
            output
        })
    };
    for ((i, id), result) in pending.into_iter().zip(results) {
        slots[i] = Some(match result {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(message)) => Err(VlppError::Cli { message }),
            Err(TaskError::Panicked { payload, worker }) => {
                Err(VlppError::WorkerPanic { what: id, payload, worker })
            }
            Err(TaskError::TimedOut { elapsed_ms, limit_ms }) => {
                Err(VlppError::Timeout { what: id, elapsed_ms, limit_ms })
            }
        });
    }

    let mut object = Vec::new();
    let mut errors: Vec<(String, JsonValue)> = Vec::new();
    for (id, slot) in ids.iter().zip(slots) {
        match slot.expect("every experiment resolved") {
            Ok(Output { json: tree, text }) => {
                if json {
                    object.push((id.to_string(), tree));
                } else {
                    println!("== {id} ==");
                    println!("{text}");
                }
            }
            Err(error) => {
                vlpp_metrics::counter("sim.experiments_skipped").incr();
                eprintln!("error: experiment `{id}` failed ({}): {error}; skipping", error.phase());
                errors.push((id.to_string(), error.to_json()));
            }
        }
    }
    if json {
        // One JSON object keyed by experiment id — parseable as a whole,
        // unlike the old headers-interleaved-with-objects stream. The
        // "errors" key appears only when something failed, so a clean
        // run's output is unchanged.
        if !errors.is_empty() {
            object.push(("errors".to_string(), JsonValue::Object(errors.clone())));
        }
        println!("{}", JsonValue::Object(object).pretty());
    }
    print_metrics(metrics);
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Partial failure: results above are valid, but not all of them
        // arrived. Distinct from 1 (bad invocation / fatal error).
        ExitCode::from(2)
    }
}

fn print_metrics(enabled: bool) {
    if !enabled {
        return;
    }
    // Metrics are observational, not part of the experiment output:
    // the table goes to stderr, and the machine-readable snapshot is
    // one self-delimiting stdout line consumers strip before diffing.
    let registry = vlpp_metrics::Registry::global();
    eprint!("{}", registry.render_table());
    println!("METRICS {}", registry.snapshot());
}

/// One experiment's result, rendered both ways; the caller picks.
struct Output {
    json: vlpp_trace::json::JsonValue,
    text: String,
}

fn run_one(id: &str, workloads: &Workloads) -> Result<Output, String> {
    fn emit<T: vlpp_trace::json::ToJson>(data: &T, table: TextTable) -> Output {
        Output { json: data.to_json(), text: table.render() }
    }

    Ok(match id {
        "table1" => {
            let rows = paper::table1(workloads);
            emit(&rows, paper::Table1Row::render(&rows))
        }
        "table2" => {
            let data = paper::table2(workloads);
            emit(&data, data.render())
        }
        "table3" => {
            let rows = paper::table3(workloads);
            emit(&rows, paper::render_table3(&rows))
        }
        "fig5" => {
            let rows = paper::figure5(workloads);
            let mut output = emit(&rows, paper::CondRow::render(&rows));
            output.text.push_str(&format!(
                "mean VLP reduction vs gshare: {:.1}%\n",
                100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
            ));
            output
        }
        "fig6" => {
            let rows = paper::figure6(workloads);
            let mut output = emit(&rows, paper::CondRow::render(&rows));
            output.text.push_str(&format!(
                "mean VLP reduction vs gshare: {:.1}%\n",
                100.0 * paper::CondRow::mean_reduction_vs_gshare(&rows)
            ));
            output
        }
        "fig7" => {
            let rows = paper::figure7(workloads);
            emit(&rows, paper::IndRow::render(&rows))
        }
        "fig8" => {
            let rows = paper::figure8(workloads);
            emit(&rows, paper::IndRow::render(&rows))
        }
        "fig9" => {
            let points = paper::figure9(workloads);
            let mut output = emit(&points, paper::GccCondPoint::render(&points));
            let mut chart = vlpp_sim::report::AsciiChart::new(
                points
                    .iter()
                    .map(|p| vlpp_predict::Budget::from_bytes(p.bytes).to_string())
                    .collect(),
            );
            chart.series('g', "gshare", points.iter().map(|p| p.gshare).collect());
            chart.series('f', "fixed length path", points.iter().map(|p| p.fixed).collect());
            chart.series('t', "fixed (tuned)", points.iter().map(|p| p.fixed_tuned).collect());
            chart.series('v', "variable length path", points.iter().map(|p| p.variable).collect());
            output.text.push('\n');
            output.text.push_str(&chart.render(14));
            output
        }
        "fig10" => {
            let points = paper::figure10(workloads);
            let mut output = emit(&points, paper::GccIndPoint::render(&points));
            let mut chart = vlpp_sim::report::AsciiChart::new(
                points
                    .iter()
                    .map(|p| vlpp_predict::Budget::from_bytes(p.bytes).to_string())
                    .collect(),
            );
            chart.series('p', "path (CHP)", points.iter().map(|p| p.path).collect());
            chart.series('n', "pattern (CHP)", points.iter().map(|p| p.pattern).collect());
            chart.series('f', "fixed length path", points.iter().map(|p| p.fixed).collect());
            chart.series('v', "variable length path", points.iter().map(|p| p.variable).collect());
            output.text.push('\n');
            output.text.push_str(&chart.render(14));
            output
        }
        "headline" => {
            let data = paper::headline(workloads);
            emit(&data, data.render())
        }
        "hfnt" => {
            let rows = paper::hfnt_experiment(workloads);
            emit(&rows, paper::HfntRow::render(&rows))
        }
        "analyze" => {
            let rows = paper::analyze_gcc(workloads);
            emit(&rows, paper::AnalysisRow::render(&rows))
        }
        "lengths" => {
            let data = paper::length_histogram(workloads, "gcc");
            emit(&data, data.render())
        }
        "ras" => {
            let rows = paper::ras_experiment(workloads);
            emit(&rows, paper::RasRow::render(&rows))
        }
        "frontend" => {
            let rows = paper::frontend_experiment(workloads);
            emit(&rows, paper::FrontendRow::render(&rows))
        }
        "related-cond" => {
            let rows = paper::related_conditional(workloads);
            emit(&rows, paper::RelatedRow::render(&rows))
        }
        "related-ind" => {
            let rows = paper::related_indirect(workloads);
            emit(&rows, paper::RelatedRow::render(&rows))
        }
        "ablate-hashes" => {
            let rows = paper::ablate_subset_hashes(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-select" => {
            let rows = paper::ablate_dynamic_select(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-returns" => {
            let rows = paper::ablate_returns(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-candidates" => {
            let rows = paper::ablate_candidates(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-interference" => {
            let rows = paper::ablate_interference(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        "ablate-stack" => {
            let rows = paper::ablate_history_stack(workloads);
            emit(&rows, paper::AblationRow::render(&rows))
        }
        other => return Err(format!("unknown experiment `{other}`")),
    })
}
