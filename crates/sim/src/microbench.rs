//! `vlpp microbench` — predictions-per-second microbenchmarks of the
//! hot loop, comparing the boxed per-record dispatch path against the
//! structure-of-arrays kernel on identical traces and configurations.
//!
//! Four benches run, each printed as one `BENCH {json}` line (the same
//! stream `scripts/bench_record.sh` collects and `vlpp-metrics-check
//! --bench` gates against `BENCH_baseline.json`):
//!
//! * `kernel/cond_boxed` / `kernel/cond_soa` — the conditional path
//!   predictor through `run_conditional` over a
//!   `Box<dyn ConditionalPredictor>` vs through the fused
//!   [`CondKernel`](vlpp_core::CondKernel) loop;
//! * `kernel/ind_boxed` / `kernel/ind_soa` — the indirect analogue.
//!
//! The SoA lines carry two extra fields the plain harness lines don't:
//! `records_per_sec` (derived from the median iteration) and
//! `speedup_vs_boxed` (boxed median over SoA median) — the floor-gated
//! throughput contract. The differential suite guarantees both sides
//! compute the same thing, so the comparison is cost, not quality.

use vlpp_check::{BenchConfig, BenchReport};
use vlpp_core::{HashAssignment, PathConditional, PathConfig, PathIndirect};
use vlpp_predict::{ConditionalPredictor, IndirectPredictor};
use vlpp_trace::json::{JsonValue, ToJson};
use vlpp_trace::{Addr, BranchRecord, Trace, VlppError};

use crate::runner::{run_conditional, run_indirect, run_path_conditional, run_path_indirect};

const USAGE: &str = "\
usage: vlpp microbench [--records N]

options:
  --records N  dynamic branches per benchmark iteration (default 200000)

environment:
  VLPP_BENCH_WARMUP / VLPP_BENCH_ITERS  harness iteration counts
";

/// Number of distinct static conditional branches in the synthetic
/// workload — enough to exceed the reference's hash-map fast paths and
/// exercise the kernel's pc cache realistically.
const STATIC_BRANCHES: u64 = 500;

/// Index widths: the paper's 16 KB conditional / 2 KB indirect budgets.
const COND_INDEX_BITS: u32 = 14;
const IND_INDEX_BITS: u32 = 9;

/// A deterministic kind-pure trace: every record a conditional (or
/// indirect) over [`STATIC_BRANCHES`] pcs with pseudo-random outcomes
/// and targets. Kind-pure on purpose — mixing kinds would measure the
/// data-dependent `is_conditional` branch misprediction in *both*
/// loops, not the per-prediction cost this bench gates (the mixed-kind
/// protocol is covered by the differential suite instead).
fn synthetic_trace(records: usize, indirect: bool, seed: u64) -> Trace {
    let mut x = seed | 1;
    let mut trace = Trace::new();
    for _ in 0..records {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pc = Addr::new(0x1_0000 | ((x >> 40) % STATIC_BRANCHES) << 2);
        let target = Addr::new(0x8_0000 | ((x >> 20) & 0x3ff) << 2);
        let record = if indirect {
            BranchRecord::indirect(pc, target)
        } else {
            BranchRecord::conditional(pc, target, (x >> 5) & 1 == 1)
        };
        trace.push(record);
    }
    trace
}

/// The variable-length assignment both sides run: a fixed default plus
/// an explicit spread of every hash length 1..=32 over the static
/// branches, matching the shape a profiled assignment produces.
fn spread_assignment() -> HashAssignment {
    let mut assignment = HashAssignment::fixed(12);
    for i in 0..STATIC_BRANCHES {
        assignment.assign(Addr::new(0x1_0000 | i << 2), (i % 32 + 1) as u8);
    }
    assignment
}

/// Prints `report`'s `BENCH` line with the throughput fields appended:
/// `records_per_sec` always, `speedup_vs_boxed` when a boxed median is
/// given.
fn print_with_throughput(report: &BenchReport, records: usize, boxed_median_ns: Option<u64>) {
    let mut json = report.to_json();
    if let JsonValue::Object(fields) = &mut json {
        let per_sec = if report.median_ns == 0 {
            0
        } else {
            (records as f64 * 1e9 / report.median_ns as f64) as u64
        };
        fields.push(("records_per_sec".to_string(), JsonValue::UInt(per_sec)));
        if let Some(boxed) = boxed_median_ns {
            let speedup =
                if report.median_ns == 0 { 0.0 } else { boxed as f64 / report.median_ns as f64 };
            fields.push(("speedup_vs_boxed".to_string(), JsonValue::Float(speedup)));
        }
    }
    println!("BENCH {}", json.to_json_string());
}

/// Times `f` without printing (the augmented line is printed by the
/// caller), using the same robust-median protocol as
/// [`vlpp_check::bench`].
fn time_silently<T>(name: &str, config: BenchConfig, mut f: impl FnMut() -> T) -> BenchReport {
    use std::hint::black_box;
    use std::time::Instant;
    for _ in 0..config.warmup {
        black_box(f());
    }
    let iters = config.iters.max(1);
    let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2
    };
    let mut deviations: Vec<u64> = samples.iter().map(|&s| s.abs_diff(median)).collect();
    deviations.sort_unstable();
    BenchReport {
        name: name.to_string(),
        iters,
        median_ns: median,
        mad_ns: deviations[deviations.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

/// Entry point for `vlpp microbench`.
///
/// # Errors
///
/// [`VlppError::Protocol`] on a malformed flag.
pub fn microbench_main(args: &[String]) -> Result<(), VlppError> {
    let mut records = 200_000usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--records" => {
                records = iter.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).ok_or_else(
                    || {
                        VlppError::protocol(
                            Some("microbench".to_string()),
                            "--records needs a positive integer",
                        )
                    },
                )?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => {
                return Err(VlppError::protocol(
                    Some("microbench".to_string()),
                    format!("unexpected argument `{other}`\n{USAGE}"),
                ));
            }
        }
    }
    run(records);
    Ok(())
}

/// Runs all four benches and prints their `BENCH` lines.
pub fn run(records: usize) {
    let config = BenchConfig::from_env();
    let assignment = spread_assignment();

    let cond_trace = synthetic_trace(records, false, 7);
    let cond_config = PathConfig::new(COND_INDEX_BITS);
    let boxed_cond = time_silently("kernel/cond_boxed", config, || {
        let mut predictor: Box<dyn ConditionalPredictor> =
            Box::new(PathConditional::new(cond_config.clone(), assignment.clone()));
        run_conditional(&mut predictor, &cond_trace)
    });
    print_with_throughput(&boxed_cond, records, None);
    let soa_cond = time_silently("kernel/cond_soa", config, || {
        run_path_conditional(&cond_config, &assignment, &cond_trace)
    });
    print_with_throughput(&soa_cond, records, Some(boxed_cond.median_ns));

    let ind_trace = synthetic_trace(records, true, 21);
    let ind_config = PathConfig::new(IND_INDEX_BITS);
    let boxed_ind = time_silently("kernel/ind_boxed", config, || {
        let mut predictor: Box<dyn IndirectPredictor> =
            Box::new(PathIndirect::new(ind_config.clone(), assignment.clone()));
        run_indirect(&mut predictor, &ind_trace)
    });
    print_with_throughput(&boxed_ind, records, None);
    let soa_ind = time_silently("kernel/ind_soa", config, || {
        run_path_indirect(&ind_config, &assignment, &ind_trace)
    });
    print_with_throughput(&soa_ind, records, Some(boxed_ind.median_ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_and_soa_agree_on_the_bench_workload() {
        // The microbench compares cost of *the same computation*; pin
        // that premise here on a scaled-down workload.
        let records = 4000;
        let assignment = spread_assignment();
        let cond_trace = synthetic_trace(records, false, 7);
        let cond_config = PathConfig::new(COND_INDEX_BITS);
        let mut boxed: Box<dyn ConditionalPredictor> =
            Box::new(PathConditional::new(cond_config.clone(), assignment.clone()));
        let expected = run_conditional(&mut boxed, &cond_trace);
        let got = run_path_conditional(&cond_config, &assignment, &cond_trace);
        assert_eq!(got, expected);

        let ind_trace = synthetic_trace(records, true, 21);
        let ind_config = PathConfig::new(IND_INDEX_BITS);
        let mut boxed: Box<dyn IndirectPredictor> =
            Box::new(PathIndirect::new(ind_config.clone(), assignment.clone()));
        let expected = run_indirect(&mut boxed, &ind_trace);
        let got = run_path_indirect(&ind_config, &assignment, &ind_trace);
        assert_eq!(got, expected);
    }

    #[test]
    fn augmented_line_carries_throughput_fields() {
        let report = BenchReport {
            name: "kernel/cond_soa".to_string(),
            iters: 3,
            median_ns: 2_000_000,
            mad_ns: 0,
            min_ns: 1_900_000,
            max_ns: 2_100_000,
        };
        let mut json = report.to_json();
        if let JsonValue::Object(fields) = &mut json {
            fields.push(("records_per_sec".to_string(), JsonValue::UInt(100_000_000)));
            fields.push(("speedup_vs_boxed".to_string(), JsonValue::Float(12.5)));
        }
        let text = json.to_json_string();
        assert!(text.contains("\"records_per_sec\":100000000"), "{text}");
        assert!(text.contains("\"speedup_vs_boxed\":12.5"), "{text}");
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_kind_pure() {
        let a = synthetic_trace(2000, false, 7);
        let b = synthetic_trace(2000, false, 7);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        assert!(a.iter().all(|r| r.is_conditional()));
        let taken = a.iter().filter(|r| r.taken()).count();
        assert!(taken > 500 && taken < 1500, "outcomes vary, got {taken} taken");
        assert!(synthetic_trace(100, true, 3).iter().all(|r| r.is_indirect()));
    }
}
