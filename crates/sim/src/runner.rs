//! The trace-driven simulation loop and its statistics.
//!
//! Two loops coexist here. [`run_conditional`] / [`run_indirect`] drive
//! *any* predictor through the standard predict → train → observe
//! protocol via the traits — the general path every baseline uses.
//! [`run_path_conditional`] / [`run_path_indirect`] are the throughput
//! path for the paper's own predictor: they instantiate the
//! structure-of-arrays kernels from `vlpp-core` and run the fused
//! per-record step, which the differential suite pins bit-for-bit to
//! the boxed reference. Both emit the same [`RunStats`]; the kernel
//! loops additionally publish `sim.predict_ns` and
//! `sim.records_per_sec` metrics.

use std::collections::HashMap;
use std::time::Instant;

use vlpp_core::{CondKernel, HashAssignment, IndKernel, PathConfig};
use vlpp_predict::{ConditionalPredictor, IndirectPredictor};
use vlpp_trace::{Addr, Trace};

/// Per-run prediction statistics.
///
/// # Example
///
/// ```
/// use vlpp_sim::RunStats;
///
/// let mut stats = RunStats::default();
/// stats.record(vlpp_trace::Addr::new(0x10), true);
/// stats.record(vlpp_trace::Addr::new(0x10), false);
/// assert_eq!(stats.predictions, 2);
/// assert_eq!(stats.mispredictions, 1);
/// assert!((stats.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Dynamic branches predicted.
    pub predictions: u64,
    /// Dynamic branches predicted incorrectly.
    pub mispredictions: u64,
    /// Per-static-branch `(predictions, mispredictions)` — omitted from
    /// the JSON form, which keeps only the totals.
    pub per_branch: HashMap<u64, (u64, u64)>,
}

impl vlpp_trace::json::ToJson for RunStats {
    fn to_json(&self) -> vlpp_trace::json::JsonValue {
        vlpp_trace::json::JsonValue::Object(vec![
            ("predictions".to_string(), vlpp_trace::json::ToJson::to_json(&self.predictions)),
            ("mispredictions".to_string(), vlpp_trace::json::ToJson::to_json(&self.mispredictions)),
        ])
    }
}

impl RunStats {
    /// Records one prediction outcome for the branch at `pc`.
    pub fn record(&mut self, pc: Addr, correct: bool) {
        self.predictions += 1;
        let entry = self.per_branch.entry(pc.raw()).or_insert((0, 0));
        entry.0 += 1;
        if !correct {
            self.mispredictions += 1;
            entry.1 += 1;
        }
    }

    /// The misprediction rate in [0, 1] (0 if nothing was predicted).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// The misprediction rate as a percentage.
    pub fn miss_percent(&self) -> f64 {
        100.0 * self.miss_rate()
    }

    /// Number of distinct static branches predicted.
    pub fn static_branches(&self) -> usize {
        self.per_branch.len()
    }
}

/// Runs a conditional-branch predictor over a trace using the standard
/// protocol: predict → train on each conditional branch, observe on
/// every record.
pub fn run_conditional<P: ConditionalPredictor>(predictor: &mut P, trace: &Trace) -> RunStats {
    let _span = vlpp_metrics::span("sim.simulate_ns");
    let mut stats = RunStats::default();
    for record in trace.iter() {
        if record.is_conditional() {
            let prediction = predictor.predict(record.pc());
            stats.record(record.pc(), prediction == record.taken());
            predictor.train(record.pc(), record.taken());
        }
        predictor.observe(record);
    }
    stats
}

/// Runs an indirect-branch predictor over a trace. Returns are excluded,
/// as in the paper.
pub fn run_indirect<P: IndirectPredictor>(predictor: &mut P, trace: &Trace) -> RunStats {
    let _span = vlpp_metrics::span("sim.simulate_ns");
    let mut stats = RunStats::default();
    for record in trace.iter() {
        if record.is_indirect() {
            let prediction = predictor.predict(record.pc());
            stats.record(record.pc(), prediction == record.target());
            predictor.train(record.pc(), record.target());
        }
        predictor.observe(record);
    }
    stats
}

/// Publishes the kernel loops' throughput metrics: the records-per-
/// second gauge derived from the wall-clock the `sim.predict_ns` span
/// also measured.
fn record_throughput(records: usize, started: Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        vlpp_metrics::gauge("sim.records_per_sec").record((records as f64 / elapsed) as u64);
    }
}

/// Materializes a kernel's internal statistics as the standard
/// [`RunStats`].
fn kernel_stats(
    predictions: u64,
    mispredictions: u64,
    rows: impl Iterator<Item = (u64, u64, u64)>,
) -> RunStats {
    RunStats {
        predictions,
        mispredictions,
        per_branch: rows.map(|(pc, p, m)| (pc, (p, m))).collect(),
    }
}

/// Runs the paper's conditional path predictor over a trace through the
/// structure-of-arrays kernel — the same protocol (and bit-identical
/// results) as [`run_conditional`] over a boxed
/// [`PathConditional`](vlpp_core::PathConditional), at a fraction of
/// the per-record cost.
pub fn run_path_conditional(
    config: &PathConfig,
    assignment: &HashAssignment,
    trace: &Trace,
) -> RunStats {
    let _span = vlpp_metrics::span("sim.predict_ns");
    let started = Instant::now();
    let mut kernel = CondKernel::new(config, assignment);
    for record in trace.iter() {
        kernel.apply(record);
    }
    record_throughput(trace.len(), started);
    kernel_stats(kernel.predictions(), kernel.mispredictions(), kernel.branch_stats())
}

/// Runs the paper's indirect path predictor over a trace through the
/// structure-of-arrays kernel — the same protocol (and bit-identical
/// results) as [`run_indirect`] over a boxed
/// [`PathIndirect`](vlpp_core::PathIndirect). Returns are excluded, as
/// in the paper.
pub fn run_path_indirect(
    config: &PathConfig,
    assignment: &HashAssignment,
    trace: &Trace,
) -> RunStats {
    let _span = vlpp_metrics::span("sim.predict_ns");
    let started = Instant::now();
    let mut kernel = IndKernel::new(config, assignment);
    for record in trace.iter() {
        kernel.apply(record);
    }
    record_throughput(trace.len(), started);
    kernel_stats(kernel.predictions(), kernel.mispredictions(), kernel.branch_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlpp_predict::{Bimodal, LastTargetBtb};
    use vlpp_trace::BranchRecord;

    fn biased_trace(n: usize) -> Trace {
        (0..n)
            .map(|i| BranchRecord::conditional(Addr::new(0x40), Addr::new(0x80), i % 10 != 0))
            .collect()
    }

    #[test]
    fn conditional_runner_counts_only_conditionals() {
        let mut trace = biased_trace(100);
        trace.push(BranchRecord::indirect(Addr::new(0x99), Addr::new(0x100)));
        let mut p = Bimodal::new(8);
        let stats = run_conditional(&mut p, &trace);
        assert_eq!(stats.predictions, 100);
        assert_eq!(stats.static_branches(), 1);
    }

    #[test]
    fn bimodal_learns_biased_trace() {
        let mut p = Bimodal::new(8);
        let stats = run_conditional(&mut p, &biased_trace(1000));
        // 10% of executions are the rare direction; a warmed 2-bit
        // counter mispredicts roughly those plus counter swings.
        assert!(stats.miss_rate() < 0.25, "rate {}", stats.miss_rate());
        assert!(stats.miss_rate() > 0.05);
    }

    #[test]
    fn indirect_runner_counts_only_indirects() {
        let mut trace = Trace::new();
        for _ in 0..10 {
            trace.push(BranchRecord::indirect(Addr::new(0x40), Addr::new(0x100)));
            trace.push(BranchRecord::ret(Addr::new(0x50), Addr::new(0x200)));
        }
        let mut p = LastTargetBtb::new(6);
        let stats = run_indirect(&mut p, &trace);
        assert_eq!(stats.predictions, 10, "returns must not be predicted");
        assert_eq!(stats.mispredictions, 1, "only the cold first prediction misses");
    }

    #[test]
    fn per_branch_counts_sum_to_totals() {
        let mut trace = biased_trace(50);
        for i in 0..30 {
            trace.push(BranchRecord::conditional(Addr::new(0x400), Addr::new(0x500), i % 2 == 0));
        }
        let mut p = Bimodal::new(8);
        let stats = run_conditional(&mut p, &trace);
        let dyn_sum: u64 = stats.per_branch.values().map(|v| v.0).sum();
        let miss_sum: u64 = stats.per_branch.values().map(|v| v.1).sum();
        assert_eq!(dyn_sum, stats.predictions);
        assert_eq!(miss_sum, stats.mispredictions);
    }

    #[test]
    fn empty_trace_yields_zero_rate() {
        let mut p = Bimodal::new(4);
        let stats = run_conditional(&mut p, &Trace::new());
        assert_eq!(stats.miss_rate(), 0.0);
        assert_eq!(stats.predictions, 0);
    }

    /// A deterministic mixed-kind trace exercising calls, returns,
    /// indirects, and several conditional pcs.
    fn mixed_trace(n: usize, seed: u64) -> Trace {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pc = Addr::new(0x40 + ((x >> 40) & 0x1f) * 4);
                let target = Addr::new(((x >> 20) & 0xff) << 2);
                match (x >> 10) % 6 {
                    0 => BranchRecord::indirect(pc, target),
                    1 => BranchRecord::call(pc, target),
                    2 => BranchRecord::ret(pc, target),
                    _ => BranchRecord::conditional(pc, target, (x >> 5) & 1 == 1),
                }
            })
            .collect()
    }

    #[test]
    fn kernel_conditional_runner_matches_boxed_reference_exactly() {
        use vlpp_core::PathConditional;
        let trace = mixed_trace(5000, 99);
        let config = PathConfig::new(10);
        let mut assignment = HashAssignment::fixed(7);
        assignment.assign(Addr::new(0x44), 2);
        assignment.assign(Addr::new(0x48), 19);
        let mut boxed = PathConditional::new(config.clone(), assignment.clone());
        let expected = run_conditional(&mut boxed, &trace);
        let got = run_path_conditional(&config, &assignment, &trace);
        assert_eq!(got, expected, "totals and per-branch stats must be bit-identical");
    }

    #[test]
    fn kernel_indirect_runner_matches_boxed_reference_exactly() {
        use vlpp_core::PathIndirect;
        let trace = mixed_trace(5000, 123);
        let config = PathConfig::new(9);
        let mut assignment = HashAssignment::fixed(4);
        assignment.assign(Addr::new(0x50), 11);
        let mut boxed = PathIndirect::new(config.clone(), assignment.clone());
        let expected = run_indirect(&mut boxed, &trace);
        let got = run_path_indirect(&config, &assignment, &trace);
        assert_eq!(got, expected, "totals and per-branch stats must be bit-identical");
    }
}
