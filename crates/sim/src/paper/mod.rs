//! The paper's evaluation (§5), one function per table and figure, plus
//! the ablations DESIGN.md calls out.
//!
//! Every function takes a [`Workloads`] context so expensive artifacts
//! (profile reports, Table-2 fixed lengths) are shared across
//! experiments run in the same process. Each returns plain data plus a
//! [`TextTable`] rendering; the CLI (`vlpp`) and the Criterion benches
//! both go through these functions, so the numbers in EXPERIMENTS.md,
//! the bench output, and ad-hoc CLI runs are always the same
//! computation.
//!
//! [`Workloads`]: crate::Workloads
//! [`TextTable`]: crate::report::TextTable

mod ablation;
mod analysis;
mod comparisons;
mod cycles;
mod gcc;
mod pipeline;
mod related;
mod tables;

#[cfg(test)]
mod tests;

pub use ablation::{
    ablate_candidates, ablate_dynamic_select, ablate_history_stack, ablate_interference,
    ablate_returns, ablate_subset_hashes, AblationRow,
};
pub use analysis::{
    analyze_gcc, length_histogram, ras_experiment, AnalysisRow, BehaviorClass, LengthHistogram,
    RasRow,
};
pub use comparisons::{
    conditional_comparison, figure5, figure6, figure7, figure8, indirect_comparison, CondRow,
    IndRow,
};
pub use cycles::{frontend_experiment, FrontendRow};
pub use gcc::{figure10, figure9, headline, GccCondPoint, GccIndPoint, Headline};
pub use pipeline::{hfnt_experiment, HfntRow};
pub use related::{related_conditional, related_indirect, RelatedRow};
pub use tables::{render_table3, table1, table2, table3, Table1Row, Table2Data};

/// Conditional predictor-table sizes of Figure 9 / Table 2, in bytes.
pub const COND_SIZES: [u64; 5] = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10];

/// Indirect predictor-table sizes of Figure 10 / Table 2, in bytes.
pub const IND_SIZES: [u64; 4] = [512, 2 << 10, 8 << 10, 32 << 10];

/// The predictor-table size used by Figures 5–6 (16 KB).
pub const FIG5_COND_BYTES: u64 = 16 << 10;

/// The predictor-table size used by Figures 7–8 and Table 3 (2 KB).
pub const FIG7_IND_BYTES: u64 = 2 << 10;

/// Bits-per-target used by the Chang–Hao–Patt path-based target cache
/// baseline (its register then covers `index_bits / 3` recent targets,
/// the shallow fixed depth that the paper's deep-path predictors beat).
pub const BASELINE_PATH_BITS_PER_TARGET: u32 = 3;
