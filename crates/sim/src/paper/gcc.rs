//! The gcc case study: Figures 9–10 (size sweeps) and the abstract's
//! headline numbers.

use vlpp_core::{HashAssignment, PathConfig};
use vlpp_predict::{Budget, Gshare, PathTargetCache, PatternTargetCache};
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::report::{percent, TextTable};
use crate::runner::{run_conditional, run_indirect, run_path_conditional, run_path_indirect};

use super::{BASELINE_PATH_BITS_PER_TARGET, COND_SIZES, IND_SIZES};

/// One size point of Figure 9 (gcc, conditional).
#[derive(Debug, Clone)]
pub struct GccCondPoint {
    /// Predictor-table size in bytes.
    pub bytes: u64,
    /// gshare misprediction rate.
    pub gshare: f64,
    /// Fixed length path (benchmark-averaged length).
    pub fixed: f64,
    /// Fixed length path tuned to gcc's own profile-best length.
    pub fixed_tuned: f64,
    /// Variable length path.
    pub variable: f64,
}

vlpp_trace::impl_to_json!(GccCondPoint { bytes, gshare, fixed, fixed_tuned, variable });

/// One size point of Figure 10 (gcc, indirect).
#[derive(Debug, Clone)]
pub struct GccIndPoint {
    /// Predictor-table size in bytes.
    pub bytes: u64,
    /// Chang–Hao–Patt path-based target cache.
    pub path: f64,
    /// Chang–Hao–Patt pattern-based target cache.
    pub pattern: f64,
    /// Fixed length path (benchmark-averaged length).
    pub fixed: f64,
    /// Fixed length path tuned to gcc's profile-best length.
    pub fixed_tuned: f64,
    /// Variable length path.
    pub variable: f64,
}

vlpp_trace::impl_to_json!(GccIndPoint { bytes, path, pattern, fixed, fixed_tuned, variable });

/// Figure 9: gcc conditional misprediction over 1 KB – 256 KB.
pub fn figure9(workloads: &Workloads) -> Vec<GccCondPoint> {
    let spec = suite::benchmark("gcc").expect("gcc is in the suite");
    let test = workloads.test_trace(&spec);
    COND_SIZES
        .iter()
        .map(|&bytes| {
            let index_bits = Budget::from_bytes(bytes).cond_index_bits();
            let config = PathConfig::new(index_bits);

            let mut gshare = Gshare::new(index_bits);
            let gshare_rate = run_conditional(&mut gshare, &test).miss_rate();

            let fixed_length = workloads.best_fixed_conditional_length(index_bits);
            let fixed_rate =
                run_path_conditional(&config, &HashAssignment::fixed(fixed_length), &test)
                    .miss_rate();

            let report = workloads.profile_conditional(&spec, index_bits);
            let tuned_length = report.best_fixed_hash();
            let tuned_rate =
                run_path_conditional(&config, &HashAssignment::fixed(tuned_length), &test)
                    .miss_rate();

            let variable_rate =
                run_path_conditional(&config, &report.assignment, &test).miss_rate();

            GccCondPoint {
                bytes,
                gshare: gshare_rate,
                fixed: fixed_rate,
                fixed_tuned: tuned_rate,
                variable: variable_rate,
            }
        })
        .collect()
}

/// Figure 10: gcc indirect misprediction over 0.5 KB – 32 KB.
pub fn figure10(workloads: &Workloads) -> Vec<GccIndPoint> {
    let spec = suite::benchmark("gcc").expect("gcc is in the suite");
    let test = workloads.test_trace(&spec);
    IND_SIZES
        .iter()
        .map(|&bytes| {
            let index_bits = Budget::from_bytes(bytes).ind_index_bits();
            let config = PathConfig::new(index_bits);

            let mut path = PathTargetCache::new(index_bits, BASELINE_PATH_BITS_PER_TARGET);
            let path_rate = run_indirect(&mut path, &test).miss_rate();

            let mut pattern = PatternTargetCache::new(index_bits);
            let pattern_rate = run_indirect(&mut pattern, &test).miss_rate();

            let fixed_length = workloads.best_fixed_indirect_length(index_bits);
            let fixed_rate =
                run_path_indirect(&config, &HashAssignment::fixed(fixed_length), &test).miss_rate();

            let report = workloads.profile_indirect(&spec, index_bits);
            let tuned_length = report.best_fixed_hash();
            let tuned_rate =
                run_path_indirect(&config, &HashAssignment::fixed(tuned_length), &test).miss_rate();

            let variable_rate = run_path_indirect(&config, &report.assignment, &test).miss_rate();

            GccIndPoint {
                bytes,
                path: path_rate,
                pattern: pattern_rate,
                fixed: fixed_rate,
                fixed_tuned: tuned_rate,
                variable: variable_rate,
            }
        })
        .collect()
}

impl GccCondPoint {
    /// Renders the Figure 9 series.
    pub fn render(points: &[GccCondPoint]) -> TextTable {
        let mut table = TextTable::new(vec![
            "size".into(),
            "gshare".into(),
            "fixed".into(),
            "fixed (tuned)".into(),
            "variable".into(),
        ]);
        for p in points {
            table.row(vec![
                Budget::from_bytes(p.bytes).to_string(),
                percent(p.gshare),
                percent(p.fixed),
                percent(p.fixed_tuned),
                percent(p.variable),
            ]);
        }
        table
    }
}

impl GccIndPoint {
    /// Renders the Figure 10 series.
    pub fn render(points: &[GccIndPoint]) -> TextTable {
        let mut table = TextTable::new(vec![
            "size".into(),
            "path (CHP)".into(),
            "pattern (CHP)".into(),
            "fixed".into(),
            "fixed (tuned)".into(),
            "variable".into(),
        ]);
        for p in points {
            table.row(vec![
                Budget::from_bytes(p.bytes).to_string(),
                percent(p.path),
                percent(p.pattern),
                percent(p.fixed),
                percent(p.fixed_tuned),
                percent(p.variable),
            ]);
        }
        table
    }
}

/// The abstract's headline comparison.
#[derive(Debug, Clone)]
pub struct Headline {
    /// gcc conditional rate for the variable length path predictor at a
    /// 4 KB budget (paper: 4.3%).
    pub vlp_cond_4kb: f64,
    /// gcc conditional rate for gshare at 4 KB (paper: 8.8%).
    pub gshare_cond_4kb: f64,
    /// gcc indirect rate for the variable length path predictor at
    /// 512 bytes (paper: 27.7%).
    pub vlp_ind_512b: f64,
    /// gcc indirect rate of the best competing predictor at 512 bytes
    /// (paper: 44.2%).
    pub best_competing_ind_512b: f64,
}

vlpp_trace::impl_to_json!(Headline {
    vlp_cond_4kb,
    gshare_cond_4kb,
    vlp_ind_512b,
    best_competing_ind_512b,
});

/// Reproduces the abstract's gcc numbers: conditional at 4 KB, indirect
/// at 512 B.
pub fn headline(workloads: &Workloads) -> Headline {
    let spec = suite::benchmark("gcc").expect("gcc is in the suite");
    let test = workloads.test_trace(&spec);

    let cond_bits = Budget::from_bytes(4 << 10).cond_index_bits();
    let mut gshare = Gshare::new(cond_bits);
    let gshare_rate = run_conditional(&mut gshare, &test).miss_rate();
    let report = workloads.profile_conditional(&spec, cond_bits);
    let vlp_rate =
        run_path_conditional(&PathConfig::new(cond_bits), &report.assignment, &test).miss_rate();

    let ind_bits = Budget::from_bytes(512).ind_index_bits();
    let mut pattern = PatternTargetCache::new(ind_bits);
    let pattern_rate = run_indirect(&mut pattern, &test).miss_rate();
    let mut path = PathTargetCache::new(ind_bits, BASELINE_PATH_BITS_PER_TARGET);
    let path_rate = run_indirect(&mut path, &test).miss_rate();
    let ind_report = workloads.profile_indirect(&spec, ind_bits);
    let ivlp_rate =
        run_path_indirect(&PathConfig::new(ind_bits), &ind_report.assignment, &test).miss_rate();

    Headline {
        vlp_cond_4kb: vlp_rate,
        gshare_cond_4kb: gshare_rate,
        vlp_ind_512b: ivlp_rate,
        best_competing_ind_512b: pattern_rate.min(path_rate),
    }
}

impl Headline {
    /// Renders the headline with the paper's numbers alongside.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(vec!["metric".into(), "measured".into(), "paper".into()]);
        table.row(vec!["gcc cond @4KB, VLP".into(), percent(self.vlp_cond_4kb), "4.3%".into()]);
        table.row(vec![
            "gcc cond @4KB, gshare".into(),
            percent(self.gshare_cond_4kb),
            "8.8%".into(),
        ]);
        table.row(vec!["gcc ind @512B, VLP".into(), percent(self.vlp_ind_512b), "27.7%".into()]);
        table.row(vec![
            "gcc ind @512B, best competing".into(),
            percent(self.best_competing_ind_512b),
            "44.2%".into(),
        ]);
        table
    }
}
