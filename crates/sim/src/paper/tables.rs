//! Tables 1–3 of the paper.

use vlpp_predict::Budget;
use vlpp_synth::suite;
use vlpp_trace::stats::TraceStats;

use crate::experiment::Workloads;
use crate::report::{human_count, percent, TextTable};

use super::comparisons::{indirect_comparison, IndRow};
use super::{COND_SIZES, FIG7_IND_BYTES, IND_SIZES};

/// One row of Table 1: a benchmark's branch demographics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dynamic conditional branches executed.
    pub conditional_dynamic: u64,
    /// Static conditional branch sites executed.
    pub conditional_static: u64,
    /// Dynamic indirect branches executed (returns excluded).
    pub indirect_dynamic: u64,
    /// Static indirect branch sites executed.
    pub indirect_static: u64,
}

vlpp_trace::impl_to_json!(Table1Row {
    benchmark,
    conditional_dynamic,
    conditional_static,
    indirect_dynamic,
    indirect_static,
});

/// Table 1: benchmark summary — dynamic and static conditional/indirect
/// branch counts on the test input, at the context's scale.
///
/// Static site counts are also available from the generated programs
/// (they match the paper exactly by construction); this table reports
/// the *executed* statics, as the paper's instrumentation did.
pub fn table1(workloads: &Workloads) -> Vec<Table1Row> {
    vlpp_pool::Pool::global().map(suite::all_benchmarks(), |spec| {
        let trace = workloads.test_trace(&spec);
        let stats = TraceStats::from_trace(&trace);
        Table1Row {
            benchmark: spec.name.clone(),
            conditional_dynamic: stats.conditional.dynamic,
            conditional_static: stats.conditional.static_,
            indirect_dynamic: stats.indirect.dynamic,
            indirect_static: stats.indirect.static_,
        }
    })
}

impl Table1Row {
    /// Renders rows in the paper's Table 1 layout.
    pub fn render(rows: &[Table1Row]) -> TextTable {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "cond dynamic".into(),
            "cond static".into(),
            "ind dynamic".into(),
            "ind static".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.benchmark.clone(),
                human_count(row.conditional_dynamic),
                row.conditional_static.to_string(),
                human_count(row.indirect_dynamic),
                row.indirect_static.to_string(),
            ]);
        }
        table
    }
}

/// Table 2: the best fixed path length per predictor-table size,
/// measured on the profile inputs and averaged over all 16 benchmarks.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// `(table size in bytes, best path length)` for conditional tables.
    pub conditional: Vec<(u64, u8)>,
    /// `(table size in bytes, best path length)` for indirect tables.
    pub indirect: Vec<(u64, u8)>,
}

vlpp_trace::impl_to_json!(Table2Data { conditional, indirect });

/// Computes Table 2 with the paper's methodology: for each size, the
/// path length minimizing the benchmark-averaged misprediction rate on
/// the *profile* input sets.
pub fn table2(workloads: &Workloads) -> Table2Data {
    let conditional = COND_SIZES
        .iter()
        .map(|&bytes| {
            let bits = Budget::from_bytes(bytes).cond_index_bits();
            (bytes, workloads.best_fixed_conditional_length(bits))
        })
        .collect();
    let indirect = IND_SIZES
        .iter()
        .map(|&bytes| {
            let bits = Budget::from_bytes(bytes).ind_index_bits();
            (bytes, workloads.best_fixed_indirect_length(bits))
        })
        .collect();
    Table2Data { conditional, indirect }
}

impl Table2Data {
    /// Renders both halves of Table 2.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "population".into(),
            "table size".into(),
            "best path length".into(),
        ]);
        for &(bytes, length) in &self.conditional {
            table.row(vec![
                "conditional".into(),
                Budget::from_bytes(bytes).to_string(),
                length.to_string(),
            ]);
        }
        for &(bytes, length) in &self.indirect {
            table.row(vec![
                "indirect".into(),
                Budget::from_bytes(bytes).to_string(),
                length.to_string(),
            ]);
        }
        table
    }
}

/// Table 3: indirect misprediction rates for the paper's eight
/// high-indirect-frequency benchmarks at 2 KB.
pub fn table3(workloads: &Workloads) -> Vec<IndRow> {
    indirect_comparison(workloads, &suite::HIGH_INDIRECT_NAMES, FIG7_IND_BYTES)
}

/// Renders Table 3 with the paper's extra reduction column.
pub fn render_table3(rows: &[IndRow]) -> TextTable {
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "path (CHP)".into(),
        "pattern (CHP)".into(),
        "FLP".into(),
        "VLP".into(),
        "VLP vs best competing".into(),
    ]);
    for row in rows {
        let best = row.best_competing();
        let reduction = if best > 0.0 { 1.0 - row.variable / best } else { 0.0 };
        table.row(vec![
            row.benchmark.clone(),
            percent(row.path),
            percent(row.pattern),
            percent(row.fixed),
            percent(row.variable),
            format!("-{:.1}%", 100.0 * reduction),
        ]);
    }
    table
}
