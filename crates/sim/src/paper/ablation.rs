//! Ablations of the design choices DESIGN.md calls out. All run on the
//! gcc workload (the paper's case study) at 16 KB (conditional) / 2 KB
//! (indirect).

use vlpp_core::{HashAssignment, PathConditional, PathConfig, ProfileBuilder, ProfileConfig};
use vlpp_predict::Budget;
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::report::{percent, TextTable};
use crate::runner::{run_conditional, run_path_conditional, run_path_indirect};

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Misprediction rate in [0, 1].
    pub rate: f64,
}

vlpp_trace::impl_to_json!(AblationRow { variant, rate });

impl AblationRow {
    /// Renders ablation rows.
    pub fn render(rows: &[AblationRow]) -> TextTable {
        let mut table = TextTable::new(vec!["variant".into(), "misprediction rate".into()]);
        for row in rows {
            table.row(vec![row.variant.clone(), percent(row.rate)]);
        }
        table
    }
}

fn gcc_cond_bits() -> u32 {
    Budget::from_bytes(super::FIG5_COND_BYTES).cond_index_bits()
}

/// §3.1 note: implementing only a subset of the hash functions
/// (HF₁, HF₂, HF₄, … HF₃₂) instead of all 32.
pub fn ablate_subset_hashes(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = gcc_cond_bits();
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);

    let run_with_hash_set = |hash_set: Vec<u8>, label: &str| {
        let config = ProfileConfig::new(PathConfig::new(bits)).with_hash_set(hash_set);
        let report = ProfileBuilder::new(config).profile_conditional(&profile);
        AblationRow {
            variant: label.to_string(),
            rate: run_path_conditional(&PathConfig::new(bits), &report.assignment, &test)
                .miss_rate(),
        }
    };

    vec![
        run_with_hash_set((1..=32).collect(), "all 32 hash functions"),
        run_with_hash_set(vec![1, 2, 4, 8, 16, 32], "powers of two only"),
        run_with_hash_set(vec![1, 4, 16], "three hash functions"),
        run_with_hash_set(vec![8], "single hash function (fixed length 8)"),
    ]
}

/// §3.4 hardware-only selection vs profile-guided selection.
pub fn ablate_dynamic_select(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = gcc_cond_bits();
    let test = workloads.test_trace(&spec);
    let report = workloads.profile_conditional(&spec, bits);

    let profile_rate =
        run_path_conditional(&PathConfig::new(bits), &report.assignment, &test).miss_rate();

    let mut dynamic =
        PathConditional::new_dynamic(PathConfig::new(bits), &[1, 2, 4, 8, 16, 32], 10);
    let dynamic_rate = run_conditional(&mut dynamic, &test).miss_rate();

    let fixed_rate = run_path_conditional(
        &PathConfig::new(bits),
        &HashAssignment::fixed(report.default_hash),
        &test,
    )
    .miss_rate();

    vec![
        AblationRow { variant: "profile-selected (VLP)".into(), rate: profile_rate },
        AblationRow { variant: "hardware-selected (§3.4)".into(), rate: dynamic_rate },
        AblationRow { variant: "fixed default length".into(), rate: fixed_rate },
    ]
}

/// §3.2: storing vs dropping return targets in the THB. The paper found
/// accuracy "does not strongly depend" on this.
pub fn ablate_returns(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = gcc_cond_bits();
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);

    let run_variant = |config: PathConfig, label: &str| {
        let profile_config = ProfileConfig::new(config.clone());
        let report = ProfileBuilder::new(profile_config).profile_conditional(&profile);
        AblationRow {
            variant: label.to_string(),
            rate: run_path_conditional(&config, &report.assignment, &test).miss_rate(),
        }
    };

    vec![
        run_variant(PathConfig::new(bits), "returns excluded (paper default)"),
        run_variant(PathConfig::new(bits).with_returns(), "returns recorded"),
    ]
}

/// Sensitivity to the profiling heuristic's candidate count and
/// iteration count (paper: 3 candidates, 7 iterations).
pub fn ablate_candidates(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = gcc_cond_bits();
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);

    let run_variant = |candidates: usize, iterations: usize| {
        let config = ProfileConfig::new(PathConfig::new(bits))
            .with_candidates(candidates)
            .with_iterations(iterations);
        let report = ProfileBuilder::new(config).profile_conditional(&profile);
        AblationRow {
            variant: format!("{candidates} candidates, {iterations} iterations"),
            rate: run_path_conditional(&PathConfig::new(bits), &report.assignment, &test)
                .miss_rate(),
        }
    };

    vec![
        run_variant(1, 1),
        run_variant(2, 4),
        run_variant(3, 7), // the paper's setting
        run_variant(5, 10),
    ]
}

/// Step 2's purpose is interference reduction: VLP accuracy with step 1
/// only (candidates chosen on private tables) vs steps 1+2.
pub fn ablate_interference(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = gcc_cond_bits();
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);

    let run_variant = |iterations: usize, label: &str| {
        let config = ProfileConfig::new(PathConfig::new(bits)).with_iterations(iterations);
        let report = ProfileBuilder::new(config).profile_conditional(&profile);
        AblationRow {
            variant: label.to_string(),
            rate: run_path_conditional(&PathConfig::new(bits), &report.assignment, &test)
                .miss_rate(),
        }
    };

    vec![
        run_variant(0, "step 1 only (no interference pass)"),
        run_variant(3, "3 step-2 iterations"),
        run_variant(7, "7 step-2 iterations (paper)"),
    ]
}

/// §6 future work: the call/return history stack, on the indirect side
/// where the paper expected it to help.
pub fn ablate_history_stack(workloads: &Workloads) -> Vec<AblationRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let bits = Budget::from_bytes(super::FIG7_IND_BYTES).ind_index_bits();
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);

    let run_variant = |config: PathConfig, label: &str| {
        let profile_config = ProfileConfig::new(config.clone());
        let report = ProfileBuilder::new(profile_config).profile_indirect(&profile);
        AblationRow {
            variant: label.to_string(),
            rate: run_path_indirect(&config, &report.assignment, &test).miss_rate(),
        }
    };

    vec![
        run_variant(PathConfig::new(bits), "no history stack (paper)"),
        run_variant(PathConfig::new(bits).with_history_stack(16), "16-entry history stack"),
    ]
}
