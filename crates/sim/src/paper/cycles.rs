//! The front-end cycle experiment: the paper's introduction argues in
//! pipeline-cost terms ("the amount of speculative work that must be
//! thrown away"); this experiment converts each predictor configuration's
//! accuracy — plus the §4.3 HFNT bubble — into fetch cycles per branch.

use vlpp_core::{HashAssignment, Hfnt, PathConditional, PathConfig, PathIndirect};
use vlpp_predict::{Budget, Gshare, LastTargetBtb, PatternTargetCache};
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::frontend::{run_frontend, FrontendCost, Penalties};
use crate::report::TextTable;

/// One front-end configuration's cycle cost on a benchmark.
#[derive(Debug, Clone)]
pub struct FrontendRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration label.
    pub configuration: String,
    /// The cost breakdown.
    pub cost: FrontendCost,
}

vlpp_trace::impl_to_json!(FrontendRow { benchmark, configuration, cost });

impl FrontendRow {
    /// Renders the experiment.
    pub fn render(rows: &[FrontendRow]) -> TextTable {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "configuration".into(),
            "cycles/branch".into(),
            "cond misses".into(),
            "ind misses".into(),
            "re-predictions".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.benchmark.clone(),
                row.configuration.clone(),
                format!("{:.3}", row.cost.cycles_per_branch()),
                row.cost.conditional_misses.to_string(),
                row.cost.indirect_misses.to_string(),
                row.cost.repredictions.to_string(),
            ]);
        }
        table
    }
}

/// Front-end configurations on four representative benchmarks
/// (16 KB conditional + 2 KB indirect budgets, default penalties):
///
/// 1. gshare + last-target BTB (a mid-1990s front end);
/// 2. gshare + pattern target cache (Chang–Hao–Patt upgrade);
/// 3. fixed length path for both populations;
/// 4. variable length path for both, *including* the HFNT bubble —
///    i.e. the paper's predictor charged for its own pipelining cost.
pub fn frontend_experiment(workloads: &Workloads) -> Vec<FrontendRow> {
    let cond_bits = Budget::from_bytes(super::FIG5_COND_BYTES).cond_index_bits();
    let ind_bits = Budget::from_bytes(super::FIG7_IND_BYTES).ind_index_bits();
    let penalties = Penalties::default();
    let names = ["gcc", "li", "perl", "go"];
    let mut rows = Vec::new();

    for name in names {
        let spec = suite::benchmark(name).expect("suite benchmark");
        let test = workloads.test_trace(&spec);

        let mut gshare = Gshare::new(cond_bits);
        let mut btb = LastTargetBtb::new(ind_bits);
        rows.push(FrontendRow {
            benchmark: name.into(),
            configuration: "gshare + last-target".into(),
            cost: run_frontend(&mut gshare, &mut btb, None, &test, penalties),
        });

        let mut gshare = Gshare::new(cond_bits);
        let mut pattern = PatternTargetCache::new(ind_bits);
        rows.push(FrontendRow {
            benchmark: name.into(),
            configuration: "gshare + pattern cache".into(),
            cost: run_frontend(&mut gshare, &mut pattern, None, &test, penalties),
        });

        let cond_length = workloads.best_fixed_conditional_length(cond_bits);
        let ind_length = workloads.best_fixed_indirect_length(ind_bits);
        let mut flp_cond =
            PathConditional::new(PathConfig::new(cond_bits), HashAssignment::fixed(cond_length));
        let mut flp_ind =
            PathIndirect::new(PathConfig::new(ind_bits), HashAssignment::fixed(ind_length));
        rows.push(FrontendRow {
            benchmark: name.into(),
            configuration: "fixed length path".into(),
            cost: run_frontend(&mut flp_cond, &mut flp_ind, None, &test, penalties),
        });

        let cond_report = workloads.profile_conditional(&spec, cond_bits);
        let ind_report = workloads.profile_indirect(&spec, ind_bits);
        let mut vlp_cond =
            PathConditional::new(PathConfig::new(cond_bits), cond_report.assignment.clone());
        let mut vlp_ind =
            PathIndirect::new(PathConfig::new(ind_bits), ind_report.assignment.clone());
        let mut hfnt = Hfnt::new(10, cond_report.default_hash);
        let assignment = cond_report.assignment.clone();
        let lookup = move |pc: vlpp_trace::Addr| assignment.get(pc);
        rows.push(FrontendRow {
            benchmark: name.into(),
            configuration: "variable length path (+HFNT)".into(),
            cost: run_frontend(
                &mut vlp_cond,
                &mut vlp_ind,
                Some((&mut hfnt, &lookup)),
                &test,
                penalties,
            ),
        });
    }
    rows
}
