//! Mechanism analysis (the quantitative version of the paper's §5.3
//! "Why Variable Length Path Prediction Works So Well"): break each
//! predictor's mispredictions down by the *ground-truth behavior class*
//! of the branch — something only possible because the workload
//! substrate knows what drives every site.
//!
//! The §5.3 claims to verify:
//!
//! * path predictors match gshare on loops and biased branches;
//! * the fixed length path predictor wins on path-correlated branches
//!   whose correlation length fits under its (one) length — and loses
//!   training time/interference on everything else;
//! * the variable length predictor wins *across* correlation lengths,
//!   because it can discard "unimportant path prefixes" per branch.
//!
//! Also includes the return-address-stack experiment (returns are
//! excluded from the paper's indirect predictors because a RAS handles
//! them; this measures how well).

use std::collections::HashMap;

use vlpp_core::{HashAssignment, PathConditional, PathConfig};
use vlpp_predict::{BranchObserver, Budget, ConditionalPredictor, Gshare, ReturnAddressStack};
use vlpp_synth::{suite, CondBehavior};
use vlpp_trace::BranchKind;

use crate::experiment::Workloads;
use crate::report::{percent, TextTable};

/// Ground-truth behavior classes for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorClass {
    /// Loop back-edges.
    Loop,
    /// Biased or data-dependent branches (no path correlation).
    Biased,
    /// Path-correlated, needing 1–3 targets of history.
    ShortPath,
    /// Path-correlated, needing 4–8 targets.
    MediumPath,
    /// Path-correlated, needing 9 or more targets.
    LongPath,
}

impl BehaviorClass {
    /// Classifies a site behavior.
    pub fn of(behavior: &CondBehavior) -> BehaviorClass {
        match behavior {
            CondBehavior::Loop { .. } => BehaviorClass::Loop,
            // Load-dependent sites look data-dependent to every
            // history-based predictor, which is this taxonomy's axis.
            CondBehavior::Biased { .. } | CondBehavior::LoadDependent { .. } => {
                BehaviorClass::Biased
            }
            CondBehavior::PathCorrelated { length, .. }
            | CondBehavior::PhaseSwitching { length, .. } => match length {
                0..=3 => BehaviorClass::ShortPath,
                4..=8 => BehaviorClass::MediumPath,
                _ => BehaviorClass::LongPath,
            },
        }
    }

    /// All classes, in display order.
    pub const ALL: [BehaviorClass; 5] = [
        BehaviorClass::Loop,
        BehaviorClass::Biased,
        BehaviorClass::ShortPath,
        BehaviorClass::MediumPath,
        BehaviorClass::LongPath,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BehaviorClass::Loop => "loops",
            BehaviorClass::Biased => "biased/random",
            BehaviorClass::ShortPath => "path length 1-3",
            BehaviorClass::MediumPath => "path length 4-8",
            BehaviorClass::LongPath => "path length 9+",
        }
    }
}

/// Per-class misprediction rates for the three §5.3 predictors.
#[derive(Debug, Clone)]
pub struct AnalysisRow {
    /// Behavior class label.
    pub class: String,
    /// Dynamic branches of this class.
    pub dynamic: u64,
    /// gshare misprediction rate on this class.
    pub gshare: f64,
    /// Fixed length path rate.
    pub fixed: f64,
    /// Variable length path rate.
    pub variable: f64,
}

vlpp_trace::impl_to_json!(AnalysisRow { class, dynamic, gshare, fixed, variable });

impl AnalysisRow {
    /// Renders the analysis table.
    pub fn render(rows: &[AnalysisRow]) -> TextTable {
        let mut table = TextTable::new(vec![
            "behavior class".into(),
            "dynamic".into(),
            "gshare".into(),
            "fixed path".into(),
            "variable path".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.class.clone(),
                row.dynamic.to_string(),
                percent(row.gshare),
                percent(row.fixed),
                percent(row.variable),
            ]);
        }
        table
    }
}

/// Runs the §5.3 analysis on gcc at 16 KB: per-behavior-class rates for
/// gshare, the fixed length path predictor, and the variable length path
/// predictor.
pub fn analyze_gcc(workloads: &Workloads) -> Vec<AnalysisRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let program = spec.build_program();
    let classes: HashMap<u64, BehaviorClass> = program
        .conditional_sites()
        .map(|(pc, behavior)| (pc.raw(), BehaviorClass::of(behavior)))
        .collect();
    let test = workloads.test_trace(&spec);
    let bits = Budget::from_bytes(super::FIG5_COND_BYTES).cond_index_bits();

    let fixed_length = workloads.best_fixed_conditional_length(bits);
    let report = workloads.profile_conditional(&spec, bits);
    let mut predictors: Vec<(&str, Box<dyn ConditionalPredictor>)> = vec![
        ("gshare", Box::new(Gshare::new(bits))),
        (
            "fixed",
            Box::new(PathConditional::new(
                PathConfig::new(bits),
                HashAssignment::fixed(fixed_length),
            )),
        ),
        (
            "variable",
            Box::new(PathConditional::new(PathConfig::new(bits), report.assignment.clone())),
        ),
    ];

    // misses[predictor][class], executions[class]
    let mut misses: Vec<HashMap<BehaviorClass, u64>> = vec![HashMap::new(); predictors.len()];
    let mut executions: HashMap<BehaviorClass, u64> = HashMap::new();
    for record in test.iter() {
        if record.is_conditional() {
            let class = classes
                .get(&record.pc().raw())
                .copied()
                .expect("every conditional pc is a known site");
            *executions.entry(class).or_insert(0) += 1;
            for (i, (_, predictor)) in predictors.iter_mut().enumerate() {
                let prediction = predictor.predict(record.pc());
                if prediction != record.taken() {
                    *misses[i].entry(class).or_insert(0) += 1;
                }
                predictor.train(record.pc(), record.taken());
            }
        }
        for (_, predictor) in predictors.iter_mut() {
            predictor.observe(record);
        }
    }

    BehaviorClass::ALL
        .iter()
        .filter_map(|&class| {
            let dynamic = executions.get(&class).copied().unwrap_or(0);
            if dynamic == 0 {
                return None;
            }
            let rate =
                |i: usize| misses[i].get(&class).copied().unwrap_or(0) as f64 / dynamic as f64;
            Some(AnalysisRow {
                class: class.label().to_string(),
                dynamic,
                gshare: rate(0),
                fixed: rate(1),
                variable: rate(2),
            })
        })
        .collect()
}

/// Per-benchmark return-address-stack accuracy.
#[derive(Debug, Clone)]
pub struct RasRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Returns executed.
    pub returns: u64,
    /// RAS hit rate in [0, 1].
    pub hit_rate: f64,
}

vlpp_trace::impl_to_json!(RasRow { benchmark, returns, hit_rate });

impl RasRow {
    /// Renders the RAS experiment.
    pub fn render(rows: &[RasRow]) -> TextTable {
        let mut table =
            TextTable::new(vec!["benchmark".into(), "returns".into(), "RAS hit rate".into()]);
        for row in rows {
            table.row(vec![row.benchmark.clone(), row.returns.to_string(), percent(row.hit_rate)]);
        }
        table
    }
}

/// Measures a 16-entry return address stack over every benchmark —
/// quantifying why the paper can afford to exclude returns from its
/// indirect predictors.
pub fn ras_experiment(workloads: &Workloads) -> Vec<RasRow> {
    let names = suite::all_names();
    super::comparisons::run_parallel(&names, |name| {
        let spec = suite::benchmark(name).expect("suite name");
        let test = workloads.test_trace(&spec);
        let mut ras = ReturnAddressStack::new(16);
        for record in test.iter() {
            if record.kind() == BranchKind::Return {
                ras.resolve(record.target());
            } else {
                ras.observe(record);
            }
        }
        RasRow {
            benchmark: spec.name.clone(),
            returns: ras.predictions(),
            hit_rate: ras.hit_rate(),
        }
    })
}

/// The per-branch assignment's length distribution for a benchmark — the
/// evidence behind §5.3's "discard unimportant path prefixes" claim.
#[derive(Debug, Clone)]
pub struct LengthHistogram {
    /// Benchmark name.
    pub benchmark: String,
    /// `histogram[n-1]` = branches assigned hash number `n`.
    pub histogram: Vec<usize>,
    /// The default hash number.
    pub default_hash: u8,
}

vlpp_trace::impl_to_json!(LengthHistogram { benchmark, histogram, default_hash });

/// Computes the profiled length histogram for one benchmark at 16 KB.
///
/// # Panics
///
/// Panics if `name` is not a suite benchmark.
pub fn length_histogram(workloads: &Workloads, name: &str) -> LengthHistogram {
    let spec = suite::benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let bits = Budget::from_bytes(super::FIG5_COND_BYTES).cond_index_bits();
    let report = workloads.profile_conditional(&spec, bits);
    LengthHistogram {
        benchmark: name.to_string(),
        histogram: report.assignment.length_histogram().to_vec(),
        default_hash: report.default_hash,
    }
}

impl LengthHistogram {
    /// Renders the histogram as an ASCII bar chart.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(vec!["path length".into(), "branches".into(), "".into()]);
        let max = self.histogram.iter().copied().max().unwrap_or(1).max(1);
        for (i, &count) in self.histogram.iter().enumerate() {
            if count == 0 {
                continue;
            }
            table.row(vec![
                format!("{}", i + 1),
                count.to_string(),
                "#".repeat(1 + count * 40 / max),
            ]);
        }
        table
    }
}
