//! Figures 5–8: per-benchmark predictor comparisons at a fixed table
//! size.

use vlpp_core::{HashAssignment, PathConfig};
use vlpp_predict::{Budget, Gshare, PathTargetCache, PatternTargetCache};
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::report::TextTable;
use crate::runner::{run_conditional, run_indirect, run_path_conditional, run_path_indirect};

use super::{BASELINE_PATH_BITS_PER_TARGET, FIG5_COND_BYTES, FIG7_IND_BYTES};

/// One benchmark's conditional misprediction rates (Figures 5–6).
#[derive(Debug, Clone)]
pub struct CondRow {
    /// Benchmark name.
    pub benchmark: String,
    /// gshare misprediction rate in [0, 1].
    pub gshare: f64,
    /// Fixed length path predictor rate (benchmark-averaged length).
    pub fixed: f64,
    /// Variable length path predictor rate (profiled assignment).
    pub variable: f64,
}

vlpp_trace::impl_to_json!(CondRow { benchmark, gshare, fixed, variable });

/// One benchmark's indirect misprediction rates (Figures 7–8, Table 3).
#[derive(Debug, Clone)]
pub struct IndRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Chang–Hao–Patt path-based target cache rate.
    pub path: f64,
    /// Chang–Hao–Patt pattern-based target cache rate.
    pub pattern: f64,
    /// Fixed length path predictor rate.
    pub fixed: f64,
    /// Variable length path predictor rate.
    pub variable: f64,
}

vlpp_trace::impl_to_json!(IndRow { benchmark, path, pattern, fixed, variable });

/// Runs the Figure 5/6 comparison (gshare vs fixed vs variable length
/// path) for the named benchmarks at `bytes` of predictor table.
pub fn conditional_comparison(workloads: &Workloads, names: &[&str], bytes: u64) -> Vec<CondRow> {
    let budget = Budget::from_bytes(bytes);
    let index_bits = budget.cond_index_bits();
    let fixed_length = workloads.best_fixed_conditional_length(index_bits);
    // Benchmarks are independent: run them on the shared pool (the
    // Workloads caches are compute-once-per-key).
    run_parallel(names, |name| {
        let spec = suite::benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let test = workloads.test_trace(&spec);

        let mut gshare = Gshare::new(index_bits);
        let gshare_stats = run_conditional(&mut gshare, &test);

        let config = PathConfig::new(index_bits);
        let fixed_stats =
            run_path_conditional(&config, &HashAssignment::fixed(fixed_length), &test);

        let report = workloads.profile_conditional(&spec, index_bits);
        let variable_stats = run_path_conditional(&config, &report.assignment, &test);

        CondRow {
            benchmark: name.to_string(),
            gshare: gshare_stats.miss_rate(),
            fixed: fixed_stats.miss_rate(),
            variable: variable_stats.miss_rate(),
        }
    })
}

/// Maps `names` to rows on the shared worker pool, preserving order.
pub(super) fn run_parallel<R: Send>(names: &[&str], work: impl Fn(&str) -> R + Sync) -> Vec<R> {
    vlpp_pool::Pool::global().map(names.to_vec(), work)
}

/// Runs the Figure 7/8 comparison (path and pattern target caches vs
/// fixed vs variable length path) for the named benchmarks.
pub fn indirect_comparison(workloads: &Workloads, names: &[&str], bytes: u64) -> Vec<IndRow> {
    let budget = Budget::from_bytes(bytes);
    let index_bits = budget.ind_index_bits();
    let fixed_length = workloads.best_fixed_indirect_length(index_bits);
    run_parallel(names, |name| {
        let spec = suite::benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let test = workloads.test_trace(&spec);

        let mut path = PathTargetCache::new(index_bits, BASELINE_PATH_BITS_PER_TARGET);
        let path_stats = run_indirect(&mut path, &test);

        let mut pattern = PatternTargetCache::new(index_bits);
        let pattern_stats = run_indirect(&mut pattern, &test);

        let config = PathConfig::new(index_bits);
        let fixed_stats = run_path_indirect(&config, &HashAssignment::fixed(fixed_length), &test);

        let report = workloads.profile_indirect(&spec, index_bits);
        let variable_stats = run_path_indirect(&config, &report.assignment, &test);

        IndRow {
            benchmark: name.to_string(),
            path: path_stats.miss_rate(),
            pattern: pattern_stats.miss_rate(),
            fixed: fixed_stats.miss_rate(),
            variable: variable_stats.miss_rate(),
        }
    })
}

/// Figure 5: conditional misprediction rates, 16 KB predictor, SPEC.
pub fn figure5(workloads: &Workloads) -> Vec<CondRow> {
    conditional_comparison(workloads, &suite::SPEC_NAMES, FIG5_COND_BYTES)
}

/// Figure 6: conditional misprediction rates, 16 KB predictor, non-SPEC.
pub fn figure6(workloads: &Workloads) -> Vec<CondRow> {
    conditional_comparison(workloads, &suite::NON_SPEC_NAMES, FIG5_COND_BYTES)
}

/// Figure 7: indirect misprediction rates, 2 KB predictor, SPEC.
pub fn figure7(workloads: &Workloads) -> Vec<IndRow> {
    indirect_comparison(workloads, &suite::SPEC_NAMES, FIG7_IND_BYTES)
}

/// Figure 8: indirect misprediction rates, 2 KB predictor, non-SPEC.
pub fn figure8(workloads: &Workloads) -> Vec<IndRow> {
    indirect_comparison(workloads, &suite::NON_SPEC_NAMES, FIG7_IND_BYTES)
}

impl CondRow {
    /// Renders rows as a Figure 5/6-style text table.
    pub fn render(rows: &[CondRow]) -> TextTable {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "gshare".into(),
            "fixed length path".into(),
            "variable length path".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.benchmark.clone(),
                crate::report::percent(row.gshare),
                crate::report::percent(row.fixed),
                crate::report::percent(row.variable),
            ]);
        }
        table
    }

    /// Average reduction in mispredictions of the variable length path
    /// predictor relative to gshare, in [0, 1] (the paper's headline
    /// "28.6% fewer mispredictions on average").
    pub fn mean_reduction_vs_gshare(rows: &[CondRow]) -> f64 {
        let reductions: Vec<f64> =
            rows.iter().filter(|r| r.gshare > 0.0).map(|r| 1.0 - r.variable / r.gshare).collect();
        if reductions.is_empty() {
            0.0
        } else {
            reductions.iter().sum::<f64>() / reductions.len() as f64
        }
    }
}

impl IndRow {
    /// Renders rows as a Figure 7/8-style text table.
    pub fn render(rows: &[IndRow]) -> TextTable {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "path (CHP)".into(),
            "pattern (CHP)".into(),
            "fixed length path".into(),
            "variable length path".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.benchmark.clone(),
                crate::report::percent(row.path),
                crate::report::percent(row.pattern),
                crate::report::percent(row.fixed),
                crate::report::percent(row.variable),
            ]);
        }
        table
    }

    /// The best competing (path or pattern target cache) rate.
    pub fn best_competing(&self) -> f64 {
        self.path.min(self.pattern)
    }
}
