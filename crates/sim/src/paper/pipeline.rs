//! The §4.3 HFNT pipelining experiment: how often the Hash Function
//! Number Table mispredicts the hash number, forcing a re-prediction
//! (an extra front-end cycle, not a branch misprediction).
//!
//! The paper describes the structure but does not plot its cost; this
//! experiment supplies the measurement.

use vlpp_core::Hfnt;
use vlpp_predict::Budget;
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::report::{percent, TextTable};

/// HFNT set-index width used by the experiment (1 Ki entries).
pub const HFNT_SET_BITS: u32 = 10;

/// Per-benchmark HFNT behavior.
#[derive(Debug, Clone)]
pub struct HfntRow {
    /// Benchmark name.
    pub benchmark: String,
    /// HFNT lookups (dynamic conditional branches).
    pub lookups: u64,
    /// Lookups whose hash number had to be corrected.
    pub mismatches: u64,
    /// Mismatch (re-prediction) rate in [0, 1].
    pub rate: f64,
}

vlpp_trace::impl_to_json!(HfntRow { benchmark, lookups, mismatches, rate });

/// Runs the HFNT model over every benchmark using each benchmark's
/// profiled 16 KB conditional hash assignment.
pub fn hfnt_experiment(workloads: &Workloads) -> Vec<HfntRow> {
    let index_bits = Budget::from_bytes(super::FIG5_COND_BYTES).cond_index_bits();
    let names = suite::all_names();
    super::comparisons::run_parallel(&names, |name| {
        let spec = suite::benchmark(name).expect("suite name");
        let report = workloads.profile_conditional(&spec, index_bits);
        let mut hfnt = Hfnt::new(HFNT_SET_BITS, report.default_hash);
        let test = workloads.test_trace(&spec);
        for record in test.conditionals() {
            let actual = report.assignment.get(record.pc());
            hfnt.lookup(record.pc());
            hfnt.resolve(record.pc(), actual);
        }
        let stats = hfnt.stats();
        HfntRow {
            benchmark: spec.name.clone(),
            lookups: stats.lookups,
            mismatches: stats.mismatches,
            rate: stats.mismatch_rate(),
        }
    })
}

impl HfntRow {
    /// Renders the HFNT experiment as a text table.
    pub fn render(rows: &[HfntRow]) -> TextTable {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "lookups".into(),
            "re-predictions".into(),
            "rate".into(),
        ]);
        for row in rows {
            table.row(vec![
                row.benchmark.clone(),
                row.lookups.to_string(),
                row.mismatches.to_string(),
                percent(row.rate),
            ]);
        }
        table
    }
}
