//! The related-work shootout: every predictor family the paper's §2
//! surveys, on the gcc workload, at the paper's budgets. This is the
//! experiment the paper implies but never runs in one table — it places
//! the variable length path predictor among *all* its relatives:
//! interference-reducing schemes (bi-mode, agree), adaptive-history
//! schemes (DHLF, elastic gshare), hybrids (McFarling, Driesen–Hölzle
//! dual-length), and the per-address-vs-global path question.

use vlpp_core::{elastic, DualLengthPathIndirect, ElasticGshare, HashAssignment, PathConfig};
use vlpp_predict::{
    Agree, BiMode, Bimodal, Budget, Dhlf, Gshare, Hybrid, LastTargetBtb, PathTargetCache,
    PatternTargetCache, PerAddressPathCache,
};
use vlpp_synth::suite;

use crate::experiment::Workloads;
use crate::report::{percent, TextTable};
use crate::runner::{run_conditional, run_indirect, run_path_conditional, run_path_indirect};

use super::{BASELINE_PATH_BITS_PER_TARGET, FIG5_COND_BYTES, FIG7_IND_BYTES};

/// One predictor's result in a related-work comparison.
#[derive(Debug, Clone)]
pub struct RelatedRow {
    /// Predictor label.
    pub predictor: String,
    /// Misprediction rate in [0, 1].
    pub rate: f64,
}

vlpp_trace::impl_to_json!(RelatedRow { predictor, rate });

impl RelatedRow {
    /// Renders the comparison, best rate last.
    pub fn render(rows: &[RelatedRow]) -> TextTable {
        let mut sorted = rows.to_vec();
        sorted.sort_by(|a, b| b.rate.partial_cmp(&a.rate).expect("rates are finite"));
        let mut table = TextTable::new(vec!["predictor".into(), "misprediction rate".into()]);
        for row in &sorted {
            table.row(vec![row.predictor.clone(), percent(row.rate)]);
        }
        table
    }
}

/// Conditional predictors on gcc at the Figure 5 budget (16 KB of
/// second-level table; multi-table schemes split it).
pub fn related_conditional(workloads: &Workloads) -> Vec<RelatedRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let test = workloads.test_trace(&spec);
    let profile = workloads.profile_trace(&spec);
    let bits = Budget::from_bytes(FIG5_COND_BYTES).cond_index_bits();
    let mut rows = Vec::new();
    let mut push =
        |label: &str, rate: f64| rows.push(RelatedRow { predictor: label.to_string(), rate });

    push("bimodal", run_conditional(&mut Bimodal::new(bits), &test).miss_rate());
    push("gshare", run_conditional(&mut Gshare::new(bits), &test).miss_rate());
    // Bi-mode: two direction tables + choice table, same total budget.
    push("bi-mode", run_conditional(&mut BiMode::new(bits - 1, bits - 1), &test).miss_rate());
    push("agree", run_conditional(&mut Agree::new(bits, bits - 2), &test).miss_rate());
    push(
        "hybrid gshare/bimodal",
        run_conditional(&mut Hybrid::new(Gshare::new(bits - 1), Bimodal::new(bits - 1), 12), &test)
            .miss_rate(),
    );
    push("dhlf", run_conditional(&mut Dhlf::new(bits, 4096), &test).miss_rate());

    let lengths = elastic::profile_lengths(&profile, bits);
    push(
        "elastic gshare (profiled)",
        run_conditional(&mut ElasticGshare::new(bits, lengths), &test).miss_rate(),
    );

    let fixed_length = workloads.best_fixed_conditional_length(bits);
    push(
        "fixed length path",
        run_path_conditional(&PathConfig::new(bits), &HashAssignment::fixed(fixed_length), &test)
            .miss_rate(),
    );
    let report = workloads.profile_conditional(&spec, bits);
    push(
        "variable length path",
        run_path_conditional(&PathConfig::new(bits), &report.assignment, &test).miss_rate(),
    );
    rows
}

/// Indirect predictors on gcc at the Figure 7 budget (2 KB of target
/// storage; the dual-length hybrid splits it).
pub fn related_indirect(workloads: &Workloads) -> Vec<RelatedRow> {
    let spec = suite::benchmark("gcc").expect("gcc");
    let test = workloads.test_trace(&spec);
    let bits = Budget::from_bytes(FIG7_IND_BYTES).ind_index_bits();
    let mut rows = Vec::new();
    let mut push =
        |label: &str, rate: f64| rows.push(RelatedRow { predictor: label.to_string(), rate });

    push("last-target", run_indirect(&mut LastTargetBtb::new(bits), &test).miss_rate());
    push(
        "per-address path",
        run_indirect(&mut PerAddressPathCache::new(bits, 3, 10), &test).miss_rate(),
    );
    push(
        "path (Chang, Hao, and Patt)",
        run_indirect(&mut PathTargetCache::new(bits, BASELINE_PATH_BITS_PER_TARGET), &test)
            .miss_rate(),
    );
    push(
        "pattern (Chang, Hao, and Patt)",
        run_indirect(&mut PatternTargetCache::new(bits), &test).miss_rate(),
    );
    // Dual-length hybrid: two half-size components.
    push(
        "dual-length path hybrid",
        run_indirect(&mut DualLengthPathIndirect::new(PathConfig::new(bits - 1), 2, 12, 10), &test)
            .miss_rate(),
    );
    let fixed_length = workloads.best_fixed_indirect_length(bits);
    push(
        "fixed length path",
        run_path_indirect(&PathConfig::new(bits), &HashAssignment::fixed(fixed_length), &test)
            .miss_rate(),
    );
    let report = workloads.profile_indirect(&spec, bits);
    push(
        "variable length path",
        run_path_indirect(&PathConfig::new(bits), &report.assignment, &test).miss_rate(),
    );
    rows
}
