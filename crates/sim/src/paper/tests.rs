//! Smoke and invariant tests for the paper experiments, run at a tiny
//! scale (the 50 K conditional floor) so the suite stays fast. The
//! full-scale orderings are asserted by the root integration tests and
//! recorded in EXPERIMENTS.md.

use super::*;
use crate::experiment::{Scale, Workloads};

/// A very small scale: every benchmark hits the 50 K conditional floor.
fn tiny() -> Workloads {
    Workloads::new(Scale::new(1_000_000))
}

#[test]
fn table1_covers_all_benchmarks_with_sane_counts() {
    let rows = table1(&tiny());
    assert_eq!(rows.len(), 16);
    for row in &rows {
        assert!(row.conditional_dynamic >= 50_000, "{}", row.benchmark);
        assert!(row.conditional_static <= 14_419);
        assert!(row.conditional_static >= 1);
        assert!(row.indirect_static <= 504);
    }
    // The high-indirect benchmarks must executed indirects far more
    // often than compress/pgp.
    let ratio = |name: &str| {
        let r = rows.iter().find(|r| r.benchmark == name).unwrap();
        r.conditional_dynamic as f64 / r.indirect_dynamic.max(1) as f64
    };
    assert!(ratio("perl") < 100.0);
    assert!(ratio("li") < 150.0);
    assert!(ratio("compress") > 1_000.0);
    assert!(ratio("pgp") > 1_000.0);
}

#[test]
fn table1_renders_all_rows() {
    let rows = table1(&tiny());
    let rendered = Table1Row::render(&rows).render();
    for name in vlpp_synth::suite::all_names() {
        assert!(rendered.contains(name), "{name} missing from Table 1");
    }
}

#[test]
fn conditional_comparison_rates_are_valid_and_vlp_wins_on_average() {
    let workloads = tiny();
    // Two benchmarks keep the test fast; full sweeps run in integration.
    let rows = conditional_comparison(&workloads, &["compress", "li"], FIG5_COND_BYTES);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        for rate in [row.gshare, row.fixed, row.variable] {
            assert!((0.0..=1.0).contains(&rate), "{}: rate {rate}", row.benchmark);
        }
        assert!(row.gshare > 0.0, "a real workload always mispredicts sometimes");
    }
    let mean_vlp: f64 = rows.iter().map(|r| r.variable).sum::<f64>() / rows.len() as f64;
    let mean_gshare: f64 = rows.iter().map(|r| r.gshare).sum::<f64>() / rows.len() as f64;
    assert!(
        mean_vlp < mean_gshare,
        "VLP ({mean_vlp:.4}) must beat gshare ({mean_gshare:.4}) on average"
    );
}

#[test]
fn indirect_comparison_rates_are_valid() {
    let workloads = tiny();
    let rows = indirect_comparison(&workloads, &["li", "perl"], FIG7_IND_BYTES);
    for row in &rows {
        for rate in [row.path, row.pattern, row.fixed, row.variable] {
            assert!((0.0..=1.0).contains(&rate), "{}: rate {rate}", row.benchmark);
        }
        assert!(
            row.variable <= row.best_competing() + 0.05,
            "{}: VLP ({:.3}) should not lose to the best baseline ({:.3})",
            row.benchmark,
            row.variable,
            row.best_competing()
        );
    }
}

#[test]
fn table2_lengths_are_in_range_and_sizes_match() {
    let data = table2(&tiny());
    assert_eq!(data.conditional.len(), COND_SIZES.len());
    assert_eq!(data.indirect.len(), IND_SIZES.len());
    for &(bytes, length) in data.conditional.iter().chain(data.indirect.iter()) {
        assert!(bytes.is_power_of_two());
        assert!((1..=32).contains(&length), "length {length} for {bytes} bytes");
    }
}

#[test]
fn headline_is_internally_consistent() {
    let data = headline(&tiny());
    assert!(data.vlp_cond_4kb < data.gshare_cond_4kb, "VLP must beat gshare on gcc");
    assert!(
        data.vlp_ind_512b < data.best_competing_ind_512b,
        "VLP must beat the target caches on gcc"
    );
    let rendered = data.render().render();
    assert!(rendered.contains("4.3%"), "paper reference column present");
}

#[test]
fn hfnt_rows_cover_suite_and_rates_are_small() {
    let rows = hfnt_experiment(&tiny());
    assert_eq!(rows.len(), 16);
    for row in &rows {
        assert!(row.lookups > 0);
        assert!(row.mismatches <= row.lookups);
        // Hash numbers are a per-branch constant, so after warmup only
        // aliasing misses remain — which can be sizable for benchmarks
        // whose static footprint dwarfs the 1 Ki-entry HFNT (vortex,
        // gcc), but never majority.
        assert!(row.rate < 0.50, "{}: HFNT re-prediction rate {}", row.benchmark, row.rate);
    }
}

#[test]
fn ablation_tables_have_expected_variants() {
    let workloads = tiny();
    let rows = ablate_interference(&workloads);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.rate));
    }
    let rows = ablate_returns(&workloads);
    assert_eq!(rows.len(), 2);
    // The paper: accuracy "does not strongly depend" on returns.
    assert!(
        (rows[0].rate - rows[1].rate).abs() < 0.05,
        "returns should not matter much: {} vs {}",
        rows[0].rate,
        rows[1].rate
    );
}

#[test]
fn analysis_covers_classes_and_vlp_wins_where_it_should() {
    let rows = analyze_gcc(&tiny());
    assert!(rows.len() >= 4, "most behavior classes should appear, got {}", rows.len());
    let total: u64 = rows.iter().map(|r| r.dynamic).sum();
    assert!(total >= 50_000);
    for row in &rows {
        for rate in [row.gshare, row.fixed, row.variable] {
            assert!((0.0..=1.0).contains(&rate), "{}: {rate}", row.class);
        }
    }
    // §5.3: on the short-path class, per-branch length selection is a
    // clear win over gshare.
    let short = rows.iter().find(|r| r.class.contains("1-3")).expect("short-path class");
    assert!(
        short.variable < short.gshare,
        "VLP ({}) should beat gshare ({}) on short-path branches",
        short.variable,
        short.gshare
    );
}

#[test]
fn related_conditional_places_vlp_at_or_near_the_top() {
    let rows = related_conditional(&tiny());
    assert!(rows.len() >= 8);
    let vlp = rows.iter().find(|r| r.predictor == "variable length path").expect("VLP row");
    let better = rows.iter().filter(|r| r.rate < vlp.rate - 0.005).count();
    assert!(better <= 1, "at most one related predictor may beat VLP meaningfully, got {better}");
    let bimodal = rows.iter().find(|r| r.predictor == "bimodal").expect("bimodal row");
    assert!(vlp.rate < bimodal.rate, "VLP must beat bimodal");
}

#[test]
fn related_indirect_places_vlp_at_the_top() {
    let rows = related_indirect(&tiny());
    assert!(rows.len() >= 6);
    let vlp = rows.iter().find(|r| r.predictor == "variable length path").expect("VLP row");
    for row in &rows {
        assert!(
            vlp.rate <= row.rate + 0.02,
            "VLP ({:.3}) should not lose to {} ({:.3})",
            vlp.rate,
            row.predictor,
            row.rate
        );
    }
}

#[test]
fn ras_is_essentially_perfect_on_the_suite() {
    // The substrate's call depth never exceeds the executor bound, so a
    // 16-entry RAS should hit nearly always — which is exactly why the
    // paper can exclude returns from its indirect predictors.
    let rows = ras_experiment(&tiny());
    assert_eq!(rows.len(), 16);
    for row in &rows {
        assert!(row.returns > 0, "{} executed no returns", row.benchmark);
        assert!(row.hit_rate > 0.95, "{}: RAS hit rate {}", row.benchmark, row.hit_rate);
    }
}

#[test]
fn length_histogram_reflects_profiled_branches() {
    let workloads = tiny();
    let data = length_histogram(&workloads, "perl");
    let assigned: usize = data.histogram.iter().sum();
    assert!(assigned > 0);
    assert!((1..=32).contains(&data.default_hash));
    // The histogram must spread over more than one length — the whole
    // point of per-branch selection.
    let used = data.histogram.iter().filter(|&&c| c > 0).count();
    assert!(used > 3, "expected diverse lengths, got {used} distinct");
}

#[test]
fn frontend_vlp_costs_fewest_cycles_even_with_hfnt_bubbles() {
    let rows = frontend_experiment(&tiny());
    assert_eq!(rows.len(), 16); // 4 benchmarks x 4 configurations
    for benchmark in ["gcc", "li", "perl", "go"] {
        let of = |config: &str| {
            rows.iter()
                .find(|r| r.benchmark == benchmark && r.configuration.starts_with(config))
                .unwrap_or_else(|| panic!("{benchmark}/{config} missing"))
                .cost
                .cycles_per_branch()
        };
        let baseline = of("gshare + last-target");
        let vlp = of("variable length path");
        assert!(
            vlp < baseline,
            "{benchmark}: VLP front end ({vlp:.3}) should beat gshare+BTB ({baseline:.3})"
        );
    }
    // The VLP rows are the only ones charged HFNT bubbles.
    for row in &rows {
        if row.configuration.contains("HFNT") {
            assert!(row.cost.repredictions > 0);
        } else {
            assert_eq!(row.cost.repredictions, 0);
        }
    }
}

#[test]
fn subset_hashes_degrade_gracefully() {
    let rows = ablate_subset_hashes(&tiny());
    assert_eq!(rows.len(), 4);
    let all32 = rows[0].rate;
    let single = rows[3].rate;
    assert!(
        single >= all32 - 0.01,
        "a single hash function ({single:.4}) cannot beat all 32 ({all32:.4})"
    );
}
