//! The in-tree timer harness replacing Criterion.
//!
//! A bench is warmup iterations followed by N timed iterations; the
//! report is the per-iteration **median** and **MAD** (median absolute
//! deviation) in nanoseconds — robust statistics that tolerate the odd
//! scheduler hiccup without Criterion's sampling machinery.
//!
//! Every report is printed as one machine-readable JSON line prefixed
//! with `BENCH `, so a bench log can be grepped into a `BENCH_*.json`
//! trajectory file:
//!
//! ```text
//! BENCH {"bench":"micro/gshare_16kb","iters":5,"median_ns":812345,...}
//! ```

use std::hint::black_box;
use std::time::Instant;

use vlpp_trace::json::{JsonValue, ToJson};

/// Iteration counts for one bench.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed warmup iterations (`VLPP_BENCH_WARMUP` overrides).
    pub warmup: u32,
    /// Timed iterations (`VLPP_BENCH_ITERS` overrides; min 1).
    pub iters: u32,
}

impl BenchConfig {
    /// The default: 2 warmup + 7 timed iterations, for cheap benches.
    pub fn from_env() -> Self {
        BenchConfig::default().env_override()
    }

    /// A minimal config (1 warmup + 3 timed) for expensive benches that
    /// regenerate whole experiments per iteration.
    pub fn quick() -> Self {
        BenchConfig { warmup: 1, iters: 3 }.env_override()
    }

    fn env_override(mut self) -> Self {
        if let Some(w) = env_u32("VLPP_BENCH_WARMUP") {
            self.warmup = w;
        }
        if let Some(i) = env_u32("VLPP_BENCH_ITERS") {
            self.iters = i.max(1);
        }
        self
    }
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 2, iters: 7 }
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.parse().ok()
}

/// One bench's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Bench name (conventionally `group/case`).
    pub name: String,
    /// Timed iterations measured.
    pub iters: u32,
    /// Median per-iteration wall time.
    pub median_ns: u64,
    /// Median absolute deviation of the per-iteration times.
    pub mad_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

impl ToJson for BenchReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("bench".to_string(), self.name.to_json()),
            ("iters".to_string(), self.iters.to_json()),
            ("median_ns".to_string(), self.median_ns.to_json()),
            ("mad_ns".to_string(), self.mad_ns.to_json()),
            ("min_ns".to_string(), self.min_ns.to_json()),
            ("max_ns".to_string(), self.max_ns.to_json()),
        ])
    }
}

impl BenchReport {
    /// The `BENCH {json}` line this report prints.
    pub fn to_line(&self) -> String {
        format!("BENCH {}", self.to_json_string())
    }
}

fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Times `f` and prints the report as one `BENCH {json}` line.
///
/// The closure's return value is passed through [`black_box`] so the
/// work cannot be optimized away.
pub fn bench<T>(name: &str, config: BenchConfig, mut f: impl FnMut() -> T) -> BenchReport {
    bench_with_setup(name, config, || (), move |()| f())
}

/// Like [`bench()`], but runs `setup` (untimed) before every timed
/// iteration — for benches that consume their input.
pub fn bench_with_setup<S, T>(
    name: &str,
    config: BenchConfig,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> BenchReport {
    for _ in 0..config.warmup {
        black_box(f(setup()));
    }
    let iters = config.iters.max(1);
    let mut samples: Vec<u64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        samples.push(start.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let median = median_of_sorted(&samples);
    let mut deviations: Vec<u64> = samples.iter().map(|&s| s.abs_diff(median)).collect();
    deviations.sort_unstable();
    let report = BenchReport {
        name: name.to_string(),
        iters,
        median_ns: median,
        mad_ns: median_of_sorted(&deviations),
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    };
    println!("{}", report.to_line());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_line_is_valid_single_line_json() {
        let report = bench("check/self_test", BenchConfig { warmup: 0, iters: 3 }, || {
            (0..100u64).sum::<u64>()
        });
        let line = report.to_line();
        assert!(line.starts_with("BENCH {"));
        assert!(!line.contains('\n'));
        let value = JsonValue::parse(line.strip_prefix("BENCH ").unwrap()).unwrap();
        assert_eq!(value.get("bench").unwrap().as_str(), Some("check/self_test"));
        assert_eq!(value.get("iters").unwrap().as_u64(), Some(3));
        assert!(value.get("median_ns").unwrap().as_u64().is_some());
        assert!(value.get("mad_ns").unwrap().as_u64().is_some());
    }

    #[test]
    fn stats_are_ordered_sanely() {
        let report = bench("check/ordering", BenchConfig { warmup: 1, iters: 5 }, || {
            std::hint::black_box(vec![0u8; 4096])
        });
        assert!(report.min_ns <= report.median_ns);
        assert!(report.median_ns <= report.max_ns);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[]), 0);
        assert_eq!(median_of_sorted(&[5]), 5);
        assert_eq!(median_of_sorted(&[1, 3]), 2);
        assert_eq!(median_of_sorted(&[1, 2, 9]), 2);
    }

    #[test]
    fn setup_runs_outside_timing() {
        let mut setups = 0;
        let report = bench_with_setup(
            "check/setup",
            BenchConfig { warmup: 1, iters: 2 },
            || {
                setups += 1;
                vec![1u64; 64]
            },
            |v| v.into_iter().sum::<u64>(),
        );
        assert_eq!(setups, 3, "warmup + timed iterations each get a setup");
        assert_eq!(report.iters, 2);
    }
}
