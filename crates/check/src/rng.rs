//! A small deterministic PRNG for test-case generation.
//!
//! Like `vlpp-synth`'s SplitMix64, this is hand-rolled so generated test
//! cases are bit-reproducible across platforms and library versions —
//! a printed seed must replay the same case forever.

/// xorshift64\* (Marsaglia 2003; Vigna's `*` output scrambler): a tiny
/// seedable 64-bit generator. Statistically plenty for test-case
/// generation (not for cryptography).
///
/// # Example
///
/// ```
/// use vlpp_check::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped (the
    /// xorshift state must be non-zero) so every `u64` is a valid seed.
    pub fn new(seed: u64) -> Self {
        // Scramble the seed so nearby seeds (0, 1, 2, …) produce
        // unrelated streams.
        let mut state = mix(seed);
        if state == 0 {
            state = 0x9e37_79b9_7f4a_7c15;
        }
        XorShift64 { state }
    }

    /// The next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// SplitMix64's output mixer — used to scramble seeds and derive
/// per-case seeds from a base seed.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64::new(0);
        let first = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = XorShift64::new(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "{ones} ones");
    }
}
