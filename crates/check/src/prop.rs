//! The deterministic property-testing harness.
//!
//! [`check`] runs a property over many generated cases. Each case draws
//! its inputs from a [`Gen`] seeded from a per-case seed, so any failure
//! is replayable from the printed seed alone. On failure the harness
//! *shrinks* by bisecting the generator's value stream: draws past a
//! prefix limit return minimal values (0 / `false` / range minimum), and
//! the harness searches for the shortest prefix of "interesting"
//! randomness that still fails — typically turning a 200-record trace
//! counterexample into a handful of meaningful records followed by
//! zeros.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix, XorShift64};

/// A property failure, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct Failed {
    message: String,
}

impl Failed {
    /// Creates a failure with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Failed { message: message.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// What a property returns: `Ok(())` or a [`Failed`] from a
/// `prop_assert*` macro.
pub type PropResult = Result<(), Failed>;

/// Asserts a condition inside a property, returning a [`Failed`]
/// (instead of panicking) so the harness can shrink and report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Failed::new(format!($($arg)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($arg)+), left, right
        );
    }};
}

/// Asserts two expressions are *not* equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// The draw stream a property generates its inputs from.
///
/// Every drawing method consumes exactly one value from the underlying
/// xorshift stream. During shrinking, draws past the prefix limit
/// return the minimal value (0, `false`, the range minimum, an empty
/// collection) instead of random bits.
#[derive(Debug)]
pub struct Gen {
    rng: XorShift64,
    draws: usize,
    limit: usize,
}

impl Gen {
    /// A generator over the full (unshrunk) stream for `seed`.
    pub fn new(seed: u64) -> Self {
        Gen::with_limit(seed, usize::MAX)
    }

    /// A generator whose draws past `limit` return minimal values —
    /// the shrinking mechanism, exposed for replaying shrunk cases.
    pub fn with_limit(seed: u64, limit: usize) -> Self {
        Gen { rng: XorShift64::new(seed), draws: 0, limit }
    }

    /// Number of values drawn so far.
    pub fn draws(&self) -> usize {
        self.draws
    }

    #[inline]
    fn next(&mut self) -> u64 {
        self.draws += 1;
        // Keep consuming the stream even past the limit so draw indices
        // stay aligned between the full and shrunk runs.
        let raw = self.rng.next_u64();
        if self.draws > self.limit {
            0
        } else {
            raw
        }
    }

    /// A uniform `u64` (the `any::<u64>()` equivalent).
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.next()
    }

    /// A uniform `bool`.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire), as in synth's RNG.
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `u64` in `low..=high`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    #[inline]
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "empty range {low}..={high}");
        if low == 0 && high == u64::MAX {
            return self.next();
        }
        low + self.below(high - low + 1)
    }

    /// A uniform `u32` in `low..=high`.
    #[inline]
    pub fn range_u32(&mut self, low: u32, high: u32) -> u32 {
        self.range_u64(low as u64, high as u64) as u32
    }

    /// A uniform `u8` in `low..=high`.
    #[inline]
    pub fn range_u8(&mut self, low: u8, high: u8) -> u8 {
        self.range_u64(low as u64, high as u64) as u8
    }

    /// A uniform `usize` in `low..=high`.
    #[inline]
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        self.range_u64(low as u64, high as u64) as usize
    }

    /// A uniform `f64` in `[low, high)` (returns `low` when shrunk).
    #[inline]
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low <= high, "empty range {low}..{high}");
        let unit = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }

    /// A uniform element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// A vector of `min..=max` elements, each produced by `element`
    /// (the `prop::collection::vec` equivalent).
    pub fn vec<T>(
        &mut self,
        min: usize,
        max: usize,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min, max);
        (0..len).map(|_| element(self)).collect()
    }
}

/// Configuration for a [`check`] run.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of generated cases (default 128; `VLPP_CHECK_CASES`
    /// overrides).
    pub cases: u32,
    /// Base seed for case generation (default fixed; `VLPP_CHECK_SEED`
    /// overrides, and makes its value the seed of case 0 so a reported
    /// failing seed replays first).
    pub seed: u64,
}

impl CheckConfig {
    /// The default base seed. Arbitrary but fixed: runs are
    /// deterministic unless `VLPP_CHECK_SEED` says otherwise.
    pub const DEFAULT_SEED: u64 = 0x5eed_1998_a5b1_05e5;

    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        CheckConfig { cases, ..CheckConfig::default() }
    }
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { cases: 128, seed: CheckConfig::DEFAULT_SEED }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw} is not a number"),
    }
}

enum CaseOutcome {
    Pass,
    Fail { message: String, draws: usize },
}

fn run_case(prop: &mut dyn FnMut(&mut Gen) -> PropResult, seed: u64, limit: usize) -> CaseOutcome {
    let mut gen = Gen::with_limit(seed, limit);
    match catch_unwind(AssertUnwindSafe(|| prop(&mut gen))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(failed)) => CaseOutcome::Fail { message: failed.message, draws: gen.draws() },
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                format!("panicked: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("panicked: {s}")
            } else {
                "panicked (non-string payload)".to_string()
            };
            CaseOutcome::Fail { message, draws: gen.draws() }
        }
    }
}

/// Runs `prop` over `config.cases` generated cases.
///
/// On the first failing case, bisects the value-stream prefix to a
/// minimal shrunk reproduction, then panics with the failing seed, the
/// shrunk prefix length, and both failure messages. Replay with
/// `VLPP_CHECK_SEED=0x<seed>` (full case) plus `VLPP_CHECK_LIMIT=<n>`
/// (shrunk case).
pub fn check<F>(name: &str, config: CheckConfig, mut prop: F)
where
    F: FnMut(&mut Gen) -> PropResult,
{
    let base_seed = env_u64("VLPP_CHECK_SEED").unwrap_or(config.seed);
    let cases = env_u64("VLPP_CHECK_CASES").map(|c| c as u32).unwrap_or(config.cases).max(1);
    let forced_limit = env_u64("VLPP_CHECK_LIMIT").map(|l| l as usize);

    for case in 0..cases {
        // Case 0 uses the base seed itself so a reported seed, fed back
        // through VLPP_CHECK_SEED, replays immediately.
        let seed = if case == 0 { base_seed } else { mix(base_seed.wrapping_add(case as u64)) };
        let limit = forced_limit.unwrap_or(usize::MAX);
        let (message, draws) = match run_case(&mut prop, seed, limit) {
            CaseOutcome::Pass => continue,
            CaseOutcome::Fail { message, draws } => (message, draws),
        };

        // Shrink: find (a local minimum of) the shortest random prefix
        // that still fails. Fixed iteration count: a bisection over
        // [0, draws] takes at most ~64 probes.
        let mut shrunk_limit = draws;
        let mut shrunk_message = message.clone();
        let (mut lo, mut hi) = (0usize, draws);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match run_case(&mut prop, seed, mid) {
                CaseOutcome::Fail { message, .. } => {
                    shrunk_limit = mid;
                    shrunk_message = message;
                    hi = mid;
                }
                CaseOutcome::Pass => lo = mid + 1,
            }
        }

        panic!(
            "property `{name}` failed (case {case} of {cases}, {draws} draws)\n\
             \x20 failure: {message}\n\
             \x20 shrunk (prefix limit {shrunk_limit}): {shrunk_message}\n\
             \x20 reproduce: VLPP_CHECK_SEED={seed:#x} [VLPP_CHECK_LIMIT={shrunk_limit}]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        check("counts_cases", CheckConfig::with_cases(10), |g| {
            count += 1;
            let _ = g.u64();
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = Gen::new(99);
        let mut b = Gen::new(99);
        for _ in 0..50 {
            assert_eq!(a.u64(), b.u64());
        }
        assert_eq!(a.draws(), 50);
    }

    #[test]
    fn limited_gen_returns_minimal_values() {
        let mut g = Gen::with_limit(7, 2);
        let _ = g.u64();
        let _ = g.u64();
        assert_eq!(g.u64(), 0);
        assert!(!g.bool());
        assert_eq!(g.range_u64(5, 10), 5);
        assert_eq!(g.range_f64(-3.0, 4.0), -3.0);
        assert_eq!(g.vec(0, 8, |g| g.u64()), Vec::<u64>::new());
    }

    #[test]
    fn limited_gen_keeps_stream_alignment() {
        // The prefix draws must match the unlimited run exactly.
        let mut full = Gen::new(21);
        let full_values: Vec<u64> = (0..6).map(|_| full.u64()).collect();
        let mut limited = Gen::with_limit(21, 3);
        let limited_values: Vec<u64> = (0..6).map(|_| limited.u64()).collect();
        assert_eq!(&limited_values[..3], &full_values[..3]);
        assert_eq!(&limited_values[3..], &[0, 0, 0]);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(5);
        for _ in 0..1000 {
            let v = g.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let f = g.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let c = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn vec_respects_length_bounds() {
        let mut g = Gen::new(6);
        for _ in 0..200 {
            let v = g.vec(2, 5, |g| g.bool());
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("finds_big_values", CheckConfig::with_cases(50), |g| {
                let v = g.vec(0, 20, |g| g.below(100));
                prop_assert!(v.iter().all(|&x| x < 95), "saw {:?}", v);
                Ok(())
            });
        });
        let message = match result {
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(message.contains("property `finds_big_values` failed"), "{message}");
        assert!(message.contains("VLPP_CHECK_SEED=0x"), "{message}");
        assert!(message.contains("shrunk"), "{message}");
    }

    #[test]
    fn shrinking_finds_short_prefix() {
        // The property fails whenever the 5th draw is odd; the shrunk
        // prefix must keep at least those 5 draws but no more than the
        // full stream. We capture the reported limit via the panic text.
        let result = std::panic::catch_unwind(|| {
            check("fifth_draw_odd", CheckConfig::with_cases(20), |g| {
                let mut last = 0;
                for _ in 0..5 {
                    last = g.u64();
                }
                for _ in 0..200 {
                    let _ = g.u64(); // irrelevant tail entropy
                }
                prop_assert!(last & 1 == 0, "fifth draw {last:#x} is odd");
                Ok(())
            });
        });
        let message = match result {
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        let limit: usize = message
            .split("VLPP_CHECK_LIMIT=")
            .nth(1)
            .and_then(|s| s.trim_end_matches(']').trim().parse().ok())
            .unwrap_or_else(|| panic!("no limit in: {message}"));
        assert!(limit <= 5, "tail entropy should shrink away, limit {limit}");
    }

    #[test]
    fn panics_inside_properties_are_failures_too() {
        let result = std::panic::catch_unwind(|| {
            check("panics_are_caught", CheckConfig::with_cases(3), |g| {
                let _ = g.u64();
                assert!(std::hint::black_box(false), "library invariant violated");
                Ok(())
            });
        });
        let message = match result {
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(message.contains("panicked"), "{message}");
        assert!(message.contains("library invariant violated"), "{message}");
    }

    #[test]
    fn prop_assert_macros_build_messages() {
        fn inner(x: u64) -> PropResult {
            prop_assert_eq!(x, 3u64, "x came from {}", "a test");
            prop_assert_ne!(x, 4u64);
            prop_assert!(x > 0);
            Ok(())
        }
        assert!(inner(3).is_ok());
        let err = inner(5).unwrap_err();
        assert!(err.message().contains("left: 5"), "{}", err.message());
        assert!(err.message().contains("a test"));
    }
}
