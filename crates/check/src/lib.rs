//! # vlpp-check — hermetic testing and benchmarking harness
//!
//! The workspace must build and test with an empty cargo registry cache,
//! so this crate replaces the two dev-dependencies the seed tree pulled
//! from crates.io:
//!
//! * **`proptest`** → [`prop`]: a deterministic property-testing harness.
//!   Generators draw from a seeded xorshift stream ([`rng::XorShift64`],
//!   the same style of hand-rolled PRNG as `vlpp-synth`'s SplitMix64);
//!   failures are *shrunk* by bisecting the generator's value stream and
//!   reported with the exact seed (and shrink limit) that reproduces
//!   them.
//! * **`criterion`** → [`bench()`]: a `harness = false` timer harness with
//!   warmup, N timed iterations, and a median/MAD report printed as one
//!   machine-readable JSON line (via `vlpp_trace::json`), so
//!   `BENCH_*.json` trajectories can accumulate across PRs.
//!
//! The [`fault`] module rounds out the harness with seeded
//! [`FaultPlan`]s for the robustness suite: deterministic byte
//! corruption/truncation of serialized inputs and `VLPP_FAULT` plans for
//! injected worker panics and stalls (see `ROBUSTNESS.md`).
//!
//! ## Writing a property test
//!
//! ```
//! use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
//!
//! #[derive(Debug)]
//! struct Pair(u64, u64);
//!
//! check("addition_commutes", CheckConfig::default(), |g| {
//!     let pair = Pair(g.u64(), g.below(1000));
//!     prop_assert_eq!(pair.0.wrapping_add(pair.1), pair.1.wrapping_add(pair.0));
//!     prop_assert!(pair.1 < 1000, "bounded draw escaped its bound: {:?}", pair);
//!     Ok(())
//! });
//! ```
//!
//! On failure the harness panics with the failing case's seed; re-run
//! with `VLPP_CHECK_SEED=0x<seed>` (and optionally
//! `VLPP_CHECK_LIMIT=<n>` for the shrunk prefix) to replay it first.
//! `VLPP_CHECK_CASES` overrides the case count globally.
//!
//! ## Running a bench
//!
//! ```
//! use vlpp_check::{bench, BenchConfig};
//!
//! let report = bench("sum_1k", BenchConfig::quick(), || (0..1000u64).sum::<u64>());
//! assert!(report.iters >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use bench::{bench, bench_with_setup, BenchConfig, BenchReport};
pub use fault::{DataFault, ExecFault, FaultPlan};
pub use prop::{check, CheckConfig, Failed, Gen, PropResult};
pub use rng::XorShift64;
