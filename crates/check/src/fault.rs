//! Seeded fault-plan generation for the fault-injection harness.
//!
//! The robustness suite (`tests/integration_faults.rs`, the trace
//! crate's `prop_faults` property tests) needs two kinds of trouble, and
//! both must be **deterministic** — a failing case has to replay from
//! its seed, and CI has to exercise the same fault matrix on every run:
//!
//! * [`DataFault`] — damage to bytes at rest: flip bits, truncate, or
//!   splice garbage into a serialized trace before handing it to a
//!   parser. [`DataFault::apply`] is a pure function of the fault and
//!   the input bytes.
//! * [`ExecFault`] — trouble during execution: worker panics and stalls,
//!   injected through `vlpp-pool`'s `VLPP_FAULT` hook.
//!   [`ExecFault::env_value`] renders exactly the grammar the hook
//!   parses, so a plan and its injection can never drift apart.
//!
//! A [`FaultPlan`] is a seeded stream of such faults: same seed, same
//! plan, forever. The plan generator never emits a no-op fault — a
//! corruption always changes at least one byte, a truncation always
//! removes at least one.

use crate::rng::XorShift64;

/// One deterministic mutation of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataFault {
    /// XOR the byte at `offset` with `xor` (always non-zero, so the
    /// byte always changes). When aimed inside a format's header this
    /// guarantees a parse error; aimed anywhere it exercises the
    /// never-panic property.
    CorruptByte {
        /// Position of the byte to damage.
        offset: usize,
        /// Non-zero mask to XOR into it.
        xor: u8,
    },
    /// Keep only the first `keep` bytes (always fewer than the input
    /// has), simulating a write cut short by a crash or full disk.
    Truncate {
        /// Number of leading bytes to keep.
        keep: usize,
    },
    /// Overwrite a run of bytes starting at `offset` with pseudo-random
    /// garbage, simulating a torn or misdirected write.
    Splice {
        /// Start of the overwritten run.
        offset: usize,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
}

impl DataFault {
    /// Applies the fault to a copy of `input`. Offsets out of range are
    /// clamped, so applying a fault can never itself panic.
    pub fn apply(&self, input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        match self {
            DataFault::CorruptByte { offset, xor } => {
                if let Some(byte) = out.get_mut(*offset) {
                    *byte ^= xor;
                }
            }
            DataFault::Truncate { keep } => {
                let keep = (*keep).min(out.len());
                out.truncate(keep);
            }
            DataFault::Splice { offset, bytes } => {
                let start = (*offset).min(out.len());
                let end = (start + bytes.len()).min(out.len());
                out[start..end].copy_from_slice(&bytes[..end - start]);
            }
        }
        out
    }
}

/// One injected execution fault, rendered for `vlpp-pool`'s
/// `VLPP_FAULT` hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// Panic inside pool task number `at`.
    Panic {
        /// Global task sequence number to hit.
        at: u64,
        /// Fire on every attempt (true) or only the first (false).
        persist: bool,
    },
    /// Stall pool task number `at` for `ms` milliseconds.
    Stall {
        /// Global task sequence number to hit.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
        /// Fire on every attempt (true) or only the first (false).
        persist: bool,
    },
    /// Sever the connection at frame operation `at` (the frame layer's
    /// `netdrop@N` — fires once, at a frame boundary).
    NetDrop {
        /// Global frame sequence number to hit.
        at: u64,
    },
    /// Stall frame operation `at` for `ms` milliseconds before it
    /// proceeds (`netstall@N:MS`), exercising peer read deadlines.
    NetStall {
        /// Global frame sequence number to hit.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Truncate the frame written at operation `at` to its first
    /// `bytes` wire bytes (`nettrunc@N:BYTES`), so the peer observes a
    /// mid-frame disconnect.
    NetTrunc {
        /// Global frame sequence number to hit.
        at: u64,
        /// Wire bytes to let through before cutting the frame short.
        bytes: u64,
    },
}

impl ExecFault {
    /// The `VLPP_FAULT` value that injects this fault — e.g. `panic@3`,
    /// `stall@7:250:persist`, `nettrunc@4:10`. Several rendered values
    /// joined with `,` form one composite plan (the task-level and
    /// frame-level hooks each pick out their own kinds).
    pub fn env_value(&self) -> String {
        match self {
            ExecFault::Panic { at, persist: false } => format!("panic@{at}"),
            ExecFault::Panic { at, persist: true } => format!("panic@{at}:persist"),
            ExecFault::Stall { at, ms, persist: false } => format!("stall@{at}:{ms}"),
            ExecFault::Stall { at, ms, persist: true } => format!("stall@{at}:{ms}:persist"),
            ExecFault::NetDrop { at } => format!("netdrop@{at}"),
            ExecFault::NetStall { at, ms } => format!("netstall@{at}:{ms}"),
            ExecFault::NetTrunc { at, bytes } => format!("nettrunc@{at}:{bytes}"),
        }
    }
}

/// A seeded, replayable stream of faults.
///
/// # Example
///
/// ```
/// use vlpp_check::fault::{DataFault, FaultPlan};
///
/// let input = b"a perfectly good file".to_vec();
/// let mut plan = FaultPlan::new(0xFA11);
/// for fault in plan.data_faults(input.len(), 8) {
///     let damaged = fault.apply(&input);
///     assert_ne!(damaged, input, "{fault:?} must actually damage the bytes");
/// }
/// // Same seed, same plan.
/// assert_eq!(
///     FaultPlan::new(0xFA11).data_faults(input.len(), 8),
///     FaultPlan::new(0xFA11).data_faults(input.len(), 8),
/// );
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    rng: XorShift64,
}

impl FaultPlan {
    /// Creates a plan from a seed. Equal seeds yield equal fault
    /// streams.
    pub fn new(seed: u64) -> Self {
        FaultPlan { rng: XorShift64::new(seed) }
    }

    fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.rng.next_u64() % bound as u64) as usize
    }

    /// Draws `count` data faults for a buffer of `len` bytes, cycling
    /// through the three fault shapes so every draw of three covers
    /// corrupt, truncate, and splice. Each fault is guaranteed to change
    /// the buffer (`len` must be at least 1).
    pub fn data_faults(&mut self, len: usize, count: usize) -> Vec<DataFault> {
        assert!(len >= 1, "cannot damage an empty buffer");
        (0..count)
            .map(|i| match i % 3 {
                0 => DataFault::CorruptByte {
                    offset: self.below(len),
                    xor: (self.rng.next_u64() % 255 + 1) as u8,
                },
                1 => DataFault::Truncate { keep: self.below(len) },
                _ => {
                    let offset = self.below(len);
                    let run = 1 + self.below(8.min(len - offset).max(1));
                    DataFault::Splice {
                        offset,
                        bytes: (0..run).map(|_| self.rng.next_u64() as u8).collect(),
                    }
                }
            })
            .collect()
    }

    /// Draws `count` corrupt-byte faults confined to the first
    /// `header_len` bytes — aimed at a format's magic/version fields,
    /// where any change is guaranteed to produce a parse error rather
    /// than a silently different payload.
    pub fn header_faults(&mut self, header_len: usize, count: usize) -> Vec<DataFault> {
        assert!(header_len >= 1);
        (0..count)
            .map(|_| DataFault::CorruptByte {
                offset: self.below(header_len),
                xor: (self.rng.next_u64() % 255 + 1) as u8,
            })
            .collect()
    }

    /// Draws `count` execution faults targeting task sequence numbers
    /// below `max_seq`, alternating panics and stalls (stalls of
    /// `stall_ms`), all transient (non-`persist`) so a retrying executor
    /// recovers from every one of them.
    pub fn exec_faults(&mut self, max_seq: u64, stall_ms: u64, count: usize) -> Vec<ExecFault> {
        assert!(max_seq >= 1);
        (0..count)
            .map(|i| {
                let at = self.rng.next_u64() % max_seq;
                if i % 2 == 0 {
                    ExecFault::Panic { at, persist: false }
                } else {
                    ExecFault::Stall { at, ms: stall_ms, persist: false }
                }
            })
            .collect()
    }

    /// Draws `count` network faults targeting frame sequence numbers
    /// from 1 to `max_seq` inclusive, cycling drop → stall → truncate.
    /// Stalls last `stall_ms`; truncations keep between 0 and 15 wire
    /// bytes, enough to land both inside the length prefix and inside
    /// small payloads.
    pub fn net_faults(&mut self, max_seq: u64, stall_ms: u64, count: usize) -> Vec<ExecFault> {
        assert!(max_seq >= 1);
        (0..count)
            .map(|i| {
                let at = 1 + self.rng.next_u64() % max_seq;
                match i % 3 {
                    0 => ExecFault::NetDrop { at },
                    1 => ExecFault::NetStall { at, ms: stall_ms },
                    _ => ExecFault::NetTrunc { at, bytes: self.rng.next_u64() % 16 },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::new(9).data_faults(100, 12);
        let b = FaultPlan::new(9).data_faults(100, 12);
        let c = FaultPlan::new(10).data_faults(100, 12);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn every_data_fault_changes_the_buffer() {
        let input: Vec<u8> = (0..=255).collect();
        for seed in 0..16 {
            for fault in FaultPlan::new(seed).data_faults(input.len(), 30) {
                assert_ne!(fault.apply(&input), input, "no-op fault from seed {seed}: {fault:?}");
            }
        }
    }

    #[test]
    fn faults_on_tiny_buffers_never_panic() {
        for len in 1..4usize {
            let input = vec![0xAAu8; len];
            for fault in FaultPlan::new(1).data_faults(len, 30) {
                let _ = fault.apply(&input);
            }
        }
    }

    #[test]
    fn header_faults_stay_inside_the_header() {
        for fault in FaultPlan::new(3).header_faults(6, 50) {
            match fault {
                DataFault::CorruptByte { offset, xor } => {
                    assert!(offset < 6);
                    assert_ne!(xor, 0);
                }
                other => panic!("header faults are corrupt-byte only, got {other:?}"),
            }
        }
    }

    #[test]
    fn apply_clamps_out_of_range_faults() {
        let input = vec![1u8, 2, 3];
        assert_eq!(DataFault::Truncate { keep: 99 }.apply(&input), input);
        assert_eq!(DataFault::CorruptByte { offset: 99, xor: 0xFF }.apply(&input), input);
        let spliced = DataFault::Splice { offset: 2, bytes: vec![9, 9, 9] }.apply(&input);
        assert_eq!(spliced, vec![1, 2, 9]);
    }

    #[test]
    fn exec_faults_render_the_hook_grammar() {
        assert_eq!(ExecFault::Panic { at: 3, persist: false }.env_value(), "panic@3");
        assert_eq!(ExecFault::Panic { at: 0, persist: true }.env_value(), "panic@0:persist");
        assert_eq!(ExecFault::Stall { at: 7, ms: 250, persist: false }.env_value(), "stall@7:250");
        assert_eq!(
            ExecFault::Stall { at: 7, ms: 250, persist: true }.env_value(),
            "stall@7:250:persist"
        );
        for fault in FaultPlan::new(4).exec_faults(11, 100, 10) {
            match fault {
                ExecFault::Panic { at, persist } | ExecFault::Stall { at, persist, .. } => {
                    assert!(at < 11);
                    assert!(!persist, "plan-drawn faults are transient");
                }
                other => panic!("exec_faults draws panics and stalls only, got {other:?}"),
            }
        }
    }

    #[test]
    fn net_faults_render_the_frame_hook_grammar() {
        assert_eq!(ExecFault::NetDrop { at: 3 }.env_value(), "netdrop@3");
        assert_eq!(ExecFault::NetStall { at: 5, ms: 40 }.env_value(), "netstall@5:40");
        assert_eq!(ExecFault::NetTrunc { at: 7, bytes: 2 }.env_value(), "nettrunc@7:2");
        let plan = FaultPlan::new(6).net_faults(9, 25, 12);
        assert_eq!(plan, FaultPlan::new(6).net_faults(9, 25, 12), "plans replay from the seed");
        for fault in plan {
            match fault {
                ExecFault::NetDrop { at }
                | ExecFault::NetStall { at, .. }
                | ExecFault::NetTrunc { at, .. } => {
                    assert!((1..=9).contains(&at), "frame numbers are 1-based: {fault:?}");
                }
                other => panic!("net_faults draws network faults only, got {other:?}"),
            }
        }
    }
}
