//! Trait-conformance suite for the predictor zoo.
//!
//! The member list comes from `for_each_zoo_conditional!` /
//! `for_each_zoo_indirect!` — the same macros the runtime registry
//! expands — so a predictor added to the zoo gets this suite
//! automatically, and wiring mistakes are compile errors, not silent
//! coverage gaps. Every member must satisfy:
//!
//! * **replay determinism** — two fresh instances driven over the same
//!   record stream produce byte-identical prediction streams (no hidden
//!   global state, clocks, or randomness);
//! * **rebuild (clone-equivalence) determinism** — rebuilding an
//!   instance mid-stream and replaying the prefix reproduces the
//!   original's suffix exactly;
//! * **predict purity** — `predict` is repeatable and does not perturb
//!   training (the runner may probe without retiring);
//! * **budget accounting sanity** — reported storage is positive and
//!   never exceeds the budget, at every tournament budget.
//!
//! True `Clone`-determinism (clone mid-stream, run both) is checked for
//! the concrete zoo types below, outside the macro, since boxed trait
//! objects cannot clone.

use std::sync::Arc;

use vlpp_predict::{
    for_each_zoo_conditional, for_each_zoo_indirect, Budget, Bullseye, ClusteredTargetCache,
    ConditionalPredictor, IndirectPredictor, Ldbp, Tage, ZooContext,
};
use vlpp_trace::{Addr, BranchRecord};

/// A deterministic mixed-kind record stream (conditionals, indirects,
/// calls, returns, unconditionals) with enough PC locality for tables
/// to train.
fn record_stream(seed: u64, n: usize) -> Vec<BranchRecord> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut step = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 16
    };
    (0..n)
        .map(|_| {
            let r = step();
            let pc = Addr::new(0x12_0000 + (r % 48) * 0x40 + 0x3c);
            let target = Addr::new(0x12_0000 + (step() % 64) * 0x40);
            match r % 20 {
                0..=11 => BranchRecord::conditional(pc, target, step() & 1 == 1),
                12..=14 => BranchRecord::indirect(pc, target),
                15..=16 => BranchRecord::call(pc, target),
                17..=18 => BranchRecord::ret(pc, target),
                _ => BranchRecord::unconditional(pc, target),
            }
        })
        .collect()
}

/// A load channel aligned with `record_stream(seed, n)`.
fn load_channel(n: usize) -> Arc<Vec<u64>> {
    Arc::new((0..n as u64).map(|i| (i * 31 + 7) % 64).collect())
}

/// Drives the runner protocol over `records`, returning the prediction
/// stream. `extra_predicts` probes each conditional twice more before
/// training, which must not change anything.
fn drive_cond(
    p: &mut dyn ConditionalPredictor,
    records: &[BranchRecord],
    extra_predicts: bool,
) -> Vec<bool> {
    let mut out = Vec::new();
    for record in records {
        if record.is_conditional() {
            let guess = p.predict(record.pc());
            if extra_predicts {
                assert_eq!(p.predict(record.pc()), guess, "predict must be repeatable");
                let _ = p.predict(record.pc());
            }
            out.push(guess);
            p.train(record.pc(), record.taken());
        }
        p.observe(record);
    }
    out
}

/// The indirect counterpart of [`drive_cond`].
fn drive_ind(
    p: &mut dyn IndirectPredictor,
    records: &[BranchRecord],
    extra_predicts: bool,
) -> Vec<Addr> {
    let mut out = Vec::new();
    for record in records {
        if record.is_indirect() {
            let guess = p.predict(record.pc());
            if extra_predicts {
                assert_eq!(p.predict(record.pc()), guess, "predict must be repeatable");
            }
            out.push(guess);
            p.train(record.pc(), record.target());
        }
        p.observe(record);
    }
    out
}

const STREAM_LEN: usize = 6_000;
const COND_BUDGETS: [u64; 2] = [4 << 10, 16 << 10];
const IND_BUDGETS: [u64; 2] = [2 << 10, 8 << 10];

macro_rules! cond_conformance {
    ($id:ident, $name:expr, $cite:expr, $build:expr, $storage:expr) => {
        mod $id {
            use super::*;

            fn build(budget: Budget) -> Box<dyn ConditionalPredictor> {
                let ctx = ZooContext::with_loads(load_channel(STREAM_LEN));
                let builder: fn(Budget, &ZooContext) -> Box<dyn ConditionalPredictor> = $build;
                builder(budget, &ctx)
            }

            #[test]
            fn replay_is_deterministic_and_predict_is_pure() {
                let budget = Budget::from_bytes(COND_BUDGETS[1]);
                let records = record_stream(0xc0fe, STREAM_LEN);
                let a = drive_cond(&mut *build(budget), &records, false);
                let b = drive_cond(&mut *build(budget), &records, true);
                assert_eq!(a, b, "{}: replay (with probe predicts) diverged", $name);
            }

            #[test]
            fn rebuild_midstream_matches() {
                let budget = Budget::from_bytes(COND_BUDGETS[0]);
                let records = record_stream(0xbeef, STREAM_LEN);
                let (prefix, suffix) = records.split_at(STREAM_LEN / 2);
                let mut original = build(budget);
                let mut rebuilt = build(budget);
                let a_pre = drive_cond(&mut *original, prefix, false);
                let b_pre = drive_cond(&mut *rebuilt, prefix, false);
                assert_eq!(a_pre, b_pre, "{}: prefix diverged", $name);
                let a_suf = drive_cond(&mut *original, suffix, false);
                let b_suf = drive_cond(&mut *rebuilt, suffix, false);
                assert_eq!(a_suf, b_suf, "{}: suffix diverged after rebuild", $name);
            }

            #[test]
            fn budget_accounting_is_sane() {
                let ctx = ZooContext::default();
                let storage: fn(Budget, &ZooContext) -> u64 = $storage;
                for bytes in COND_BUDGETS {
                    let budget = Budget::from_bytes(bytes);
                    let charged = storage(budget, &ctx);
                    assert!(charged > 0, "{}: zero storage at {budget}", $name);
                    assert!(
                        charged <= budget.bytes(),
                        "{}: {charged} bytes exceeds {budget}",
                        $name
                    );
                }
            }
        }
    };
}

macro_rules! ind_conformance {
    ($id:ident, $name:expr, $cite:expr, $build:expr, $storage:expr) => {
        mod $id {
            use super::*;

            fn build(budget: Budget) -> Box<dyn IndirectPredictor> {
                let ctx = ZooContext::default();
                let builder: fn(Budget, &ZooContext) -> Box<dyn IndirectPredictor> = $build;
                builder(budget, &ctx)
            }

            #[test]
            fn replay_is_deterministic_and_predict_is_pure() {
                let budget = Budget::from_bytes(IND_BUDGETS[1]);
                let records = record_stream(0xd00d, STREAM_LEN);
                let a = drive_ind(&mut *build(budget), &records, false);
                let b = drive_ind(&mut *build(budget), &records, true);
                assert_eq!(a, b, "{}: replay (with probe predicts) diverged", $name);
            }

            #[test]
            fn rebuild_midstream_matches() {
                let budget = Budget::from_bytes(IND_BUDGETS[0]);
                let records = record_stream(0xfeed, STREAM_LEN);
                let (prefix, suffix) = records.split_at(STREAM_LEN / 2);
                let mut original = build(budget);
                let mut rebuilt = build(budget);
                assert_eq!(
                    drive_ind(&mut *original, prefix, false),
                    drive_ind(&mut *rebuilt, prefix, false),
                    "{}: prefix diverged",
                    $name
                );
                assert_eq!(
                    drive_ind(&mut *original, suffix, false),
                    drive_ind(&mut *rebuilt, suffix, false),
                    "{}: suffix diverged after rebuild",
                    $name
                );
            }

            #[test]
            fn budget_accounting_is_sane() {
                let ctx = ZooContext::default();
                let storage: fn(Budget, &ZooContext) -> u64 = $storage;
                for bytes in IND_BUDGETS {
                    let budget = Budget::from_bytes(bytes);
                    let charged = storage(budget, &ctx);
                    assert!(charged > 0, "{}: zero storage at {budget}", $name);
                    assert!(
                        charged <= budget.bytes(),
                        "{}: {charged} bytes exceeds {budget}",
                        $name
                    );
                }
            }
        }
    };
}

for_each_zoo_conditional!(cond_conformance);
for_each_zoo_indirect!(ind_conformance);

/// True clone-determinism for the concrete zoo types: clone mid-stream,
/// drive both over the same suffix, and require identical predictions.
fn clone_determinism_cond<P: ConditionalPredictor + Clone>(mut p: P, seed: u64) {
    let records = record_stream(seed, STREAM_LEN);
    let (prefix, suffix) = records.split_at(STREAM_LEN / 2);
    drive_cond(&mut p, prefix, false);
    let mut cloned = p.clone();
    assert_eq!(
        drive_cond(&mut p, suffix, false),
        drive_cond(&mut cloned, suffix, false),
        "clone diverged from original"
    );
}

fn clone_determinism_ind<P: IndirectPredictor + Clone>(mut p: P, seed: u64) {
    let records = record_stream(seed, STREAM_LEN);
    let (prefix, suffix) = records.split_at(STREAM_LEN / 2);
    drive_ind(&mut p, prefix, false);
    let mut cloned = p.clone();
    assert_eq!(
        drive_ind(&mut p, suffix, false),
        drive_ind(&mut cloned, suffix, false),
        "clone diverged from original"
    );
}

#[test]
fn new_zoo_types_are_clone_deterministic() {
    clone_determinism_cond(Tage::new(Budget::from_kib(4)), 0x7a6e);
    clone_determinism_cond(Bullseye::new(Budget::from_kib(4)), 0xb0b0);
    clone_determinism_cond(Ldbp::new(12).with_channel(load_channel(STREAM_LEN)), 0x1db9);
    clone_determinism_ind(ClusteredTargetCache::new(10, 3, 16), 0xc105);
}

#[test]
fn zoo_registries_match_the_macro_expansion() {
    // The registry and this suite expand the same macros, so their
    // member counts must agree with the number of generated modules.
    // (Counting modules directly isn't possible; the names list is the
    // proxy — if someone adds a macro line, both sides grow together,
    // and this test documents the invariant.)
    assert_eq!(vlpp_predict::zoo::conditional_names().len(), 7);
    assert_eq!(vlpp_predict::zoo::indirect_names().len(), 5);
}
