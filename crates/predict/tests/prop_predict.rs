//! Property tests for the baseline predictors.

use vlpp_check::{check, prop_assert, prop_assert_eq, CheckConfig};
use vlpp_predict::{
    Bimodal, BranchObserver, Budget, ConditionalPredictor, Counter2, Gas, Gshare,
    IndirectPredictor, LastTargetBtb, OutcomeHistory, Pas, PathRegister, PathTargetCache,
    PatternTargetCache,
};
use vlpp_trace::{Addr, BranchRecord};

/// A 2-bit counter never leaves 0..=3 and flips prediction only after
/// crossing the threshold.
#[test]
fn counter_stays_in_range() {
    check("counter_stays_in_range", CheckConfig::default(), |g| {
        let updates = g.vec(0, 200, |g| g.bool());
        let mut c = Counter2::default();
        for taken in updates {
            c.update(taken);
            prop_assert!(c.value() <= 3);
            prop_assert_eq!(c.predict_taken(), c.value() >= 2);
        }
        Ok(())
    });
}

/// An outcome history register always equals the last `width` outcomes
/// packed newest-in-low-bit.
#[test]
fn outcome_history_matches_reference() {
    check("outcome_history_matches_reference", CheckConfig::default(), |g| {
        let width = g.range_u32(1, 63);
        let outcomes = g.vec(0, 100, |g| g.bool());
        let mut h = OutcomeHistory::new(width);
        let mut reference: u64 = 0;
        for taken in outcomes {
            h.push(taken);
            reference = ((reference << 1) | taken as u64) & ((1u64 << width) - 1);
            prop_assert_eq!(h.bits(), reference);
        }
        Ok(())
    });
}

/// A path register equals the concatenation of the last pieces.
#[test]
fn path_register_matches_reference() {
    check("path_register_matches_reference", CheckConfig::default(), |g| {
        let per = g.range_u32(1, 8);
        let depth_units = g.range_u32(1, 6);
        let targets = g.vec(0, 60, |g| g.u64());
        let width = per * depth_units;
        let mut p = PathRegister::new(width, per);
        let mut reference: u64 = 0;
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        for &raw in &targets {
            let t = Addr::new(raw);
            p.push(t);
            reference = ((reference << per) | t.low_bits(per)) & mask;
            prop_assert_eq!(p.bits(), reference);
        }
        Ok(())
    });
}

/// Budget accounting: entries × entry size = bytes.
#[test]
fn budget_accounting_is_consistent() {
    check("budget_accounting_is_consistent", CheckConfig::default(), |g| {
        let shift = g.range_u32(3, 20);
        let bytes = 1u64 << shift;
        let b = Budget::from_bytes(bytes);
        prop_assert_eq!(b.cond_entries() as u64 / 4, bytes);
        prop_assert_eq!(b.ind_entries() as u64 * 4, bytes);
        Ok(())
    });
}

/// All conditional predictors are deterministic state machines and
/// produce exactly one prediction per conditional branch.
#[test]
fn conditional_predictors_are_deterministic() {
    check("conditional_predictors_are_deterministic", CheckConfig::default(), |g| {
        let records = random_records(g.u64(), 300);
        fn drive<P: ConditionalPredictor>(mut p: P, records: &[BranchRecord]) -> Vec<bool> {
            let mut out = Vec::new();
            for r in records {
                if r.is_conditional() {
                    out.push(p.predict(r.pc()));
                    p.train(r.pc(), r.taken());
                }
                p.observe(r);
            }
            out
        }
        prop_assert_eq!(drive(Gshare::new(10), &records), drive(Gshare::new(10), &records));
        prop_assert_eq!(drive(Bimodal::new(10), &records), drive(Bimodal::new(10), &records));
        prop_assert_eq!(drive(Gas::new(8, 2), &records), drive(Gas::new(8, 2), &records));
        prop_assert_eq!(drive(Pas::new(6, 8, 2), &records), drive(Pas::new(6, 8, 2), &records));
        Ok(())
    });
}

/// Indirect predictors: after training on (pc, target) with frozen
/// history, the next prediction at the same pc returns that target.
#[test]
fn indirect_predictors_recall_last_train() {
    check("indirect_predictors_recall_last_train", CheckConfig::default(), |g| {
        let pc = Addr::new(g.u64());
        let target = Addr::new(g.range_u64(1, u64::MAX - 1));
        let expected = pc.with_low32(target.low32());

        let mut p = PatternTargetCache::new(10);
        p.train(pc, target);
        prop_assert_eq!(p.predict(pc), expected);

        let mut p = PathTargetCache::new(10, 2);
        p.train(pc, target);
        prop_assert_eq!(p.predict(pc), expected);

        let mut p = LastTargetBtb::new(10);
        p.train(pc, target);
        prop_assert_eq!(p.predict(pc), expected);
        Ok(())
    });
}

/// History updates never affect a bimodal predictor (no first-level
/// history), while they can change gshare's index.
#[test]
fn bimodal_ignores_history() {
    check("bimodal_ignores_history", CheckConfig::default(), |g| {
        let records = random_records(g.u64(), 100);
        let pc = Addr::new(0x4000);
        let mut with = Bimodal::new(10);
        let mut without = Bimodal::new(10);
        for r in &records {
            with.observe(r);
        }
        prop_assert_eq!(with.predict(pc), without.predict(pc));
        Ok(())
    });
}

fn random_records(seed: u64, n: usize) -> Vec<BranchRecord> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = Addr::new(((x >> 8) & 0x3ff) << 2);
            let target = Addr::new(((x >> 20) & 0x3ff) << 2);
            if x.is_multiple_of(4) {
                BranchRecord::indirect(pc, target)
            } else {
                BranchRecord::conditional(pc, target, x & 1 == 0)
            }
        })
        .collect()
}
