//! A Bullseye-style hard-branch filter ("Taming Wild Branches",
//! arXiv:2506.06773): a hard-branch table (HBT) classifies static
//! branches by observed mispredict rate under the cheap primary
//! predictor, and routes the hard ones to a larger secondary predictor
//! that only has to learn the branches that need it.
//!
//! Here the primary is a [`Gshare`] at a quarter of the budget and the
//! secondary a [`Tage`] at half; the HBT takes the rest. Both components
//! train on every branch (so the secondary is warm when a branch first
//! crosses the hardness threshold), but only one supplies the
//! prediction.

use vlpp_trace::{Addr, BranchRecord};

use crate::budget::Budget;
use crate::gshare::Gshare;
use crate::tage::Tage;
use crate::traits::{BranchObserver, ConditionalPredictor};

/// A branch qualifies as hard once it has at least this many samples.
const MIN_SAMPLES: u16 = 32;

/// Samples halve (sliding window) once `total` reaches this.
const WINDOW: u16 = 256;

/// One HBT entry: a direct-mapped, tagged mispredict profile.
#[derive(Debug, Clone, Copy, Default)]
struct HbtEntry {
    tag: u32,
    misses: u16,
    total: u16,
}

/// A Bullseye-style dual predictor with a hard-branch filter.
///
/// # Example
///
/// ```
/// use vlpp_predict::{Budget, Bullseye, ConditionalPredictor};
/// use vlpp_trace::Addr;
///
/// let mut p = Bullseye::new(Budget::from_kib(16));
/// let pc = Addr::new(0x1000);
/// let _guess = p.predict(pc);
/// p.train(pc, false);
/// ```
#[derive(Debug, Clone)]
pub struct Bullseye {
    primary: Gshare,
    secondary: Tage,
    hbt: Vec<HbtEntry>,
    hbt_mask: u64,
    budget: Budget,
}

impl Bullseye {
    /// Creates a Bullseye predictor sized for `budget` (quarter to the
    /// primary gshare, half to the secondary TAGE, an HBT from the
    /// remainder).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is smaller than 2 KiB (the secondary TAGE
    /// needs its 512-byte minimum at half the budget... times two for
    /// safety margin on the primary split).
    pub fn new(budget: Budget) -> Self {
        let bytes = budget.bytes();
        assert!(bytes >= 2048, "bullseye needs at least a 2KiB budget, got {bytes}");
        let hbt_entries = ((bytes / 64) as usize).max(16);
        Bullseye {
            primary: Gshare::new(Budget::from_bytes(bytes / 4).cond_index_bits()),
            secondary: Tage::new(Budget::from_bytes(bytes / 2)),
            hbt: vec![HbtEntry::default(); hbt_entries],
            hbt_mask: hbt_entries as u64 - 1,
            budget,
        }
    }

    /// Bytes charged: primary counters + secondary TAGE storage + the
    /// HBT at 8 bytes per entry.
    pub fn storage_bytes(&self) -> u64 {
        self.budget.bytes() / 4 + self.secondary.storage_bytes() + self.hbt.len() as u64 * 8
    }

    fn hbt_index(&self, pc: Addr) -> usize {
        (pc.word() & self.hbt_mask) as usize
    }

    fn hbt_tag(pc: Addr) -> u32 {
        pc.word() as u32
    }

    /// Is the branch at `pc` currently classified hard (≥ 25% primary
    /// mispredict rate over an adequate sample)?
    fn hard(&self, pc: Addr) -> bool {
        let entry = &self.hbt[self.hbt_index(pc)];
        entry.tag == Self::hbt_tag(pc)
            && entry.total >= MIN_SAMPLES
            && entry.misses * 4 >= entry.total
    }
}

impl BranchObserver for Bullseye {
    fn observe(&mut self, record: &BranchRecord) {
        self.primary.observe(record);
        self.secondary.observe(record);
    }
}

impl ConditionalPredictor for Bullseye {
    fn predict(&mut self, pc: Addr) -> bool {
        if self.hard(pc) {
            self.secondary.predict(pc)
        } else {
            self.primary.predict(pc)
        }
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        // Profile the primary's accuracy on this branch, whichever
        // component supplied the routed prediction.
        let primary_pred = self.primary.predict(pc);
        let idx = self.hbt_index(pc);
        let tag = Self::hbt_tag(pc);
        let entry = &mut self.hbt[idx];
        if entry.tag != tag {
            *entry = HbtEntry { tag, misses: 0, total: 0 };
        }
        entry.total += 1;
        if primary_pred != taken {
            entry.misses += 1;
        }
        if entry.total >= WINDOW {
            entry.total /= 2;
            entry.misses /= 2;
        }
        self.primary.train(pc, taken);
        self.secondary.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("bullseye-{}", self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_branches_stay_on_the_primary() {
        let mut p = Bullseye::new(Budget::from_kib(4));
        let pc = Addr::new(0x3000);
        for _ in 0..500 {
            let _ = p.predict(pc);
            p.train(pc, true);
            p.observe(&BranchRecord::conditional(pc, Addr::new(0x8000), true));
        }
        assert!(!p.hard(pc), "an always-taken branch must not classify hard");
    }

    #[test]
    fn alternating_history_branch_goes_hard_under_interference() {
        // Saturate the primary with conflicting branches so one
        // history-keyed branch stays inaccurate on gshare; it must cross
        // the hardness threshold.
        let mut p = Bullseye::new(Budget::from_kib(2));
        let hard_pc = Addr::new(0x4000);
        let mut x = 1u64;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (x >> 40) & 1 == 1;
            let _ = p.predict(hard_pc);
            p.train(hard_pc, taken);
            p.observe(&BranchRecord::conditional(hard_pc, Addr::new(0x8000), taken));
            let _ = i;
        }
        assert!(p.hard(hard_pc), "a coin-flip branch must classify hard");
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut p = Bullseye::new(Budget::from_kib(2));
            let mut x = 9u64;
            let mut out = Vec::new();
            for _ in 0..3000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pc = Addr::new(0x1000 + (x % 32) * 4);
                let taken = (x >> 33) & 1 == 1;
                out.push(p.predict(pc));
                p.train(pc, taken);
                p.observe(&BranchRecord::conditional(pc, Addr::new(0x8000), taken));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn storage_is_within_budget() {
        for kib in [2, 4, 16] {
            let b = Budget::from_kib(kib);
            let p = Bullseye::new(b);
            assert!(p.storage_bytes() <= b.bytes(), "{kib}KiB: {}", p.storage_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "2KiB budget")]
    fn rejects_tiny_budget() {
        Bullseye::new(Budget::from_kib(1));
    }
}
