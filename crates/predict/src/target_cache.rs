//! Chang–Hao–Patt "tagless" target caches for indirect branches.
//!
//! The baselines from P.-Y. Chang, E. Hao, Y. N. Patt, *Predicting
//! indirect jumps using a target cache*, ISCA 1997 — the paper's
//! comparison points for indirect branches. Both are a table of target
//! addresses ("tagless": no tags, aliasing allowed) indexed by first-level
//! history XORed with the branch address. They differ in the first level:
//!
//! * **pattern** variant — a global register of recent conditional branch
//!   *outcomes*;
//! * **path** variant — a global register of address bits from recent
//!   branch *targets* (a Nair-style [`PathRegister`]).

use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::{BranchObserver, IndirectPredictor, OutcomeHistory, PathRegister};

/// Stored targets are 32 bits; the upper half of a prediction comes from
/// the branch's own address (paper footnote 1).
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    low32: u32,
    valid: bool,
}

#[derive(Debug, Clone)]
struct TargetTable {
    entries: Vec<Entry>,
    mask: u64,
}

impl TargetTable {
    fn new(index_bits: u32) -> Self {
        assert!((1..=26).contains(&index_bits), "index width must be in 1..=26, got {index_bits}");
        TargetTable {
            entries: vec![Entry::default(); 1 << index_bits],
            mask: (1u64 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, history: u64, pc: Addr) -> usize {
        ((history ^ pc.word()) & self.mask) as usize
    }

    #[inline]
    fn predict(&self, index: usize, pc: Addr) -> Addr {
        let entry = self.entries[index];
        if entry.valid {
            pc.with_low32(entry.low32)
        } else {
            Addr::NULL
        }
    }

    #[inline]
    fn train(&mut self, index: usize, target: Addr) {
        self.entries[index] = Entry { low32: target.low32(), valid: true };
    }
}

/// The pattern-based tagless target cache: indexed by global conditional
/// outcome history XOR branch address.
///
/// # Example
///
/// ```
/// use vlpp_predict::{IndirectPredictor, PatternTargetCache};
/// use vlpp_trace::Addr;
///
/// let mut p = PatternTargetCache::new(9); // 512 entries = 2 KB
/// let pc = Addr::new(0x5000);
/// assert_eq!(p.predict(pc), Addr::NULL); // cold
/// p.train(pc, Addr::new(0x6000));
/// assert_eq!(p.predict(pc), Addr::new(0x6000));
/// ```
#[derive(Debug, Clone)]
pub struct PatternTargetCache {
    history: OutcomeHistory,
    table: TargetTable,
}

impl PatternTargetCache {
    /// Creates a pattern-based target cache with `2^index_bits` entries
    /// and an `index_bits`-wide outcome history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(index_bits: u32) -> Self {
        PatternTargetCache {
            history: OutcomeHistory::new(index_bits),
            table: TargetTable::new(index_bits),
        }
    }

    /// The number of target-table entries.
    pub fn entries(&self) -> usize {
        self.table.entries.len()
    }
}

impl BranchObserver for PatternTargetCache {
    fn observe(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.history.push(record.taken());
        }
    }
}

impl IndirectPredictor for PatternTargetCache {
    fn predict(&mut self, pc: Addr) -> Addr {
        let index = self.table.index(self.history.bits(), pc);
        self.table.predict(index, pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        let index = self.table.index(self.history.bits(), pc);
        self.table.train(index, target);
    }

    fn name(&self) -> String {
        "pattern (Chang, Hao, and Patt)".into()
    }
}

/// The path-based tagless target cache: indexed by a global register of
/// target-address pieces XOR branch address.
///
/// The register records `per_target` low bits of the target of every
/// conditional and indirect branch (the same population the paper's THB
/// records), holding `index_bits / per_target` targets — a *fixed*,
/// imperfect path encoding, which is exactly what the variable-length
/// path predictor improves on.
///
/// # Example
///
/// ```
/// use vlpp_predict::{IndirectPredictor, PathTargetCache};
/// use vlpp_trace::Addr;
///
/// let mut p = PathTargetCache::new(9, 3); // 512 entries, 3 bits/target
/// let pc = Addr::new(0x5000);
/// p.train(pc, Addr::new(0x6000));
/// assert_eq!(p.predict(pc), Addr::new(0x6000));
/// ```
#[derive(Debug, Clone)]
pub struct PathTargetCache {
    path: PathRegister,
    table: TargetTable,
}

impl PathTargetCache {
    /// Creates a path-based target cache with `2^index_bits` entries and
    /// `per_target` bits of each recent target in the path register.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26, or `per_target` is
    /// 0 or greater than `index_bits`.
    pub fn new(index_bits: u32, per_target: u32) -> Self {
        PathTargetCache {
            path: PathRegister::new(index_bits, per_target),
            table: TargetTable::new(index_bits),
        }
    }

    /// The number of target-table entries.
    pub fn entries(&self) -> usize {
        self.table.entries.len()
    }

    /// How many targets the path register represents.
    pub fn depth(&self) -> u32 {
        self.path.depth()
    }
}

impl BranchObserver for PathTargetCache {
    fn observe(&mut self, record: &BranchRecord) {
        if record.enters_thb() {
            self.path.push(record.target());
        }
    }
}

impl IndirectPredictor for PathTargetCache {
    fn predict(&mut self, pc: Addr) -> Addr {
        let index = self.table.index(self.path.bits(), pc);
        self.table.predict(index, pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        let index = self.table.index(self.path.bits(), pc);
        self.table.train(index, target);
    }

    fn name(&self) -> String {
        "path (Chang, Hao, and Patt)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_tables_predict_null() {
        assert_eq!(PatternTargetCache::new(8).predict(Addr::new(0x10)), Addr::NULL);
        assert_eq!(PathTargetCache::new(8, 2).predict(Addr::new(0x10)), Addr::NULL);
    }

    /// Pushes a full 8-outcome sequence, completely determining the
    /// 8-bit history register.
    fn set_outcome_context(p: &mut PatternTargetCache, outcomes: [bool; 8]) {
        for taken in outcomes {
            p.observe(&BranchRecord::conditional(Addr::new(0x10), Addr::new(0x20), taken));
        }
    }

    #[test]
    fn pattern_cache_separates_targets_by_history() {
        let mut p = PatternTargetCache::new(8);
        let pc = Addr::new(0x1000);
        let (ta, tb) = (Addr::new(0x2000), Addr::new(0x3000));
        let ctx_a = [true, false, true, true, false, false, true, true];
        let ctx_b = [false, false, true, false, true, true, false, false];

        set_outcome_context(&mut p, ctx_a);
        p.train(pc, ta);
        set_outcome_context(&mut p, ctx_b);
        p.train(pc, tb);

        set_outcome_context(&mut p, ctx_a);
        assert_eq!(p.predict(pc), ta);
        set_outcome_context(&mut p, ctx_b);
        assert_eq!(p.predict(pc), tb);
    }

    /// Pushes two targets, completely determining the 8-bit, 4-bits-per-
    /// target path register.
    fn set_path_context(p: &mut PathTargetCache, t1: u64, t2: u64) {
        p.observe(&BranchRecord::indirect(Addr::new(0x10), Addr::new(t1 << 2)));
        p.observe(&BranchRecord::indirect(Addr::new(0x10), Addr::new(t2 << 2)));
    }

    #[test]
    fn path_cache_separates_targets_by_path() {
        let mut p = PathTargetCache::new(8, 4);
        let pc = Addr::new(0x1000);
        let (ta, tb) = (Addr::new(0x2000), Addr::new(0x3000));

        set_path_context(&mut p, 0x5, 0x6);
        p.train(pc, ta);
        set_path_context(&mut p, 0x9, 0xa);
        p.train(pc, tb);

        set_path_context(&mut p, 0x5, 0x6);
        assert_eq!(p.predict(pc), ta);
        set_path_context(&mut p, 0x9, 0xa);
        assert_eq!(p.predict(pc), tb);
    }

    #[test]
    fn stored_target_is_32_bits() {
        // A target that differs from the PC in the high 32 bits gets its
        // high half from the PC (paper footnote 1).
        let mut p = PatternTargetCache::new(8);
        let pc = Addr::new(0xaaaa_0000_0000_1000);
        let target = Addr::new(0xbbbb_0000_0000_2000);
        p.train(pc, target);
        assert_eq!(p.predict(pc), Addr::new(0xaaaa_0000_0000_2000));
    }

    #[test]
    fn path_register_ignores_calls_and_returns() {
        let mut p = PathTargetCache::new(8, 4);
        p.observe(&BranchRecord::call(Addr::new(0x10), Addr::new(0xff << 2)));
        p.observe(&BranchRecord::ret(Addr::new(0x10), Addr::new(0xee << 2)));
        p.observe(&BranchRecord::unconditional(Addr::new(0x10), Addr::new(0xdd << 2)));
        assert_eq!(p.path.bits(), 0);
    }

    #[test]
    fn tagless_aliasing_overwrites() {
        // Same history, two PCs mapping to the same entry: the second
        // train evicts the first (no tags).
        let mut p = PatternTargetCache::new(4);
        let a = Addr::new(0x3 << 2);
        let b = Addr::new((0x3 + 16) << 2);
        p.train(a, Addr::new(0x100));
        p.train(b, Addr::new(0x200));
        assert_eq!(p.predict(a), Addr::new(0x200));
    }

    #[test]
    fn names_match_paper_labels() {
        assert!(PatternTargetCache::new(4).name().contains("pattern"));
        assert!(PathTargetCache::new(4, 2).name().contains("path"));
    }
}
