//! Two-bit saturating up/down counters.

use std::fmt;

/// A 2-bit saturating up/down counter, the paper's predictor-table entry
/// for conditional branches (§3.1): incremented on taken, decremented on
/// not-taken, predicts taken when the value is ≥ 2.
///
/// # Example
///
/// ```
/// use vlpp_predict::Counter2;
///
/// let mut c = Counter2::default(); // weakly not-taken
/// assert!(!c.predict_taken());
/// c.update(true);
/// c.update(true);
/// assert!(c.predict_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Counter2(u8);

impl Counter2 {
    /// Strongly not-taken (0).
    pub const STRONG_NOT_TAKEN: Counter2 = Counter2(0);
    /// Weakly not-taken (1) — the default initial state.
    pub const WEAK_NOT_TAKEN: Counter2 = Counter2(1);
    /// Weakly taken (2).
    pub const WEAK_TAKEN: Counter2 = Counter2(2);
    /// Strongly taken (3).
    pub const STRONG_TAKEN: Counter2 = Counter2(3);

    /// Creates a counter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is greater than 3.
    pub fn new(value: u8) -> Self {
        assert!(value <= 3, "2-bit counter value must be in 0..=3, got {value}");
        Counter2(value)
    }

    /// The raw counter value in `0..=3`.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Predicts taken when the counter is ≥ 2, as in the paper.
    #[inline]
    pub fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    /// Saturating update: increment on taken, decrement on not-taken.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }
}

impl Default for Counter2 {
    /// Weakly not-taken, a conventional neutral initialization.
    fn default() -> Self {
        Counter2::WEAK_NOT_TAKEN
    }
}

impl fmt::Display for Counter2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.0 {
            0 => "strong-not-taken",
            1 => "weak-not-taken",
            2 => "weak-taken",
            _ => "strong-taken",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = Counter2::STRONG_TAKEN;
        c.update(true);
        assert_eq!(c, Counter2::STRONG_TAKEN);
        let mut c = Counter2::STRONG_NOT_TAKEN;
        c.update(false);
        assert_eq!(c, Counter2::STRONG_NOT_TAKEN);
    }

    #[test]
    fn threshold_is_two() {
        assert!(!Counter2::new(0).predict_taken());
        assert!(!Counter2::new(1).predict_taken());
        assert!(Counter2::new(2).predict_taken());
        assert!(Counter2::new(3).predict_taken());
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = Counter2::STRONG_TAKEN;
        c.update(false);
        assert!(c.predict_taken(), "one not-taken must not flip a strong counter");
        c.update(false);
        assert!(!c.predict_taken());
    }

    #[test]
    #[should_panic(expected = "0..=3")]
    fn rejects_out_of_range() {
        Counter2::new(4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Counter2::new(0).to_string(), "strong-not-taken");
        assert_eq!(Counter2::new(3).to_string(), "strong-taken");
    }
}
