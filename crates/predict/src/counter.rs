//! Two-bit saturating up/down counters.

use std::fmt;

/// A 2-bit saturating up/down counter, the paper's predictor-table entry
/// for conditional branches (§3.1): incremented on taken, decremented on
/// not-taken, predicts taken when the value is ≥ 2.
///
/// # Example
///
/// ```
/// use vlpp_predict::Counter2;
///
/// let mut c = Counter2::default(); // weakly not-taken
/// assert!(!c.predict_taken());
/// c.update(true);
/// c.update(true);
/// assert!(c.predict_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Counter2(u8);

impl Counter2 {
    /// Strongly not-taken (0).
    pub const STRONG_NOT_TAKEN: Counter2 = Counter2(0);
    /// Weakly not-taken (1) — the default initial state.
    pub const WEAK_NOT_TAKEN: Counter2 = Counter2(1);
    /// Weakly taken (2).
    pub const WEAK_TAKEN: Counter2 = Counter2(2);
    /// Strongly taken (3).
    pub const STRONG_TAKEN: Counter2 = Counter2(3);

    /// Creates a counter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is greater than 3.
    pub fn new(value: u8) -> Self {
        assert!(value <= 3, "2-bit counter value must be in 0..=3, got {value}");
        Counter2(value)
    }

    /// The raw counter value in `0..=3`.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Predicts taken when the counter is ≥ 2, as in the paper.
    #[inline]
    pub fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    /// Saturating update: increment on taken, decrement on not-taken.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }
}

impl Counter2 {
    /// The saturating update as a pure, branchless function: the next
    /// state after observing `taken`.
    ///
    /// This is the form the structure-of-arrays counter planes use in
    /// the hot loop — a conditional increment/decrement expressed as
    /// clamped arithmetic, with no data-dependent branch for the
    /// hardware (or the compiler's auto-vectorizer) to mispredict.
    /// [`update`](Self::update) and this function are equivalent for
    /// every `(state, outcome)` pair; a test enumerates all eight.
    #[inline]
    #[must_use]
    pub fn updated(self, taken: bool) -> Self {
        // taken -> +1, not-taken -> -1; clamp to the 2-bit range.
        let step = (taken as i8) * 2 - 1;
        Counter2((self.0 as i8 + step).clamp(0, 3) as u8)
    }
}

impl Default for Counter2 {
    /// Weakly not-taken, a conventional neutral initialization.
    fn default() -> Self {
        Counter2::WEAK_NOT_TAKEN
    }
}

/// A contiguous plane of 2-bit saturating counters, packed 32 to a
/// `u64` word — the structure-of-arrays form of a
/// `Vec<`[`Counter2`]`>`.
///
/// Where [`Counter2`] is the paper's per-entry abstraction, a
/// `CounterPlane` is the whole second-level table as one dense bit
/// array: a `2^k`-entry table occupies `2^k / 32` words (exactly the
/// 2-bits-per-entry budget the paper accounts), reads are a shift-mask,
/// and updates are branchless ([`Counter2::updated`]) read-modify-write
/// on one word. Every logical counter sees exactly the predict/update
/// sequence its boxed `Vec<Counter2>` twin would, so the two layouts
/// are bit-for-bit interchangeable — the `vlpp-core` differential
/// suite pins that.
///
/// # Example
///
/// ```
/// use vlpp_predict::CounterPlane;
///
/// let mut plane = CounterPlane::new(64);
/// assert!(!plane.predict_taken(5)); // weakly not-taken everywhere
/// plane.update(5, true);
/// plane.update(5, true);
/// assert!(plane.predict_taken(5));
/// assert_eq!(plane.value(5), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterPlane {
    words: Vec<u64>,
    len: usize,
}

/// Counters per packed word (2 bits each in a `u64`).
const COUNTERS_PER_WORD: usize = 32;

/// Every 2-bit lane holding [`Counter2::WEAK_NOT_TAKEN`] (value 1).
const WEAK_NOT_TAKEN_WORD: u64 = 0x5555_5555_5555_5555;

impl CounterPlane {
    /// Creates a plane of `len` counters, each weakly not-taken — the
    /// same initial state as `vec![Counter2::default(); len]`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0.
    pub fn new(len: usize) -> Self {
        assert!(len >= 1, "counter plane must hold at least one counter");
        let words = len.div_ceil(COUNTERS_PER_WORD);
        CounterPlane { words: vec![WEAK_NOT_TAKEN_WORD; words], len }
    }

    /// The number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plane holds no counters (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The plane size in bytes under the 2-bits-per-entry accounting.
    pub fn bytes(&self) -> u64 {
        self.len as u64 / 4
    }

    /// The raw value (`0..=3`) of counter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn value(&self, i: usize) -> u8 {
        assert!(i < self.len, "counter index {i} out of range (len {})", self.len);
        ((self.words[i / COUNTERS_PER_WORD] >> ((i % COUNTERS_PER_WORD) * 2)) & 3) as u8
    }

    /// Counter `i` as a [`Counter2`].
    #[inline]
    pub fn get(&self, i: usize) -> Counter2 {
        Counter2::new(self.value(i))
    }

    /// Predicts taken when counter `i` is ≥ 2, as in the paper.
    #[inline]
    pub fn predict_taken(&self, i: usize) -> bool {
        // Bit 1 of the 2-bit value is the "taken" threshold bit.
        (self.words[i / COUNTERS_PER_WORD] >> ((i % COUNTERS_PER_WORD) * 2 + 1)) & 1 == 1
    }

    /// Branchless saturating update of counter `i`.
    #[inline]
    pub fn update(&mut self, i: usize, taken: bool) {
        let shift = (i % COUNTERS_PER_WORD) * 2;
        let word = &mut self.words[i / COUNTERS_PER_WORD];
        let current = ((*word >> shift) & 3) as u8;
        let next = Counter2(current).updated(taken).value() as u64;
        *word = (*word & !(3u64 << shift)) | (next << shift);
    }

    /// Fused predict-then-update of counter `i`: one word load and one
    /// store instead of the two loads [`predict_taken`](Self::predict_taken)
    /// followed by [`update`](Self::update) would do. Returns the
    /// prediction *before* the update, exactly as the split calls would.
    #[inline]
    pub fn predict_update(&mut self, i: usize, taken: bool) -> bool {
        let shift = (i % COUNTERS_PER_WORD) * 2;
        let word = &mut self.words[i / COUNTERS_PER_WORD];
        let current = ((*word >> shift) & 3) as u8;
        let next = Counter2(current).updated(taken).value() as u64;
        *word = (*word & !(3u64 << shift)) | (next << shift);
        current >= 2
    }

    /// Every counter value in index order — the diagnostic form the
    /// differential tests compare against the boxed table.
    pub fn values(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.value(i)).collect()
    }

    /// The packed counter words, lowest counter first — the
    /// serialization surface model snapshots persist.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a plane from [`words`](Self::words) output. Returns
    /// `None` when the word count does not describe a valid
    /// `len`-counter plane — the snapshot loaders turn that into a
    /// typed error instead of a panic.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        (len >= 1 && words.len() == len.div_ceil(COUNTERS_PER_WORD))
            .then_some(CounterPlane { words, len })
    }
}

impl fmt::Display for Counter2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.0 {
            0 => "strong-not-taken",
            1 => "weak-not-taken",
            2 => "weak-taken",
            _ => "strong-taken",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = Counter2::STRONG_TAKEN;
        c.update(true);
        assert_eq!(c, Counter2::STRONG_TAKEN);
        let mut c = Counter2::STRONG_NOT_TAKEN;
        c.update(false);
        assert_eq!(c, Counter2::STRONG_NOT_TAKEN);
    }

    #[test]
    fn threshold_is_two() {
        assert!(!Counter2::new(0).predict_taken());
        assert!(!Counter2::new(1).predict_taken());
        assert!(Counter2::new(2).predict_taken());
        assert!(Counter2::new(3).predict_taken());
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = Counter2::STRONG_TAKEN;
        c.update(false);
        assert!(c.predict_taken(), "one not-taken must not flip a strong counter");
        c.update(false);
        assert!(!c.predict_taken());
    }

    #[test]
    #[should_panic(expected = "0..=3")]
    fn rejects_out_of_range() {
        Counter2::new(4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Counter2::new(0).to_string(), "strong-not-taken");
        assert_eq!(Counter2::new(3).to_string(), "strong-taken");
    }

    #[test]
    fn branchless_updated_matches_update_for_all_states() {
        for value in 0..=3u8 {
            for taken in [false, true] {
                let mut reference = Counter2::new(value);
                reference.update(taken);
                assert_eq!(
                    Counter2::new(value).updated(taken),
                    reference,
                    "state {value}, taken {taken}"
                );
            }
        }
    }

    #[test]
    fn plane_initializes_weak_not_taken() {
        let plane = CounterPlane::new(100);
        assert_eq!(plane.len(), 100);
        assert!((0..100).all(|i| plane.value(i) == 1));
        assert!((0..100).all(|i| !plane.predict_taken(i)));
    }

    #[test]
    fn plane_updates_do_not_disturb_neighbors() {
        let mut plane = CounterPlane::new(64);
        plane.update(33, true);
        plane.update(33, true);
        assert_eq!(plane.value(33), 3);
        assert!(plane.predict_taken(33));
        for i in (0..64).filter(|&i| i != 33) {
            assert_eq!(plane.value(i), 1, "neighbor {i} disturbed");
        }
    }

    #[test]
    fn plane_matches_vec_of_counters_on_a_pseudo_random_stream() {
        let len = 77; // deliberately not a multiple of the word width
        let mut plane = CounterPlane::new(len);
        let mut reference = vec![Counter2::default(); len];
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % len;
            let taken = (x >> 13) & 1 == 1;
            assert_eq!(plane.predict_taken(i), reference[i].predict_taken(), "index {i}");
            plane.update(i, taken);
            reference[i].update(taken);
        }
        let values: Vec<u8> = reference.iter().map(|c| c.value()).collect();
        assert_eq!(plane.values(), values);
    }

    #[test]
    fn plane_budget_accounting_matches_table() {
        // 2^14 counters = 4 KB, the same accounting CounterTable uses.
        assert_eq!(CounterPlane::new(1 << 14).bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn plane_rejects_zero_length() {
        CounterPlane::new(0);
    }
}
