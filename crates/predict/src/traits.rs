//! Predictor traits and the simulation protocol.

use vlpp_trace::{Addr, BranchRecord};

/// A component that watches the retired branch stream.
///
/// Global history structures — outcome shift registers, path registers,
/// Target History Buffers — must advance on branches the predictor does
/// not itself predict (e.g. a conditional predictor's path history still
/// records indirect-branch targets). The simulation runner therefore calls
/// [`observe`](Self::observe) once for *every* retired control transfer,
/// after any `predict`/`train` pair for that branch.
pub trait BranchObserver {
    /// Notifies the component that `record` retired.
    fn observe(&mut self, record: &BranchRecord);
}

/// A conditional-branch direction predictor.
///
/// The trace-driven protocol for each retired conditional branch is:
///
/// 1. [`predict`](Self::predict) with the branch PC,
/// 2. [`train`](Self::train) with the resolved direction,
/// 3. [`observe`](BranchObserver::observe) with the full record
///    (also called for non-conditional branches).
///
/// `predict` takes `&mut self` because some predictors record prediction
/// metadata (e.g. which hash function produced the used index) that
/// `train` consumes.
pub trait ConditionalPredictor: BranchObserver {
    /// Predicts the direction of the branch at `pc`: `true` = taken.
    fn predict(&mut self, pc: Addr) -> bool;

    /// Trains the predictor with the resolved direction of the branch at
    /// `pc`.
    fn train(&mut self, pc: Addr, taken: bool);

    /// A short human-readable name ("gshare", "vlp", …) used in reports.
    fn name(&self) -> String;
}

/// An indirect-branch target predictor.
///
/// Returns are *not* presented to these predictors (the paper excludes
/// them; a return address stack handles them in a real front end).
/// The protocol mirrors [`ConditionalPredictor`].
pub trait IndirectPredictor: BranchObserver {
    /// Predicts the target of the indirect branch at `pc`.
    ///
    /// A predictor with no information for `pc` returns [`Addr::NULL`],
    /// which the runner scores as a misprediction (unless the true target
    /// happens to be null, which generated workloads never produce).
    fn predict(&mut self, pc: Addr) -> Addr;

    /// Trains the predictor with the resolved target of the indirect
    /// branch at `pc`.
    fn train(&mut self, pc: Addr, target: Addr);

    /// A short human-readable name used in reports.
    fn name(&self) -> String;
}

impl<T: BranchObserver + ?Sized> BranchObserver for Box<T> {
    fn observe(&mut self, record: &BranchRecord) {
        (**self).observe(record)
    }
}

impl<T: ConditionalPredictor + ?Sized> ConditionalPredictor for Box<T> {
    fn predict(&mut self, pc: Addr) -> bool {
        (**self).predict(pc)
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        (**self).train(pc, taken)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: IndirectPredictor + ?Sized> IndirectPredictor for Box<T> {
    fn predict(&mut self, pc: Addr) -> Addr {
        (**self).predict(pc)
    }

    fn train(&mut self, pc: Addr, target: Addr) {
        (**self).train(pc, target)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysTaken;

    impl BranchObserver for AlwaysTaken {
        fn observe(&mut self, _: &BranchRecord) {}
    }

    impl ConditionalPredictor for AlwaysTaken {
        fn predict(&mut self, _: Addr) -> bool {
            true
        }
        fn train(&mut self, _: Addr, _: bool) {}
        fn name(&self) -> String {
            "always-taken".into()
        }
    }

    #[test]
    fn trait_objects_work_through_box() {
        let mut p: Box<dyn ConditionalPredictor> = Box::new(AlwaysTaken);
        assert!(p.predict(Addr::new(0)));
        p.train(Addr::new(0), false);
        p.observe(&BranchRecord::conditional(Addr::new(0), Addr::new(4), false));
        assert_eq!(p.name(), "always-taken");
    }
}
