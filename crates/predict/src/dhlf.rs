//! Dynamic History-Length Fitting (Juan, Sanjeevan, Navarro; ISCA 1998)
//! — the hardware-adaptive cousin of variable length path prediction the
//! paper's §2 discusses: "at regular intervals, the hardware selected
//! the number of history bits to be used for making predictions".
//!
//! Where the variable length path predictor varies history *per branch*
//! using profile information, DHLF varies one *global* history length
//! over time. Implementing it lets the workspace compare the two forms
//! of adaptivity directly.

use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::{BranchObserver, ConditionalPredictor, Counter2, OutcomeHistory};

/// A gshare-style predictor whose global history length is re-selected
/// by the hardware at fixed intervals.
///
/// During each interval the predictor counts its mispredictions. At the
/// interval boundary it hill-climbs: if the current length did worse
/// than the previous interval, it reverses direction; otherwise it keeps
/// stepping the same way. All predictions in an interval use the length
/// chosen at its start (as in the original proposal).
///
/// # Example
///
/// ```
/// use vlpp_predict::{ConditionalPredictor, Dhlf};
/// use vlpp_trace::Addr;
///
/// let mut p = Dhlf::new(14, 4096);
/// let _ = p.predict(Addr::new(0x40));
/// p.train(Addr::new(0x40), true);
/// ```
#[derive(Debug, Clone)]
pub struct Dhlf {
    history: OutcomeHistory,
    table: Vec<Counter2>,
    index_bits: u32,
    /// Current history length in bits (0..=index_bits).
    length: u32,
    interval: u64,
    /// Mispredictions and predictions in the current interval.
    interval_misses: u64,
    interval_predictions: u64,
    /// Miss rate of the previous interval, for the hill climb.
    previous_rate: f64,
    /// Current step direction: +1 or -1.
    direction: i32,
}

impl Dhlf {
    /// Creates a DHLF predictor with a `2^index_bits`-entry table,
    /// re-fitting the history length every `interval` predictions.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28, or `interval` is
    /// zero.
    pub fn new(index_bits: u32, interval: u64) -> Self {
        assert!((1..=28).contains(&index_bits), "index width must be in 1..=28, got {index_bits}");
        assert!(interval >= 1, "refit interval must be positive");
        Dhlf {
            history: OutcomeHistory::new(index_bits),
            table: vec![Counter2::default(); 1 << index_bits],
            index_bits,
            length: index_bits / 2,
            interval,
            interval_misses: 0,
            interval_predictions: 0,
            previous_rate: f64::INFINITY,
            direction: 1,
        }
    }

    /// The history length currently in use, in bits.
    pub fn current_length(&self) -> u32 {
        self.length
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let history =
            if self.length == 0 { 0 } else { self.history.bits() & ((1u64 << self.length) - 1) };
        ((history ^ pc.word()) & mask) as usize
    }

    fn maybe_refit(&mut self) {
        if self.interval_predictions < self.interval {
            return;
        }
        let rate = self.interval_misses as f64 / self.interval_predictions as f64;
        if rate > self.previous_rate {
            self.direction = -self.direction;
        }
        self.previous_rate = rate;
        let next = self.length as i64 + self.direction as i64;
        self.length = next.clamp(0, self.index_bits as i64) as u32;
        self.interval_misses = 0;
        self.interval_predictions = 0;
    }
}

impl BranchObserver for Dhlf {
    fn observe(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Conditional {
            self.history.push(record.taken());
        }
    }
}

impl ConditionalPredictor for Dhlf {
    fn predict(&mut self, pc: Addr) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        let index = self.index(pc);
        let correct = self.table[index].predict_taken() == taken;
        self.table[index].update(taken);
        self.interval_predictions += 1;
        if !correct {
            self.interval_misses += 1;
        }
        self.maybe_refit();
    }

    fn name(&self) -> String {
        "dhlf".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Dhlf, pc: u64, taken: bool) -> bool {
        let pc = Addr::new(pc);
        let prediction = p.predict(pc);
        p.train(pc, taken);
        p.observe(&BranchRecord::conditional(pc, Addr::new(pc.raw() + 4), taken));
        prediction
    }

    #[test]
    fn length_stays_in_bounds() {
        let mut p = Dhlf::new(8, 16);
        let mut x: u32 = 3;
        for _ in 0..5000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            drive(&mut p, 0x1000 + ((x >> 8) & 0xfc) as u64, (x >> 16) & 1 == 1);
            assert!(p.current_length() <= 8);
        }
    }

    #[test]
    fn length_adapts_over_time() {
        let mut p = Dhlf::new(10, 64);
        let start = p.current_length();
        let mut x: u32 = 9;
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..20_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            drive(&mut p, 0x1000, (x >> 16) & 1 == 1);
            lengths.insert(p.current_length());
        }
        assert!(lengths.len() > 1, "length never moved from {start}");
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = Dhlf::new(10, 128);
        let mut correct = 0;
        for i in 0..2000u32 {
            if drive(&mut p, 0x4000, true) && i >= 200 {
                correct += 1;
            }
        }
        assert!(correct as f64 / 1800.0 > 0.97, "got {correct}/1800");
    }

    #[test]
    fn learns_history_patterns_like_gshare() {
        let mut p = Dhlf::new(10, 256);
        let mut correct = 0;
        for i in 0..6000u32 {
            let taken = i % 3 != 2; // period-3 pattern
            if drive(&mut p, 0x4000, taken) == taken && i >= 2000 {
                correct += 1;
            }
        }
        assert!(correct as f64 / 4000.0 > 0.85, "got {correct}/4000");
    }

    #[test]
    fn zero_length_degenerates_to_bimodal_indexing() {
        let mut p = Dhlf::new(8, 1_000_000);
        p.length = 0;
        // With no history, two different histories give the same index.
        let i1 = p.index(Addr::new(0x40));
        p.observe(&BranchRecord::conditional(Addr::new(0), Addr::new(4), true));
        assert_eq!(p.index(Addr::new(0x40)), i1);
    }

    #[test]
    #[should_panic(expected = "refit interval")]
    fn rejects_zero_interval() {
        Dhlf::new(8, 0);
    }
}
