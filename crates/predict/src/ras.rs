//! A return address stack (RAS).
//!
//! The paper excludes returns from its indirect-branch predictors
//! because "they are not predicted by the indirect branch predictors
//! considered in this paper" — a real front end predicts them with a
//! return address stack. This module supplies that missing piece so the
//! workspace models the complete control-flow-prediction story.

use vlpp_trace::{Addr, BranchKind, BranchRecord};

use crate::BranchObserver;

/// A fixed-depth return address stack with wrap-around overwrite on
/// overflow (the classic hardware organization).
///
/// Drive it with [`observe`](BranchObserver::observe) for every retired
/// record (it pushes on calls) and call [`predict`](Self::predict) /
/// [`resolve`](Self::resolve) around each return.
///
/// # Example
///
/// ```
/// use vlpp_predict::{BranchObserver, ReturnAddressStack};
/// use vlpp_trace::{Addr, BranchRecord};
///
/// let mut ras = ReturnAddressStack::new(16);
/// ras.observe(&BranchRecord::call(Addr::new(0x100), Addr::new(0x4000)));
/// assert_eq!(ras.predict(), Addr::new(0x104)); // call pc + 4
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    /// Index of the next free slot (top of stack = top - 1, circular).
    top: usize,
    /// Number of live entries (≤ depth).
    live: usize,
    hits: u64,
    predictions: u64,
}

impl ReturnAddressStack {
    /// Creates a RAS holding `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "RAS depth must be at least 1");
        ReturnAddressStack {
            entries: vec![Addr::NULL; depth],
            top: 0,
            live: 0,
            hits: 0,
            predictions: 0,
        }
    }

    /// The predicted target of the next return: the top of the stack,
    /// or [`Addr::NULL`] when empty.
    pub fn predict(&self) -> Addr {
        if self.live == 0 {
            Addr::NULL
        } else {
            self.entries[(self.top + self.entries.len() - 1) % self.entries.len()]
        }
    }

    /// Scores a resolved return: pops the stack, compares the popped
    /// prediction to `target`, and returns whether it was correct.
    pub fn resolve(&mut self, target: Addr) -> bool {
        let prediction = self.predict();
        if self.live > 0 {
            self.top = (self.top + self.entries.len() - 1) % self.entries.len();
            self.live -= 1;
        }
        self.predictions += 1;
        let correct = prediction == target;
        if correct {
            self.hits += 1;
        }
        correct
    }

    /// Number of returns scored so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of returns predicted correctly, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.hits as f64 / self.predictions as f64
        }
    }

    /// Current number of live entries.
    pub fn depth_in_use(&self) -> usize {
        self.live
    }

    fn push(&mut self, return_address: Addr) {
        self.entries[self.top] = return_address;
        self.top = (self.top + 1) % self.entries.len();
        self.live = (self.live + 1).min(self.entries.len());
    }
}

impl BranchObserver for ReturnAddressStack {
    fn observe(&mut self, record: &BranchRecord) {
        if record.kind() == BranchKind::Call {
            // The return address is the instruction after the call.
            self.push(record.pc().wrapping_add(4));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(pc: u64) -> BranchRecord {
        BranchRecord::call(Addr::new(pc), Addr::new(0x9000))
    }

    #[test]
    fn predicts_matching_return() {
        let mut ras = ReturnAddressStack::new(8);
        ras.observe(&call(0x100));
        ras.observe(&call(0x200));
        assert!(ras.resolve(Addr::new(0x204)));
        assert!(ras.resolve(Addr::new(0x104)));
        assert_eq!(ras.hit_rate(), 1.0);
    }

    #[test]
    fn empty_stack_mispredicts() {
        let mut ras = ReturnAddressStack::new(4);
        assert_eq!(ras.predict(), Addr::NULL);
        assert!(!ras.resolve(Addr::new(0x104)));
        assert_eq!(ras.predictions(), 1);
        assert_eq!(ras.hit_rate(), 0.0);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.observe(&call(0x100));
        ras.observe(&call(0x200));
        ras.observe(&call(0x300)); // overwrites 0x100's slot
        assert!(ras.resolve(Addr::new(0x304)));
        assert!(ras.resolve(Addr::new(0x204)));
        assert!(!ras.resolve(Addr::new(0x104)), "the oldest entry was overwritten");
    }

    #[test]
    fn deep_recursion_degrades_gracefully() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 0..20u64 {
            ras.observe(&call(0x1000 + 8 * i));
        }
        // Only the 4 most recent survive.
        let mut correct = 0;
        for i in (0..20u64).rev() {
            if ras.resolve(Addr::new(0x1000 + 8 * i + 4)) {
                correct += 1;
            }
        }
        assert_eq!(correct, 4);
        assert_eq!(ras.depth_in_use(), 0);
    }

    #[test]
    fn nested_call_return_interleaving() {
        let mut ras = ReturnAddressStack::new(8);
        ras.observe(&call(0x100));
        assert!(ras.resolve(Addr::new(0x104)));
        ras.observe(&call(0x200));
        ras.observe(&call(0x300));
        assert!(ras.resolve(Addr::new(0x304)));
        ras.observe(&call(0x400));
        assert!(ras.resolve(Addr::new(0x404)));
        assert!(ras.resolve(Addr::new(0x204)));
        assert_eq!(ras.hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        ReturnAddressStack::new(0);
    }
}
